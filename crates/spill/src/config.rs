//! Spill-path configuration and the per-request spill report.

use std::path::PathBuf;

/// Knobs of the dynamic hybrid hash join's spill path.
///
/// The defaults are tuned for "just works" degradation: enough fanout that
/// one eviction frees a useful fraction of the grant, a recursion cap that
/// terminates even on pathological (single-key) skew, and frame/block sizes
/// that keep per-session working memory bounded and off the budget's books.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillConfig {
    /// Partition fanout of each hybrid-hash pass (≥ 2).
    pub partitions: usize,
    /// How many recursive re-partitioning passes an oversized partition may
    /// take before the executor falls back to a grant-bounded block
    /// nested-loop join (0 = fall back immediately).
    pub max_recursion_depth: u32,
    /// Tuples per staged frame: spilled partitions buffer at most this many
    /// tuples in memory before flushing a frame to their run file.
    pub frame_tuples: usize,
    /// Build tuples per block of the nested-loop fallback.
    pub fallback_block_tuples: usize,
    /// Directory to spill under (the OS temp dir when `None`).
    pub spill_dir: Option<PathBuf>,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            partitions: 16,
            max_recursion_depth: 4,
            frame_tuples: 8 * 1024,
            fallback_block_tuples: 64 * 1024,
            spill_dir: None,
        }
    }
}

impl SpillConfig {
    /// Sets the partition fanout.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Sets the recursion-depth cap.
    pub fn max_recursion_depth(mut self, depth: u32) -> Self {
        self.max_recursion_depth = depth;
        self
    }

    /// Sets the staged-frame size in tuples.
    pub fn frame_tuples(mut self, tuples: usize) -> Self {
        self.frame_tuples = tuples;
        self
    }

    /// Sets the nested-loop fallback block size in tuples.
    pub fn fallback_block_tuples(mut self, tuples: usize) -> Self {
        self.fallback_block_tuples = tuples;
        self
    }

    /// Spills under `dir` instead of the OS temp dir.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Validates the knobs; returns a human-readable reason on failure.
    ///
    /// # Errors
    /// A description of the first degenerate knob found.
    pub fn validate(&self) -> Result<(), String> {
        if self.partitions < 2 {
            return Err(format!(
                "spill fanout of {} partitions cannot make progress (need at least 2)",
                self.partitions
            ));
        }
        if self.frame_tuples == 0 {
            return Err("spill frame size must be at least one tuple".to_string());
        }
        if self.fallback_block_tuples == 0 {
            return Err("nested-loop fallback block must be at least one tuple".to_string());
        }
        Ok(())
    }
}

/// What the spill path did for one request — attached to the outcome so
/// operators can see *how* a larger-than-memory join degraded.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpillReport {
    /// Bytes written to run files (build + staged probe tuples).
    pub bytes_spilled: u64,
    /// Bytes read back from run files for joining or re-partitioning.
    pub bytes_restored: u64,
    /// Partitions evicted to disk, across all recursion levels.
    pub partitions_spilled: u64,
    /// Partitions processed in total, across all recursion levels.
    pub partitions_total: u64,
    /// Deepest recursive re-partitioning pass taken (0 = no recursion).
    pub recursion_depth: u32,
    /// Partition pairs that hit the recursion cap and were joined by the
    /// block nested-loop fallback.
    pub fallback_joins: u64,
    /// Memory-grant denials observed (each one triggered an eviction or a
    /// staging decision).
    pub grant_denials: u64,
    /// Bytes evicted in response to the broker's reclaim pressure signal
    /// (fair-share enforcement), a subset of
    /// [`bytes_spilled`](Self::bytes_spilled).
    pub reclaimed_bytes: u64,
    /// Wall-clock seconds spent inside the spill path (partitioning,
    /// run-file I/O and recursive joins; not the in-core fast path).
    pub spill_wall_secs: f64,
}

impl SpillReport {
    /// Folds another report (e.g. a recursive pass) into this one.
    pub fn merge(&mut self, other: &SpillReport) {
        self.bytes_spilled += other.bytes_spilled;
        self.bytes_restored += other.bytes_restored;
        self.partitions_spilled += other.partitions_spilled;
        self.partitions_total += other.partitions_total;
        self.recursion_depth = self.recursion_depth.max(other.recursion_depth);
        self.fallback_joins += other.fallback_joins;
        self.grant_denials += other.grant_denials;
        self.reclaimed_bytes += other.reclaimed_bytes;
        self.spill_wall_secs += other.spill_wall_secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(SpillConfig::default().validate().is_ok());
    }

    #[test]
    fn degenerate_knobs_are_rejected_with_reasons() {
        let e = SpillConfig::default().partitions(1).validate().unwrap_err();
        assert!(e.contains("at least 2"), "{e}");
        assert!(SpillConfig::default().frame_tuples(0).validate().is_err());
        assert!(SpillConfig::default()
            .fallback_block_tuples(0)
            .validate()
            .is_err());
    }

    #[test]
    fn reports_merge_additively_with_max_depth() {
        let mut a = SpillReport {
            bytes_spilled: 10,
            recursion_depth: 1,
            ..SpillReport::default()
        };
        let b = SpillReport {
            bytes_spilled: 5,
            bytes_restored: 7,
            recursion_depth: 3,
            fallback_joins: 1,
            spill_wall_secs: 0.25,
            ..SpillReport::default()
        };
        a.merge(&b);
        assert_eq!(a.bytes_spilled, 15);
        assert_eq!(a.bytes_restored, 7);
        assert_eq!(a.recursion_depth, 3);
        assert_eq!(a.fallback_joins, 1);
        assert!(a.spill_wall_secs > 0.2);
    }
}
