//! The spill manager: temp-dir lifecycle and byte accounting for run files.
//!
//! One [`SpillManager`] lives per engine.  It owns a unique temporary
//! directory, hands out [`RunWriter`]s for partitions being spilled, seals
//! them into readable [`SpillRun`]s, and accounts every byte that crosses
//! the disk boundary.  Cleanup is RAII at both granularities:
//!
//! * a [`SpillRun`] (or an unsealed writer abandoned by a panic unwind)
//!   deletes its file on drop, so a crashed join leaks nothing;
//! * the manager deletes the whole directory when the last handle drops,
//!   so an engine teardown leaves no `hj-spill-*` residue.

use crate::runfile::{RunReader, RunWriter, SpillError};
use datagen::Relation;
use hj_analysis::sync::Mutex;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct ManagerInner {
    dir: PathBuf,
    /// Relaxed everywhere: `fetch_add` is atomic regardless of ordering, so
    /// ids stay unique, and no thread infers other memory state from an id.
    next_file: AtomicU64,
    live_files: Mutex<usize>,
    /// Telemetry counters (never drive control flow): Relaxed loads may
    /// lag a concurrent writer by a moment, which a stats snapshot
    /// tolerates by definition.
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    files_created: AtomicU64,
}

impl Drop for ManagerInner {
    fn drop(&mut self) {
        // Best effort: every run holds an Arc to this inner, so by the time
        // we get here all run files are already unlinked.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Owns one engine's spill directory and accounts its run files.
///
/// Cloning shares the same directory and counters; the directory is removed
/// when the last clone (and the last [`SpillRun`]) drops.
#[derive(Clone)]
pub struct SpillManager {
    inner: Arc<ManagerInner>,
}

impl fmt::Debug for SpillManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpillManager")
            .field("dir", &self.inner.dir)
            .field("live_files", &self.live_files())
            .field("bytes_written", &self.bytes_written())
            .field("bytes_read", &self.bytes_read())
            .finish()
    }
}

impl SpillManager {
    /// Creates a manager with a fresh, uniquely named directory under
    /// `root` (the OS temp dir when `None`).
    ///
    /// # Errors
    /// Returns the underlying error when the directory cannot be created.
    pub fn create(root: Option<&Path>) -> io::Result<Self> {
        let root = root.map_or_else(std::env::temp_dir, Path::to_path_buf);
        let dir = root.join(format!(
            "hj-spill-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(SpillManager {
            inner: Arc::new(ManagerInner {
                dir,
                next_file: AtomicU64::new(0),
                live_files: Mutex::new("spill.live_files", 0),
                bytes_written: AtomicU64::new(0),
                bytes_read: AtomicU64::new(0),
                files_created: AtomicU64::new(0),
            }),
        })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Opens a new run writer; `label` becomes part of the file name for
    /// operator-friendly `ls` output.
    ///
    /// # Errors
    /// Returns [`SpillError::Io`] when the file cannot be created.
    pub fn create_run(&self, label: &str) -> Result<PendingRun, SpillError> {
        let id = self.inner.next_file.fetch_add(1, Ordering::Relaxed);
        let safe: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = self.inner.dir.join(format!("run-{id:06}-{safe}.hjrun"));
        let writer = RunWriter::create(&path)?;
        *self.inner.live_files.lock() += 1;
        self.inner.files_created.fetch_add(1, Ordering::Relaxed);
        Ok(PendingRun {
            writer: Some(writer),
            path,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Run files currently on disk (pending writers plus sealed runs).
    pub fn live_files(&self) -> usize {
        *self.inner.live_files.lock()
    }

    /// Total run files ever created.
    pub fn files_created(&self) -> u64 {
        self.inner.files_created.load(Ordering::Relaxed)
    }

    /// Total bytes written into run files.
    pub fn bytes_written(&self) -> u64 {
        self.inner.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read back from run files.
    pub fn bytes_read(&self) -> u64 {
        self.inner.bytes_read.load(Ordering::Relaxed)
    }
}

fn unlink(inner: &ManagerInner, path: &Path) {
    let _ = std::fs::remove_file(path);
    *inner.live_files.lock() -= 1;
}

/// A run file being written.  Seal it with [`PendingRun::seal`]; dropping
/// it unsealed (e.g. during a panic unwind) deletes the file.
#[derive(Debug)]
pub struct PendingRun {
    /// `Some` until sealed or dropped.
    writer: Option<RunWriter>,
    path: PathBuf,
    inner: Arc<ManagerInner>,
}

impl PendingRun {
    /// Appends one frame holding `relation`'s tuples.
    ///
    /// # Errors
    /// [`SpillError::Io`] when the write fails.
    pub fn push(&mut self, relation: &Relation) -> Result<(), SpillError> {
        self.writer
            .as_mut()
            .expect("pending run not yet sealed")
            .push(relation)
    }

    /// Tuples written so far.
    pub fn tuples(&self) -> u64 {
        self.writer.as_ref().map_or(0, RunWriter::tuples)
    }

    /// File bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.writer.as_ref().map_or(0, RunWriter::bytes)
    }

    /// Flushes and seals the run into a readable [`SpillRun`].
    ///
    /// # Errors
    /// [`SpillError::Io`] when the final flush fails.
    pub fn seal(mut self) -> Result<SpillRun, SpillError> {
        let writer = self.writer.take().expect("pending run sealed twice");
        let (tuples, bytes) = match writer.finish() {
            Ok(sealed) => sealed,
            Err(e) => {
                // A failed flush (disk full — the scenario spilling exists
                // for) must not orphan the file: Drop sees `writer == None`
                // and would skip the unlink.
                unlink(&self.inner, &self.path);
                return Err(e.into());
            }
        };
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        Ok(SpillRun {
            path: std::mem::take(&mut self.path),
            tuples,
            bytes,
            inner: Arc::clone(&self.inner),
        })
    }
}

impl Drop for PendingRun {
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            // Never sealed: the file's content is garbage — remove it.
            unlink(&self.inner, &self.path);
        }
    }
}

/// A sealed, readable run file; deleted from disk on drop.
#[derive(Debug)]
pub struct SpillRun {
    path: PathBuf,
    tuples: u64,
    bytes: u64,
    inner: Arc<ManagerInner>,
}

impl SpillRun {
    /// Tuples in the run.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// File bytes of the run.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Opens a streaming, checksum-verifying reader over the run's frames.
    ///
    /// # Errors
    /// [`SpillError::Io`] when the file cannot be reopened.
    pub fn reader(&self) -> Result<RunReader, SpillError> {
        self.inner
            .bytes_read
            .fetch_add(self.bytes, Ordering::Relaxed);
        // The sealed tuple count lets the reader refuse a run whose
        // trailing frames were lost at a frame boundary — per-frame
        // checksums alone cannot see that.
        Ok(RunReader::open(&self.path, Some(self.tuples))?)
    }

    /// Reads the whole run back into one [`Relation`].
    ///
    /// # Errors
    /// Propagates reader I/O and corruption errors.
    pub fn read_all(&self) -> Result<Relation, SpillError> {
        let mut reader = self.reader()?;
        let mut rel = Relation::with_capacity(self.tuples as usize);
        while let Some(frame) = reader.next_frame()? {
            rel.extend_from(&frame);
        }
        Ok(rel)
    }
}

impl Drop for SpillRun {
    fn drop(&mut self) {
        unlink(&self.inner, &self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_round_trip_and_account_bytes() {
        let mgr = SpillManager::create(None).unwrap();
        let rel = Relation::from_columns((0..100).collect(), (100..200).collect());
        let mut pending = mgr.create_run("part-3").unwrap();
        pending.push(&rel).unwrap();
        assert_eq!(mgr.live_files(), 1);
        let run = pending.seal().unwrap();
        assert_eq!(run.tuples(), 100);
        assert_eq!(mgr.bytes_written(), run.bytes());
        assert_eq!(run.read_all().unwrap(), rel);
        assert_eq!(mgr.bytes_read(), run.bytes());
        drop(run);
        assert_eq!(mgr.live_files(), 0);
        assert!(
            std::fs::read_dir(mgr.dir()).unwrap().next().is_none(),
            "sealed run must be unlinked on drop"
        );
    }

    #[test]
    fn abandoned_writers_clean_up() {
        let mgr = SpillManager::create(None).unwrap();
        let mut pending = mgr.create_run("abandoned").unwrap();
        pending
            .push(&Relation::from_columns(vec![1], vec![2]))
            .unwrap();
        drop(pending); // unwound before seal
        assert_eq!(mgr.live_files(), 0);
        assert!(std::fs::read_dir(mgr.dir()).unwrap().next().is_none());
    }

    #[test]
    fn manager_drop_removes_the_directory() {
        let mgr = SpillManager::create(None).unwrap();
        let dir = mgr.dir().to_path_buf();
        let run = {
            let mut p = mgr.create_run("x").unwrap();
            p.push(&Relation::from_columns(vec![1], vec![2])).unwrap();
            p.seal().unwrap()
        };
        drop(mgr);
        // The run still holds the directory alive.
        assert!(dir.exists());
        drop(run);
        assert!(!dir.exists(), "last handle must remove the spill dir");
    }

    #[test]
    fn labels_are_sanitised_into_file_names() {
        let mgr = SpillManager::create(None).unwrap();
        let pending = mgr.create_run("depth 1/part 2").unwrap();
        let entries: Vec<String> = std::fs::read_dir(mgr.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].contains("depth_1_part_2"), "{entries:?}");
        drop(pending);
    }
}
