//! Buffered, checksummed run files: the on-disk format of spilled
//! partitions.
//!
//! A run is a flat sequence of *frames*; each frame is one batch of
//! `<key, rid>` tuples:
//!
//! ```text
//! [tuple_count: u32 LE] [checksum: u64 LE] [keys: count × u32 LE] [rids: count × u32 LE]
//! ```
//!
//! The checksum is FNV-1a 64 over the column payload, verified on every
//! read: a torn write, a filled-up disk or an operator truncating temp
//! files surfaces as a typed [`SpillError::CorruptFrame`] instead of a
//! silently wrong join result.  Frames are independent, so readers can
//! stream a run back one bounded batch at a time — the recursive
//! re-partitioning pass never holds a whole oversized run in memory.

use datagen::tablefile::{decode_frame, encode_frame};
use datagen::Relation;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

/// Why a spill file could not be written or read back.
#[derive(Debug)]
pub enum SpillError {
    /// An operating-system I/O failure (open, write, flush, read).
    Io(io::Error),
    /// A frame failed its checksum or was structurally truncated.
    CorruptFrame {
        /// Zero-based index of the corrupt frame within its run.
        frame: usize,
        /// What did not add up.
        detail: String,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill I/O error: {e}"),
            SpillError::CorruptFrame { frame, detail } => {
                write!(f, "corrupt spill frame {frame}: {detail}")
            }
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io(e) => Some(e),
            SpillError::CorruptFrame { .. } => None,
        }
    }
}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// Streams frames of `<key, rid>` tuples into a run file through a
/// buffered writer.
///
/// Created by [`SpillManager::create_run`](crate::SpillManager::create_run)
/// (wrapped in a [`PendingRun`](crate::PendingRun)); sealed into a readable
/// [`SpillRun`](crate::SpillRun) by [`PendingRun::seal`](crate::PendingRun::seal).
#[derive(Debug)]
pub struct RunWriter {
    writer: BufWriter<File>,
    tuples: u64,
    bytes: u64,
    frames: u64,
}

impl RunWriter {
    pub(crate) fn create(path: &Path) -> io::Result<Self> {
        Ok(RunWriter {
            writer: BufWriter::new(File::create(path)?),
            tuples: 0,
            bytes: 0,
            frames: 0,
        })
    }

    /// Appends one frame holding `relation`'s tuples (empty relations are
    /// skipped — a frame always carries at least one tuple).
    ///
    /// # Errors
    /// [`SpillError::Io`] when the write fails.
    pub fn push(&mut self, relation: &Relation) -> Result<(), SpillError> {
        self.push_columns(relation.keys(), relation.rids())
    }

    /// Appends one frame from raw key/rid columns of equal length.
    ///
    /// # Errors
    /// [`SpillError::Io`] when the write fails.
    ///
    /// # Panics
    /// Panics if the columns have different lengths.
    pub fn push_columns(&mut self, keys: &[u32], rids: &[u32]) -> Result<(), SpillError> {
        let written = encode_frame(&mut self.writer, keys, rids)?;
        if written > 0 {
            self.tuples += keys.len() as u64;
            self.bytes += written;
            self.frames += 1;
        }
        Ok(())
    }

    /// Tuples written so far.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// File bytes written so far (headers + payload).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub(crate) fn finish(mut self) -> io::Result<(u64, u64)> {
        self.writer.flush()?;
        Ok((self.tuples, self.bytes))
    }
}

/// Streams the frames of a run file back, verifying each checksum.
#[derive(Debug)]
pub struct RunReader {
    reader: BufReader<File>,
    frame: usize,
    /// File bytes not yet consumed — bounds what a frame header may claim,
    /// so a corrupted count cannot drive a huge allocation before the
    /// checksum even runs.
    remaining: u64,
    /// Tuples the sealed run recorded; a clean EOF before this many have
    /// been read means trailing frames were lost at a frame boundary —
    /// which per-frame checksums alone cannot see.
    expected_tuples: Option<u64>,
    read_tuples: u64,
}

impl RunReader {
    pub(crate) fn open(path: &Path, expected_tuples: Option<u64>) -> io::Result<Self> {
        let file = File::open(path)?;
        let remaining = file.metadata()?.len();
        Ok(RunReader {
            reader: BufReader::new(file),
            frame: 0,
            remaining,
            expected_tuples,
            read_tuples: 0,
        })
    }

    /// Reads the next frame into a [`Relation`], or `None` at end of run.
    ///
    /// # Errors
    /// [`SpillError::Io`] on read failure, [`SpillError::CorruptFrame`] on
    /// a checksum mismatch or truncation.
    pub fn next_frame(&mut self) -> Result<Option<Relation>, SpillError> {
        match decode_frame(&mut self.reader, &mut self.remaining) {
            Ok(Some(rel)) => {
                self.frame += 1;
                self.read_tuples += rel.len() as u64;
                Ok(Some(rel))
            }
            Ok(None) => {
                if let Some(expected) = self.expected_tuples {
                    if self.read_tuples != expected {
                        return Err(SpillError::CorruptFrame {
                            frame: self.frame,
                            detail: format!(
                                "run ended after {} of {expected} sealed tuples \
                                 (trailing frames lost at a frame boundary)",
                                self.read_tuples
                            ),
                        });
                    }
                }
                Ok(None)
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => Err(SpillError::CorruptFrame {
                frame: self.frame,
                detail: e.to_string(),
            }),
            Err(e) => Err(SpillError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hj-spill-runfile-{}-{name}", std::process::id()))
    }

    #[test]
    fn frames_round_trip_byte_identically() {
        let path = temp_path("roundtrip");
        let a = Relation::from_columns(vec![1, 2, 3], vec![10, 20, 30]);
        let b = Relation::from_columns(vec![9], vec![90]);
        let mut writer = RunWriter::create(&path).unwrap();
        writer.push(&a).unwrap();
        writer.push(&Relation::new()).unwrap(); // empty frames are skipped
        writer.push(&b).unwrap();
        assert_eq!(writer.tuples(), 4);
        let (tuples, bytes) = writer.finish().unwrap();
        assert_eq!(tuples, 4);
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());

        let mut reader = RunReader::open(&path, Some(4)).unwrap();
        assert_eq!(reader.next_frame().unwrap().unwrap(), a);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b);
        assert!(reader.next_frame().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let path = temp_path("corrupt");
        let mut writer = RunWriter::create(&path).unwrap();
        writer
            .push(&Relation::from_columns(vec![1, 2], vec![3, 4]))
            .unwrap();
        writer.finish().unwrap();
        // Flip one payload byte.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let mut reader = RunReader::open(&path, None).unwrap();
        let err = reader.next_frame().unwrap_err();
        assert!(
            matches!(err, SpillError::CorruptFrame { frame: 0, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let path = temp_path("truncate");
        let mut writer = RunWriter::create(&path).unwrap();
        writer
            .push(&Relation::from_columns(vec![1, 2, 3, 4], vec![5, 6, 7, 8]))
            .unwrap();
        writer.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let mut reader = RunReader::open(&path, None).unwrap();
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(err, SpillError::CorruptFrame { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frame_boundary_truncation_is_detected_via_the_sealed_count() {
        let path = temp_path("boundary");
        let mut writer = RunWriter::create(&path).unwrap();
        writer
            .push(&Relation::from_columns(vec![1, 2], vec![3, 4]))
            .unwrap();
        writer
            .push(&Relation::from_columns(vec![5], vec![6]))
            .unwrap();
        writer.finish().unwrap();
        // Cut the file exactly at the second frame's boundary: every
        // remaining frame still checksums clean.
        let bytes = std::fs::read(&path).unwrap();
        let first_frame = 4 + 8 + 2 * 8;
        std::fs::write(&path, &bytes[..first_frame]).unwrap();

        // Without the sealed count the loss is invisible...
        let mut blind = RunReader::open(&path, None).unwrap();
        assert!(blind.next_frame().unwrap().is_some());
        assert!(blind.next_frame().unwrap().is_none());
        // ...with it, the reader refuses to call the run complete.
        let mut checked = RunReader::open(&path, Some(3)).unwrap();
        assert!(checked.next_frame().unwrap().is_some());
        let err = checked.next_frame().unwrap_err();
        assert!(matches!(err, SpillError::CorruptFrame { .. }), "{err}");
        assert!(err.to_string().contains("2 of 3"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn error_messages_are_actionable() {
        let e = SpillError::CorruptFrame {
            frame: 3,
            detail: "checksum 0x1 != recorded 0x2".into(),
        };
        assert!(e.to_string().contains("frame 3"));
        let io_err: SpillError = io::Error::other("disk full").into();
        assert!(io_err.to_string().contains("disk full"));
    }
}
