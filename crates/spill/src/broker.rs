//! The memory broker: one engine-wide byte budget, per-session grants.
//!
//! The broker is the admission layer *below* the arena: it governs the heap
//! bytes a spilling join keeps resident (its memory-resident build/probe
//! partitions), so that concurrent sessions degrade each other gracefully
//! instead of one oversized request starving the rest.
//!
//! Three properties drive the design:
//!
//! * **Non-blocking.**  [`MemoryGrant::try_grow`] never waits: it either
//!   books the bytes or returns a [`GrantDenied`] telling the caller how
//!   much is left.  A denied session spills to disk and carries on, so
//!   sessions can never deadlock on each other's memory.
//! * **Fair-share reclaim.**  A denial marks the denying session *starved*,
//!   which raises pressure on every session holding more than its fair
//!   share (`budget / active sessions`).  Those sessions observe the
//!   pressure through [`MemoryGrant::reclaim_request`] — the polled
//!   equivalent of a reclaim callback, checked between build morsels — and
//!   evict victim partitions until they are back under their share.
//! * **Unwind-safe.**  Dropping a [`MemoryGrant`] (normally, or while a
//!   panic unwinds through the spilling join) releases every byte it held
//!   and clears its starvation mark; the broker's mutex recovers from
//!   poisoning, so one crashed session cannot brick the budget.

use hj_analysis::sync::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why a grant could not grow: the budget arithmetic behind a denial, so
/// the caller can size its eviction (and operators can diagnose pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantDenied {
    /// Bytes the session asked for.
    pub requested: usize,
    /// Unallocated budget bytes at the moment of the denial.
    pub available: usize,
    /// The session's fair share of the budget at the moment of the denial.
    pub fair_share: usize,
}

impl fmt::Display for GrantDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory grant of {} B denied: {} B of budget available (fair share {} B)",
            self.requested, self.available, self.fair_share
        )
    }
}

struct SessionState {
    granted: usize,
    starved: bool,
}

struct BrokerState {
    sessions: HashMap<u64, SessionState>,
    next_id: u64,
    granted_total: usize,
}

struct Shared {
    budget: usize,
    state: Mutex<BrokerState>,
}

/// An engine-wide byte budget carved into per-session [`MemoryGrant`]s.
///
/// Cloning the broker clones a handle to the same budget (the engine keeps
/// one, each in-flight spilling request registers one session against it).
#[derive(Clone)]
pub struct MemoryBroker {
    shared: Arc<Shared>,
}

impl fmt::Debug for MemoryBroker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryBroker")
            .field("budget", &self.budget())
            .field("granted", &self.granted())
            .field("sessions", &self.sessions())
            .finish()
    }
}

impl MemoryBroker {
    /// A broker over `budget` bytes.
    pub fn new(budget: usize) -> Self {
        MemoryBroker {
            shared: Arc::new(Shared {
                budget,
                state: Mutex::new(
                    "spill.broker_state",
                    BrokerState {
                        sessions: HashMap::new(),
                        next_id: 0,
                        granted_total: 0,
                    },
                ),
            }),
        }
    }

    /// A broker that never denies (budget `usize::MAX`): the degenerate
    /// case used when spilling is requested without a configured budget.
    pub fn unlimited() -> Self {
        MemoryBroker::new(usize::MAX)
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> usize {
        self.shared.budget
    }

    /// Bytes currently granted across all sessions.
    pub fn granted(&self) -> usize {
        self.shared.state.lock().granted_total
    }

    /// Sessions currently registered.
    pub fn sessions(&self) -> usize {
        self.shared.state.lock().sessions.len()
    }

    /// Registers a new session and returns its grant handle (zero bytes
    /// granted initially).
    pub fn session(&self) -> MemoryGrant {
        let mut state = self.shared.state.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.sessions.insert(
            id,
            SessionState {
                granted: 0,
                starved: false,
            },
        );
        MemoryGrant {
            shared: Arc::clone(&self.shared),
            id,
        }
    }
}

/// One session's slice of the broker's budget.
///
/// Not clonable: exactly one owner accounts a session's resident bytes, and
/// `Drop` (including during a panic unwind) releases them all.
#[must_use = "dropping the grant immediately releases its budget bytes"]
pub struct MemoryGrant {
    shared: Arc<Shared>,
    id: u64,
}

impl fmt::Debug for MemoryGrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryGrant")
            .field("id", &self.id)
            .field("granted", &self.granted())
            .finish()
    }
}

impl MemoryGrant {
    fn fair_share_of(state: &BrokerState, budget: usize) -> usize {
        budget / state.sessions.len().max(1)
    }

    /// Books `bytes` more against the budget, or returns the denial
    /// arithmetic.  Never blocks; a `bytes` of zero always succeeds.
    ///
    /// A denial marks this session starved (raising reclaim pressure on
    /// over-share sessions) until a later grow succeeds or the grant is
    /// dropped.
    ///
    /// # Errors
    /// [`GrantDenied`] when the unallocated budget cannot cover `bytes`.
    pub fn try_grow(&self, bytes: usize) -> Result<(), GrantDenied> {
        let mut state = self.shared.state.lock();
        let budget = self.shared.budget;
        if bytes <= budget.saturating_sub(state.granted_total) {
            state.granted_total += bytes;
            let session = state
                .sessions
                .get_mut(&self.id)
                .expect("grant outlives its broker registration");
            session.granted += bytes;
            // A session that got what it asked for is no longer starved.
            session.starved = false;
            return Ok(());
        }
        let available = budget.saturating_sub(state.granted_total);
        let fair_share = MemoryGrant::fair_share_of(&state, budget);
        let session = state
            .sessions
            .get_mut(&self.id)
            .expect("grant outlives its broker registration");
        session.starved = true;
        Err(GrantDenied {
            requested: bytes,
            available,
            fair_share,
        })
    }

    /// Releases `bytes` back to the budget (saturating at this session's
    /// granted total, so unwind paths can over-release safely).
    pub fn shrink(&self, bytes: usize) {
        let mut state = self.shared.state.lock();
        let session = state
            .sessions
            .get_mut(&self.id)
            .expect("grant outlives its broker registration");
        let released = bytes.min(session.granted);
        session.granted -= released;
        state.granted_total -= released;
    }

    /// Bytes this session currently holds.
    pub fn granted(&self) -> usize {
        self.shared
            .state
            .lock()
            .sessions
            .get(&self.id)
            .map_or(0, |s| s.granted)
    }

    /// This session's fair share of the budget: `budget / active sessions`.
    pub fn fair_share(&self) -> usize {
        let state = self.shared.state.lock();
        MemoryGrant::fair_share_of(&state, self.shared.budget)
    }

    /// Bytes this session should evict to disk right now: its surplus over
    /// the fair share, but only while some other session is starved.
    ///
    /// This is the broker's pressure signal — the polled form of a reclaim
    /// callback.  Executors check it at morsel granularity and spill victim
    /// partitions until it reaches zero.
    pub fn reclaim_request(&self) -> usize {
        let state = self.shared.state.lock();
        let others_starved = state
            .sessions
            .iter()
            .any(|(&id, s)| id != self.id && s.starved);
        if !others_starved {
            return 0;
        }
        let fair_share = MemoryGrant::fair_share_of(&state, self.shared.budget);
        state
            .sessions
            .get(&self.id)
            .map_or(0, |s| s.granted.saturating_sub(fair_share))
    }
}

impl Drop for MemoryGrant {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        if let Some(session) = state.sessions.remove(&self.id) {
            state.granted_total -= session.granted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_booked_and_released_exactly() {
        let broker = MemoryBroker::new(1000);
        let a = broker.session();
        let b = broker.session();
        assert!(a.try_grow(400).is_ok());
        assert!(b.try_grow(600).is_ok());
        assert_eq!(broker.granted(), 1000);
        let denied = b.try_grow(1).unwrap_err();
        assert_eq!(denied.available, 0);
        assert_eq!(denied.requested, 1);
        a.shrink(150);
        assert_eq!(broker.granted(), 850);
        assert!(b.try_grow(150).is_ok());
        assert_eq!(broker.granted(), 1000);
        drop(a);
        drop(b);
        assert_eq!(broker.granted(), 0);
        assert_eq!(broker.sessions(), 0);
    }

    #[test]
    fn zero_byte_grow_always_succeeds() {
        let broker = MemoryBroker::new(0);
        let g = broker.session();
        assert!(g.try_grow(0).is_ok());
        assert!(g.try_grow(1).is_err());
    }

    #[test]
    fn fair_share_tracks_active_sessions() {
        let broker = MemoryBroker::new(900);
        let a = broker.session();
        assert_eq!(a.fair_share(), 900);
        let b = broker.session();
        let c = broker.session();
        assert_eq!(a.fair_share(), 300);
        drop(b);
        drop(c);
        assert_eq!(a.fair_share(), 900);
    }

    #[test]
    fn reclaim_pressure_raises_only_while_another_session_is_starved() {
        let broker = MemoryBroker::new(1000);
        let fat = broker.session();
        let thin = broker.session();
        assert!(fat.try_grow(900).is_ok());
        // No one is starved yet: no pressure despite the surplus.
        assert_eq!(fat.reclaim_request(), 0);
        // thin is denied -> fat sees its surplus over fair share (500).
        assert!(thin.try_grow(200).is_err());
        assert_eq!(fat.reclaim_request(), 400);
        // A starved session never pressures itself.
        assert_eq!(thin.reclaim_request(), 0);
        // fat evicts; thin's retry succeeds and clears the starvation.
        fat.shrink(400);
        assert!(thin.try_grow(200).is_ok());
        assert_eq!(fat.reclaim_request(), 0);
    }

    #[test]
    fn dropping_a_starved_grant_clears_its_pressure() {
        let broker = MemoryBroker::new(100);
        let fat = broker.session();
        let thin = broker.session();
        assert!(fat.try_grow(100).is_ok());
        assert!(thin.try_grow(50).is_err());
        assert_eq!(fat.reclaim_request(), 50);
        drop(thin);
        assert_eq!(fat.reclaim_request(), 0);
        assert_eq!(broker.granted(), 100);
    }

    #[test]
    fn unlimited_broker_never_denies() {
        let broker = MemoryBroker::unlimited();
        let g = broker.session();
        assert!(g.try_grow(usize::MAX / 2).is_ok());
        assert_eq!(g.reclaim_request(), 0);
    }

    #[test]
    fn shrink_saturates_at_the_session_grant() {
        let broker = MemoryBroker::new(100);
        let a = broker.session();
        let b = broker.session();
        assert!(a.try_grow(60).is_ok());
        assert!(b.try_grow(40).is_ok());
        // Over-releasing must not free b's bytes through a.
        a.shrink(usize::MAX);
        assert_eq!(a.granted(), 0);
        assert_eq!(b.granted(), 40);
        assert_eq!(broker.granted(), 40);
    }
}
