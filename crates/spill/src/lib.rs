//! # hj-spill — memory governor and disk-spill subsystem
//!
//! The join engine's arena sizing and admission control reject any request
//! whose working state does not fit pre-provisioned memory.  That is the
//! right default for latency-sensitive serving, but it turns one whole
//! class of workloads — larger-than-memory joins, and memory-contended
//! multi-tenant bursts — into hard failures.  This crate provides the two
//! governance primitives that let the engine *degrade* instead (the
//! dynamic hybrid hash join built on them lives in `hj_core::spilljoin`):
//!
//! * [`MemoryBroker`] — an engine-wide byte budget carved into per-session
//!   grants.  Grants are handed out non-blockingly ([`MemoryGrant::try_grow`]
//!   never waits, so sessions cannot deadlock on each other); a denied
//!   session raises *pressure*, and sessions holding more than their fair
//!   share observe a reclaim request ([`MemoryGrant::reclaim_request`])
//!   telling them how many bytes to evict to disk.  Dropping a grant —
//!   normally or during a panic unwind — releases every byte it held.
//! * [`SpillManager`] — owns a per-engine temporary directory and
//!   byte-accounts every run file created in it.  [`RunWriter`] streams
//!   `<key, rid>` frames through a buffered writer with a per-frame
//!   checksum; [`SpillRun`] is the sealed, readable result whose `Drop`
//!   deletes the file (so an unwinding join leaks no temp files); the
//!   manager's `Drop` removes the whole directory.
//!
//! [`SpillConfig`] carries the executor's knobs (partition fanout,
//! recursion-depth cap, fallback block size) and [`SpillReport`] the
//! observability the engine surfaces per request (bytes spilled/restored,
//! partitions spilled, recursion depth, spill wall-clock).
//!
//! Everything here is deliberately independent of the execution layers: the
//! crate depends only on `datagen`'s [`Relation`](datagen::Relation)
//! container, so brokers and run files are testable (and reusable) without
//! an engine.

#![warn(missing_docs)]

pub mod broker;
pub mod config;
pub mod manager;
pub mod runfile;

pub use broker::{GrantDenied, MemoryBroker, MemoryGrant};
pub use config::{SpillConfig, SpillReport};
pub use manager::{PendingRun, SpillManager, SpillRun};
pub use runfile::{RunReader, RunWriter, SpillError};

// Locking goes through `hj_analysis::sync`, which recovers from poisoning
// centrally: a session that panicked mid-spill must not brick the broker
// or the manager for every other session (same policy as the engine's
// worker pool).  The old crate-local `lock_unpoisoned` helper is gone.
