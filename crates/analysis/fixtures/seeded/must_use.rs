// Seeded violation fixture: RAII types missing #[must_use].
// Scanned by `hj-lint --self-test` (never compiled).

pub struct BudgetGrant {
    bytes: usize,
}

pub struct SessionSlot<'a> {
    pool: &'a crate::Pool,
}

impl Drop for BudgetGrant {
    fn drop(&mut self) {
        crate::release(self.bytes);
    }
}
