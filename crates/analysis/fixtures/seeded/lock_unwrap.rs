// Seeded violation fixture: poison-panicking lock acquisition.
// Scanned by `hj-lint --self-test` (never compiled).

pub fn poke(state: &crate::SomeLock) {
    let a = state.counters.lock().unwrap();
    let b = state.counters.lock().expect("poisoned");
    let c = state.table.read().unwrap();
    let d = state.table.write().expect("poisoned");
    drop((a, b, c, d));
}
