// Seeded violation fixture: wall-clock read inside the deterministic
// simulator (self-test scans this under a synthetic crates/apu-sim/src/
// path).  Never compiled.

pub fn advance(clock: &mut crate::SimClock) {
    let now = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    clock.skew(now, wall);
}
