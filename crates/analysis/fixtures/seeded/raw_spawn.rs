// Seeded violation fixture: thread spawned outside WorkerPool/serve.
// Scanned by `hj-lint --self-test` (never compiled).

pub fn fire_and_forget() {
    std::thread::spawn(|| {
        // This thread is never joined: it can outlive the engine.
    });
    let _ = std::thread::Builder::new().name("stray".into());
}
