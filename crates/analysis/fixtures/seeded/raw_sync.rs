// Seeded violation fixture: raw std::sync primitives outside the facade.
// Scanned by `hj-lint --self-test` (never compiled).

use std::sync::{Arc, Mutex};

pub struct Seeded {
    state: std::sync::Mutex<u32>,
    gate: std::sync::Condvar,
    table: std::sync::RwLock<Vec<u32>>,
    shared: Arc<Mutex<u64>>,
}
