// Seeded violation fixture: HTTP route registered with a computed path.
// Scanned by `hj-lint --self-test` (never compiled).

pub fn register_dynamic(shard: usize) -> (&'static str, fn()) {
    let path = format!("/debug/shard/{shard}");
    let leaked: &'static str = Box::leak(path.into_boxed_str());
    http_route(leaked, dump_shard)
}
