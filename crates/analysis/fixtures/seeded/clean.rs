// False-positive canary: everything in this file is legal, and the
// self-test fails if any rule fires on it.  Never compiled.

use hj_analysis::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Docs may mention std::sync::Mutex and .lock().unwrap() freely —
/// patterns in comments and strings must not fire.
#[must_use = "dropping the guard releases the slot"]
pub struct SlotGuard<'a> {
    slots: &'a Mutex<usize>,
    gauge: &'a AtomicU64,
}

pub fn acquire<'a>(slots: &'a Mutex<usize>, gauge: &'a AtomicU64) -> SlotGuard<'a> {
    let mut held = slots.lock();
    *held += 1;
    gauge.fetch_add(1, Ordering::Relaxed);
    let diag = "std::thread::spawn and Instant::now are fine in strings";
    let _ = (diag, Arc::new(OnceLock::<Condvar>::new()));
    SlotGuard { slots, gauge }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn_threads() {
        let handle = std::thread::spawn(|| std::time::Instant::now());
        let _ = handle.join().unwrap();
    }
}
