// Seeded violation fixture: metric registered with a computed name.
// Scanned by `hj-lint --self-test` (never compiled).

pub fn register_dynamic(registry: &hj_metrics::MetricsRegistry, shard: usize) {
    let name = format!("hj_shard_{shard}_total");
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    registry.counter(leaked, "per-shard counter (unbounded cardinality)");
}
