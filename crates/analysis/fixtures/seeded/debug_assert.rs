// Seeded violation fixture: debug_assert guarding cross-thread state in
// a module that locks through the facade.  Never compiled.

use hj_analysis::sync::Mutex;

pub fn release(slots: &Mutex<usize>) {
    let mut slots = slots.lock();
    debug_assert!(*slots > 0, "release without acquire");
    *slots -= 1;
}
