//! The instrumented synchronisation facade.
//!
//! Drop-in replacements for [`std::sync::Mutex`], [`std::sync::RwLock`]
//! and [`std::sync::Condvar`] with two differences:
//!
//! 1. **Poison recovery is built in.**  Acquisition returns the guard
//!    directly, never a `Result`: a thread that panicked while holding a
//!    lock has already had its panic propagated to whoever waits on it
//!    (the engine re-raises worker panics at the submitter), so poisoning
//!    carries no extra information here — and treating it as fatal would
//!    let one bad join turn every later `stats()`/`submit()` call into a
//!    panic.  This subsumes the `lock_unpoisoned`/`wait_unpoisoned`
//!    helpers that used to be copy-pasted across `hj-core`, `hj-spill`
//!    and `hj-server`.
//! 2. **Every lock carries a static class label.**  [`Mutex::new`] takes
//!    a `&'static str` class (e.g. `"pool.deque"`); the class set and its
//!    intended partial order are documented in `docs/INVARIANTS.md`.  In
//!    normal builds the label is inert.  Under the test-only feature
//!    `lock-order`, every acquisition is recorded against its class into
//!    a process-global acquisition graph and the [`crate::lockorder`]
//!    detector flags order cycles, condvar waits holding a second lock,
//!    and locks held at thread exit.
//!
//! The wrappers are thin: without `lock-order` each call compiles to the
//! `std` call plus an `unwrap_or_else(PoisonError::into_inner)` — no
//! allocation, no atomics, no global state.
// The facade is the one sanctioned home of the raw std primitives.
// hj-lint: allow-file(raw-sync)
// hj-lint: allow-file(lock-unwrap)

use crate::lockorder::Tracked;
use std::panic::Location;
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive wrapping [`std::sync::Mutex`] with poison
/// recovery and (under `lock-order`) acquisition tracking.
pub struct Mutex<T: ?Sized> {
    class: &'static str,
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`]; the lock is released on drop.
#[must_use = "dropping the guard immediately releases the lock"]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    tracked: Tracked,
}

impl<T> Mutex<T> {
    /// A new mutex of the given lock class protecting `value`.
    ///
    /// The class is a static label shared by every lock of the same role
    /// (all worker deques are one class); it names the node this lock's
    /// acquisitions are recorded under in the lock-order graph.
    pub fn new(class: &'static str, value: T) -> Self {
        Mutex {
            class,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value (poison
    /// recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available; recovers the inner
    /// data if a panicking thread poisoned it.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = Location::caller();
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            inner,
            tracked: Tracked::acquire(self.class, site),
        }
    }

    /// Acquires the lock only if it is free right now.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let site = Location::caller();
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard {
                inner,
                tracked: Tracked::acquire(self.class, site),
            }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
                tracked: Tracked::acquire(self.class, site),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access through exclusive ownership — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// The lock's static class label.
    pub fn class(&self) -> &'static str {
        self.class
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Mutex");
        s.field("class", &self.class);
        match self.inner.try_lock() {
            Ok(guard) => s.field("data", &&*guard),
            Err(_) => s.field("data", &"<locked>"),
        };
        s.finish()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable wrapping [`std::sync::Condvar`], waiting on the
/// facade's [`MutexGuard`] with poison recovery.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Releases `guard`'s mutex and blocks until notified; the mutex is
    /// reacquired (poison recovered) before returning.
    ///
    /// Under `lock-order`, entering a wait while holding any *other* lock
    /// is recorded as a violation: the wait is unbounded and every thread
    /// needing that second lock would stall behind it.
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let site = Location::caller();
        let MutexGuard { inner, tracked } = guard;
        let class = tracked.class();
        tracked.begin_wait(site);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            inner,
            tracked: Tracked::reacquired(class, site),
        }
    }

    /// Like [`wait`](Self::wait), but gives up after `timeout`; the
    /// returned flag reports whether the wait timed out.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let site = Location::caller();
        let MutexGuard { inner, tracked } = guard;
        let class = tracked.class();
        tracked.begin_wait(site);
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (
            MutexGuard {
                inner,
                tracked: Tracked::reacquired(class, site),
            },
            result.timed_out(),
        )
    }

    /// Wakes one thread blocked on this condvar.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked on this condvar.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock wrapping [`std::sync::RwLock`] with poison
/// recovery and (under `lock-order`) acquisition tracking.
///
/// Shared (`read`) and exclusive (`write`) acquisitions are recorded
/// against the same class: two reader-held classes cannot deadlock each
/// other, but read-then-write upgrades across classes can, so the
/// detector treats every acquisition as ordering-relevant.
pub struct RwLock<T: ?Sized> {
    class: &'static str,
    inner: std::sync::RwLock<T>,
}

/// RAII shared-read guard of an [`RwLock`].
#[must_use = "dropping the guard immediately releases the lock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[allow(dead_code)] // held for its Drop (pops the held-lock stack)
    tracked: Tracked,
}

/// RAII exclusive-write guard of an [`RwLock`].
#[must_use = "dropping the guard immediately releases the lock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[allow(dead_code)] // held for its Drop (pops the held-lock stack)
    tracked: Tracked,
}

impl<T> RwLock<T> {
    /// A new reader-writer lock of the given lock class protecting
    /// `value`.
    pub fn new(class: &'static str, value: T) -> Self {
        RwLock {
            class,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value (poison
    /// recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (poison recovered).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let site = Location::caller();
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard {
            inner,
            tracked: Tracked::acquire(self.class, site),
        }
    }

    /// Acquires exclusive write access (poison recovered).
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let site = Location::caller();
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard {
            inner,
            tracked: Tracked::acquire(self.class, site),
        }
    }

    /// Mutable access through exclusive ownership — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// The lock's static class label.
    pub fn class(&self) -> &'static str {
        self.class
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("RwLock");
        s.field("class", &self.class);
        match self.inner.try_read() {
            Ok(guard) => s.field("data", &&*guard),
            Err(_) => s.field("data", &"<locked>"),
        };
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_and_class() {
        let m = Mutex::new("test.roundtrip", 41u32);
        assert_eq!(m.class(), "test.roundtrip");
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contends_and_get_mut_bypasses() {
        let mut m = Mutex::new("test.try", vec![1, 2]);
        m.get_mut().push(3);
        let guard = m.lock();
        // Same thread, lock already held: try_lock must not succeed.
        assert!(m.try_lock().is_none());
        drop(guard);
        assert_eq!(m.try_lock().map(|g| g.len()), Some(3));
    }

    #[test]
    fn poisoned_mutex_recovers_with_data_intact() {
        let m = Arc::new(Mutex::new("test.poison", 7u32));
        let clone = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison the facade mutex");
        })
        .join();
        // The panic poisoned the std mutex underneath; the facade shrugs
        // it off and the data is still there.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn condvar_wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new("test.cv", false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            })
        };
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().expect("waiter completed");
    }

    #[test]
    fn condvar_wait_timeout_reports_expiry() {
        let m = Mutex::new("test.cv_timeout", ());
        let cv = Condvar::new();
        let (guard, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(1));
        assert!(timed_out);
        drop(guard);
    }

    #[test]
    fn rwlock_readers_share_and_writer_excludes() {
        let l = Arc::new(RwLock::new("test.rw", 5u32));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        let clone = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = clone.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.read(), 6, "poisoned rwlock must recover");
    }
}
