//! # hj-analysis — the workspace's concurrency analysis layer
//!
//! Five hand-rolled concurrency protocols keep this engine correct:
//! worker-pool park/wake, the bounded admission queue, `MemoryBroker`
//! grants/reclaim, single-flight cache builds, and server
//! drain-on-shutdown.  Each was proven lost-wakeup-free or deadlock-free
//! by ad-hoc tests; this crate turns those proofs into standing,
//! machine-checked gates.  It sits **below** every other crate in the
//! dependency graph (std-only, no dependencies) so anything that locks
//! can use it.
//!
//! Two pillars:
//!
//! * [`sync`] — the instrumented lock facade.  `sync::{Mutex, RwLock,
//!   Condvar}` are thin std wrappers with poison recovery built in (one
//!   home for the `lock_unpoisoned`/`wait_unpoisoned` policy that used to
//!   be copy-pasted across three crates).  Every lock is constructed with
//!   a static *class* label; under the test-only feature `lock-order`,
//!   acquisitions are recorded into a global graph and [`lockorder`]
//!   reports order cycles (potential deadlocks), condvar waits holding a
//!   second lock, and locks held at thread exit — with the acquisition
//!   site chains of both sides.
//! * [`lint`] — the `hj-lint` invariant checker (binary:
//!   `cargo run -p hj-analysis --bin hj-lint`).  A std-only source
//!   scanner that walks the workspace and enforces repo concurrency
//!   invariants as deny-by-default rules (raw `std::sync` primitives
//!   outside the facade, poison-panicking `.lock().unwrap()`, stray
//!   `thread::spawn`, wall-clock reads in the deterministic simulator,
//!   `debug_assert!` guarding cross-thread invariants, missing
//!   `#[must_use]` on RAII guard types), with `// hj-lint: allow(rule)`
//!   escapes.  Rules and rationale live in `docs/INVARIANTS.md`.
//!
//! CI runs `hj-lint` on every push and the workspace test suite under
//! `--features lock-order`, alongside ThreadSanitizer and Miri jobs — a
//! standing race/deadlock gate for every future PR.

#![warn(missing_docs)]

pub mod lint;
pub mod lockorder;
pub mod sync;
