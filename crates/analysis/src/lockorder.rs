//! Lock-acquisition recording and deadlock-pattern detection.
//!
//! Compiled to no-ops unless the crate feature `lock-order` is enabled (a
//! test-only feature: release builds pay nothing).  When enabled, every
//! acquisition made through [`crate::sync`] is recorded against the lock's
//! static *class* label into one process-global acquisition graph, and
//! three patterns are flagged as [`Violation`]s:
//!
//! * **Order cycles** — class A was held while acquiring class B *and*
//!   (anywhere in the process, any thread, any time) class B was held
//!   while acquiring class A.  A cycle across the class partial order is a
//!   potential deadlock even if this run happened not to interleave the
//!   two chains; both acquisition site chains are reported.
//! * **Condvar wait while holding a second lock** — waiting releases only
//!   the condvar's own mutex; any other lock stays held for the whole
//!   (unbounded) wait, which stalls every thread that needs it and is a
//!   classic lost-progress/deadlock shape.
//! * **Lock held at thread exit** — a guard leaked past the end of its
//!   thread (e.g. via `mem::forget`) leaves the lock permanently
//!   unavailable.
//!
//! Violations are *recorded*, not panicked, so one detection cannot
//! cascade into unrelated unwinds mid-lock; test suites end with
//! [`assert_clean`] (see `tests/lock_discipline.rs` at the workspace
//! root), and detector self-tests inspect [`take_violations`].
// The detector's registry is the one lock that cannot itself go through
// the facade (it IS the instrumentation).
// hj-lint: allow-file(raw-sync)

/// Which concurrency hazard a [`Violation`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A cycle in the lock-class acquisition graph (potential deadlock).
    OrderCycle,
    /// A condvar wait entered while a second lock was held.
    WaitWhileHoldingLock,
    /// A lock still held when its owning thread exited.
    HeldAtThreadExit,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::OrderCycle => write!(f, "lock-order cycle"),
            ViolationKind::WaitWhileHoldingLock => {
                write!(f, "condvar wait while holding a second lock")
            }
            ViolationKind::HeldAtThreadExit => write!(f, "lock held at thread exit"),
        }
    }
}

/// One detected concurrency-discipline violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The hazard pattern that fired.
    pub kind: ViolationKind,
    /// The lock classes involved, in detection order.
    pub classes: Vec<&'static str>,
    /// Human-readable report including every acquisition site chain the
    /// detector recorded for the involved edges.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// True when the crate was compiled with the `lock-order` feature (the
/// detector is live and [`violations`] can be non-empty).
pub fn enabled() -> bool {
    cfg!(feature = "lock-order")
}

/// A snapshot of every violation recorded so far in this process.
pub fn violations() -> Vec<Violation> {
    imp::with_registry(|reg| reg.violations.clone())
}

/// Drains and returns the recorded violations (used by detector
/// self-tests so deliberate violations do not fail later clean checks in
/// the same process).
pub fn take_violations() -> Vec<Violation> {
    imp::with_registry(|reg| std::mem::take(&mut reg.violations))
}

/// Panics, listing every recorded violation, unless the process is clean.
///
/// A no-op when the `lock-order` feature is off, so callers can invoke it
/// unconditionally at the end of a test.
pub fn assert_clean() {
    let violations = violations();
    assert!(
        violations.is_empty(),
        "lock-order violations detected:\n{}",
        violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(feature = "lock-order")]
mod imp {
    use super::{Violation, ViolationKind};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// One observed "held `from` while acquiring `to`" edge, with the first
    /// site pair that produced it (sites are example witnesses; the edge
    /// set, not the site set, drives cycle detection).
    struct Edge {
        from_site: &'static Location<'static>,
        to_site: &'static Location<'static>,
    }

    #[derive(Default)]
    pub(super) struct Registry {
        /// `(held class, acquired class)` → witness sites.
        edges: HashMap<(&'static str, &'static str), Edge>,
        /// Closing edges already reported, so one bad pattern in a loop
        /// yields one violation, not millions.
        reported: std::collections::HashSet<(&'static str, &'static str)>,
        pub(super) violations: Vec<Violation>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    pub(super) fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
        // The registry lock is a leaf: nothing is acquired while it is
        // held, so the detector cannot itself deadlock the program.
        f(&mut registry().lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// One facade lock currently held by this thread.
    struct Held {
        class: &'static str,
        site: &'static Location<'static>,
        token: u64,
    }

    /// The thread's held-lock stack; its `Drop` (thread-local storage
    /// teardown at thread exit) flags guards that were never released.
    #[derive(Default)]
    struct HeldStack {
        stack: Vec<Held>,
    }

    impl Drop for HeldStack {
        fn drop(&mut self) {
            if self.stack.is_empty() {
                return;
            }
            let classes: Vec<&'static str> = self.stack.iter().map(|h| h.class).collect();
            let chain = self
                .stack
                .iter()
                .map(|h| format!("`{}` acquired at {}", h.class, h.site))
                .collect::<Vec<_>>()
                .join("; ");
            with_registry(|reg| {
                reg.violations.push(Violation {
                    kind: ViolationKind::HeldAtThreadExit,
                    classes,
                    message: format!("thread exited still holding: {chain}"),
                });
            });
        }
    }

    thread_local! {
        static HELD: RefCell<HeldStack> = RefCell::new(HeldStack::default());
        static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// Records an acquisition of `class` at `site`: adds a graph edge from
    /// every lock currently held, checks the new edges for cycles, and
    /// pushes the lock onto the thread's held stack.  Returns the token
    /// that [`on_release`] later pops.
    pub(super) fn on_acquire(class: &'static str, site: &'static Location<'static>) -> u64 {
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        let held: Vec<(&'static str, &'static Location<'static>)> = HELD.with(|h| {
            let mut h = h.borrow_mut();
            let snapshot = h.stack.iter().map(|e| (e.class, e.site)).collect();
            h.stack.push(Held { class, site, token });
            snapshot
        });
        if !held.is_empty() {
            with_registry(|reg| {
                for (from, from_site) in held {
                    record_edge(reg, from, from_site, class, site);
                }
            });
        }
        token
    }

    /// Pops the held-stack entry created by [`on_acquire`].  Guards may be
    /// dropped in any order, so the pop searches by token from the top.
    pub(super) fn on_release(token: u64) {
        HELD.with(|h| {
            let stack = &mut h.borrow_mut().stack;
            if let Some(pos) = stack.iter().rposition(|e| e.token == token) {
                stack.remove(pos);
            }
        });
    }

    /// Flags a condvar wait entered while other locks are held, then pops
    /// the waiting lock's entry (its mutex is released for the wait).
    pub(super) fn on_wait_begin(token: u64, class: &'static str, site: &'static Location<'static>) {
        let others: Vec<(&'static str, &'static Location<'static>)> = HELD.with(|h| {
            h.borrow()
                .stack
                .iter()
                .filter(|e| e.token != token)
                .map(|e| (e.class, e.site))
                .collect()
        });
        if !others.is_empty() {
            let mut classes = vec![class];
            classes.extend(others.iter().map(|(c, _)| *c));
            let chain = others
                .iter()
                .map(|(c, s)| format!("`{c}` acquired at {s}"))
                .collect::<Vec<_>>()
                .join("; ");
            with_registry(|reg| {
                reg.violations.push(Violation {
                    kind: ViolationKind::WaitWhileHoldingLock,
                    classes,
                    message: format!(
                        "waiting on condvar of `{class}` at {site} while still holding: {chain}"
                    ),
                });
            });
        }
        on_release(token);
    }

    /// Re-registers the waiting lock after the condvar wait reacquired its
    /// mutex (no edge recording: a clean wait holds nothing else, and a
    /// dirty one has already been reported).
    pub(super) fn on_wait_end(class: &'static str, site: &'static Location<'static>) -> u64 {
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        HELD.with(|h| h.borrow_mut().stack.push(Held { class, site, token }));
        token
    }

    /// Inserts edge `from → to` and reports a violation if it closes a
    /// cycle in the class graph (including the self-cycle `A → A`: two
    /// same-class locks have no defined order between themselves).
    fn record_edge(
        reg: &mut Registry,
        from: &'static str,
        from_site: &'static Location<'static>,
        to: &'static str,
        to_site: &'static Location<'static>,
    ) {
        reg.edges
            .entry((from, to))
            .or_insert(Edge { from_site, to_site });
        if let Some(path) = cycle_path(reg, to, from) {
            if reg.reported.insert((from, to)) {
                // `path` walks `to → … → from`; appending the closing edge
                // `from → to` spells out the full cycle with one witness
                // site pair per edge — "both acquisition site chains" for
                // the common two-class inversion.
                let mut hops = Vec::new();
                let mut classes = Vec::new();
                for pair in path.windows(2) {
                    let edge = &reg.edges[&(pair[0], pair[1])];
                    classes.push(pair[0]);
                    hops.push(format!(
                        "`{}` (held, acquired at {}) -> `{}` (acquired at {})",
                        pair[0], edge.from_site, pair[1], edge.to_site
                    ));
                }
                let closing = &reg.edges[&(from, to)];
                classes.push(from);
                hops.push(format!(
                    "`{}` (held, acquired at {}) -> `{}` (acquired at {})",
                    from, closing.from_site, to, closing.to_site
                ));
                reg.violations.push(Violation {
                    kind: ViolationKind::OrderCycle,
                    classes,
                    message: format!(
                        "acquisition cycle across {} class(es): {}",
                        path.len().max(2) - 1,
                        hops.join("; then ")
                    ),
                });
            }
        }
    }

    /// A path `start → … → goal` through the edge set, if one exists
    /// (depth-first; the graph is tiny — one node per static lock class).
    fn cycle_path(
        reg: &Registry,
        start: &'static str,
        goal: &'static str,
    ) -> Option<Vec<&'static str>> {
        fn dfs(
            reg: &Registry,
            node: &'static str,
            goal: &'static str,
            path: &mut Vec<&'static str>,
        ) -> bool {
            if path.contains(&node) {
                return false;
            }
            path.push(node);
            if node == goal {
                return true;
            }
            for (from, to) in reg.edges.keys() {
                if *from == node && dfs(reg, to, goal, path) {
                    return true;
                }
            }
            path.pop();
            false
        }
        let mut path = Vec::new();
        if dfs(reg, start, goal, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    /// The per-guard tracking handle: created on acquisition, pops the
    /// held-stack entry when dropped.
    pub(crate) struct Tracked {
        class: &'static str,
        token: u64,
    }

    impl Tracked {
        #[inline]
        pub(crate) fn acquire(class: &'static str, site: &'static Location<'static>) -> Self {
            Tracked {
                class,
                token: on_acquire(class, site),
            }
        }

        /// The guard's lock class (used to rebuild tracking after a wait).
        #[inline]
        pub(crate) fn class(&self) -> &'static str {
            self.class
        }

        /// Consumes the handle across a condvar wait: flags other held
        /// locks, then pops this one for the duration of the wait.
        #[inline]
        pub(crate) fn begin_wait(self, site: &'static Location<'static>) {
            on_wait_begin(self.token, self.class, site);
            std::mem::forget(self); // entry already popped by on_wait_begin
        }

        /// Rebuilds tracking once the wait reacquired the mutex.
        #[inline]
        pub(crate) fn reacquired(class: &'static str, site: &'static Location<'static>) -> Self {
            Tracked {
                class,
                token: on_wait_end(class, site),
            }
        }
    }

    impl Drop for Tracked {
        #[inline]
        fn drop(&mut self) {
            on_release(self.token);
        }
    }
}

#[cfg(not(feature = "lock-order"))]
mod imp {
    use super::Violation;
    use std::panic::Location;

    /// Feature-off registry shim: there is nothing to record, so every
    /// query sees an empty, immutable registry.
    pub(super) struct Registry {
        pub(super) violations: Vec<Violation>,
    }

    pub(super) fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
        f(&mut Registry {
            violations: Vec::new(),
        })
    }

    /// Zero-sized no-op twin of the instrumented tracking handle: normal
    /// builds carry no per-guard state and make no calls.
    pub(crate) struct Tracked;

    impl Tracked {
        #[inline(always)]
        pub(crate) fn acquire(_class: &'static str, _site: &'static Location<'static>) -> Self {
            Tracked
        }

        #[inline(always)]
        pub(crate) fn class(&self) -> &'static str {
            ""
        }

        #[inline(always)]
        pub(crate) fn begin_wait(self, _site: &'static Location<'static>) {}

        #[inline(always)]
        pub(crate) fn reacquired(_class: &'static str, _site: &'static Location<'static>) -> Self {
            Tracked
        }
    }
}

pub(crate) use imp::Tracked;
