//! `hj-lint` — the workspace invariant checker.
//!
//! ```text
//! cargo run -p hj-analysis --bin hj-lint                # lint the workspace
//! cargo run -p hj-analysis --bin hj-lint -- --self-test # prove the rules fire
//! cargo run -p hj-analysis --bin hj-lint -- --root DIR  # lint another tree
//! cargo run -p hj-analysis --bin hj-lint -- --list-rules
//! ```
//!
//! Exit code 0 when the tree is clean (or, under `--self-test`, when
//! every rule caught its seeded fixture); 1 otherwise.  Rules and their
//! rationale are documented in `docs/INVARIANTS.md`.

use hj_analysis::lint::{self, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut self_test = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("hj-lint: --root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--self-test" => self_test = true,
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<26} {}", rule.id(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hj-lint: unknown argument `{other}`");
                eprintln!("usage: hj-lint [--root PATH] [--self-test] [--list-rules]");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| lint::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("hj-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::FAILURE;
        }
    };

    if self_test {
        return run_self_test(&root);
    }

    let findings = match lint::scan_workspace(&root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("hj-lint: scan failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("hj-lint: clean ({} rules, 0 findings)", Rule::ALL.len());
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!("hj-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}

/// Each rule must catch its seeded fixture — a linter whose rules have
/// silently stopped firing is worse than no linter.  Fixtures carry a
/// synthetic workspace-relative path so path-scoped rules (simulator
/// modules, sanctioned spawn files) exercise their real scope.
const FIXTURES: [(&str, &str, Rule); 8] = [
    (
        "raw_sync.rs",
        "crates/fixture/src/raw_sync.rs",
        Rule::RawSync,
    ),
    (
        "lock_unwrap.rs",
        "crates/fixture/src/lock_unwrap.rs",
        Rule::LockUnwrap,
    ),
    (
        "raw_spawn.rs",
        "crates/fixture/src/raw_spawn.rs",
        Rule::RawSpawn,
    ),
    (
        "wall_clock.rs",
        "crates/apu-sim/src/fixture_wall_clock.rs",
        Rule::WallClockInSim,
    ),
    (
        "debug_assert.rs",
        "crates/fixture/src/debug_assert.rs",
        Rule::DebugAssertConcurrency,
    ),
    (
        "must_use.rs",
        "crates/fixture/src/must_use.rs",
        Rule::MustUseGuard,
    ),
    (
        "metrics_name.rs",
        "crates/fixture/src/metrics_name.rs",
        Rule::MetricsNameLiteral,
    ),
    (
        "endpoint_path.rs",
        "crates/fixture/src/endpoint_path.rs",
        Rule::EndpointPathLiteral,
    ),
];

fn run_self_test(root: &std::path::Path) -> ExitCode {
    let fixture_dir = root.join("crates/analysis/fixtures/seeded");
    let mut failures = 0usize;
    for (file, synthetic_path, rule) in FIXTURES {
        let path = fixture_dir.join(file);
        let content = match std::fs::read_to_string(&path) {
            Ok(content) => content,
            Err(err) => {
                eprintln!("self-test: cannot read {}: {err}", path.display());
                failures += 1;
                continue;
            }
        };
        let findings = lint::scan_file(synthetic_path, &content);
        let hits = findings.iter().filter(|f| f.rule == rule).count();
        if hits == 0 {
            eprintln!(
                "self-test FAIL: rule `{}` did not fire on fixture {}",
                rule.id(),
                file
            );
            failures += 1;
        } else {
            println!("self-test ok: `{}` fired {hits}x on {file}", rule.id());
        }
    }
    // The clean fixture must produce zero findings — rules that fire on
    // innocent code would drown the signal.
    let clean_path = fixture_dir.join("clean.rs");
    match std::fs::read_to_string(&clean_path) {
        Ok(content) => {
            let findings = lint::scan_file("crates/fixture/src/clean.rs", &content);
            if findings.is_empty() {
                println!("self-test ok: clean fixture produced 0 findings");
            } else {
                for finding in &findings {
                    eprintln!("self-test FAIL (false positive): {finding}");
                }
                failures += 1;
            }
        }
        Err(err) => {
            eprintln!("self-test: cannot read {}: {err}", clean_path.display());
            failures += 1;
        }
    }
    if failures == 0 {
        println!(
            "hj-lint self-test: all {} rules fire on seeded violations",
            FIXTURES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("hj-lint self-test: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
