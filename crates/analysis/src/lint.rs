//! The `hj-lint` invariant checker: a std-only source scanner enforcing
//! the workspace's concurrency and determinism invariants.
//!
//! Run it with `cargo run -p hj-analysis --bin hj-lint`.  Every rule is
//! deny-by-default; a finding can be waived with an escape comment on the
//! same or the preceding line:
//!
//! ```text
//! // hj-lint: allow(rule-id)        — waive one finding
//! // hj-lint: allow-file(rule-id)   — waive the rule for the whole file
//! ```
//!
//! Rules (rationale and examples in `docs/INVARIANTS.md`):
//!
//! | id | invariant |
//! |----|-----------|
//! | `raw-sync` | no raw `std::sync` `Mutex`/`RwLock`/`Condvar` outside the facade |
//! | `lock-unwrap` | no poison-panicking `.lock().unwrap()` / `.lock().expect(` |
//! | `raw-spawn` | no `thread::spawn`/`thread::Builder` outside `WorkerPool`/`serve` |
//! | `wall-clock-in-sim` | no `Instant::now`/`SystemTime::now` in the deterministic simulator |
//! | `debug-assert-concurrency` | no `debug_assert!` in modules that lock (cross-thread invariants must hold in release) |
//! | `must-use-guard` | `#[must_use]` on RAII `*Guard`/`*Grant`/`*Slot`/`*Handle` types |
//! | `metrics-name-literal` | metric registration (`.counter(`/`.gauge(`/`.histogram(` and `_with` kin) takes a string-literal name |
//! | `endpoint-path-literal` | HTTP route registration (`http_route(`) takes a string-literal path |
//!
//! The scanner is comment- and string-aware (patterns inside comments or
//! string literals do not fire) and skips test code — files under a
//! `tests/` directory and `#[cfg(test)]` modules — for rules where test
//! code is legitimately exempt (e.g. tests may spawn raw threads).
//
// The linter's own source necessarily spells several forbidden patterns
// as match data and documentation:
// hj-lint: allow-file(raw-sync)
// hj-lint: allow-file(lock-unwrap)
// hj-lint: allow-file(raw-spawn)
// hj-lint: allow-file(wall-clock-in-sim)
// hj-lint: allow-file(debug-assert-concurrency)

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Raw `std::sync::{Mutex, RwLock, Condvar}` outside the facade.
    RawSync,
    /// Poison-panicking lock acquisition (`.lock().unwrap()` and kin).
    LockUnwrap,
    /// `thread::spawn`/`thread::Builder` outside the sanctioned spawn
    /// sites (`WorkerPool` in `pipeline.rs`, the serving layer in
    /// `serve.rs`).
    RawSpawn,
    /// Wall-clock reads inside the deterministic simulator modules.
    WallClockInSim,
    /// `debug_assert!` in a module that locks: an invariant that guards
    /// cross-thread state must hold (and abort) in release builds too.
    DebugAssertConcurrency,
    /// RAII guard/grant/slot/handle types missing `#[must_use]`.
    MustUseGuard,
    /// Metric registration with a computed (non-literal) name: the
    /// registry's name set must stay a greppable, bounded catalogue
    /// (`docs/OBSERVABILITY.md`), and dynamic names are an unbounded-
    /// cardinality hazard.
    MetricsNameLiteral,
    /// HTTP route registered with a computed (non-literal) path: the
    /// endpoint catalogue must stay a single greppable dispatch table
    /// (`docs/OBSERVABILITY.md`), and computed paths defeat both the
    /// catalogue and the route-coverage tests.
    EndpointPathLiteral,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::RawSync,
        Rule::LockUnwrap,
        Rule::RawSpawn,
        Rule::WallClockInSim,
        Rule::DebugAssertConcurrency,
        Rule::MustUseGuard,
        Rule::MetricsNameLiteral,
        Rule::EndpointPathLiteral,
    ];

    /// The rule's stable kebab-case id (used in escape comments).
    pub fn id(self) -> &'static str {
        match self {
            Rule::RawSync => "raw-sync",
            Rule::LockUnwrap => "lock-unwrap",
            Rule::RawSpawn => "raw-spawn",
            Rule::WallClockInSim => "wall-clock-in-sim",
            Rule::DebugAssertConcurrency => "debug-assert-concurrency",
            Rule::MustUseGuard => "must-use-guard",
            Rule::MetricsNameLiteral => "metrics-name-literal",
            Rule::EndpointPathLiteral => "endpoint-path-literal",
        }
    }

    /// One-line description of the invariant the rule enforces.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::RawSync => {
                "raw std::sync Mutex/RwLock/Condvar — use hj_analysis::sync (poison recovery + lock-order tracking)"
            }
            Rule::LockUnwrap => {
                "poison-panicking lock acquisition — the facade's lock()/wait() recover from poisoning"
            }
            Rule::RawSpawn => {
                "thread spawned outside WorkerPool/serve — long-lived threads must be pooled and joined"
            }
            Rule::WallClockInSim => {
                "wall-clock read in the deterministic simulator — sim time comes from the event clock"
            }
            Rule::DebugAssertConcurrency => {
                "debug_assert in a locking module — cross-thread invariants must be checked in release builds"
            }
            Rule::MustUseGuard => {
                "RAII guard/grant/slot/handle type without #[must_use] — silently dropping one releases its resource early"
            }
            Rule::MetricsNameLiteral => {
                "metric registered with a computed name — names must be string literals so the catalogue in docs/OBSERVABILITY.md stays complete and cardinality stays bounded"
            }
            Rule::EndpointPathLiteral => {
                "HTTP route registered with a computed path — paths must be string literals in the dispatch table so the endpoint catalogue in docs/OBSERVABILITY.md stays complete"
            }
        }
    }

    /// Whether the rule also applies to test code (`tests/` directories
    /// and `#[cfg(test)]` modules).
    fn applies_to_tests(self) -> bool {
        match self {
            // Tests legitimately spawn helper threads, poke raw locks to
            // poison them, and take shortcuts that would be bugs in
            // product code.
            Rule::RawSync
            | Rule::LockUnwrap
            | Rule::RawSpawn
            | Rule::WallClockInSim
            | Rule::DebugAssertConcurrency => false,
            // A test-only RAII type still deserves #[must_use], but the
            // cost of a miss is low; keep the rule to product code so
            // fixtures stay small.
            Rule::MustUseGuard => false,
            // Tests register probe metrics into throwaway registries;
            // only product registrations feed the exported catalogue.
            Rule::MetricsNameLiteral => false,
            // Likewise: only the product dispatch table feeds the
            // endpoint catalogue.
            Rule::EndpointPathLiteral => false,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Files where `thread::spawn`/`thread::Builder` are sanctioned: the
/// worker pool (spawns once, joins on drop) and the serving layer
/// (handler threads tracked in `ServerStats::live_handlers`, joined on
/// shutdown).
const SANCTIONED_SPAWN_FILES: [&str; 2] =
    ["crates/core/src/pipeline.rs", "crates/core/src/serve.rs"];

/// Path prefixes of the deterministic simulator: modules whose output
/// must be a pure function of their inputs and the event clock.
const DETERMINISTIC_MODULE_PREFIXES: [&str; 1] = ["crates/apu-sim/src/"];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}",
            self.path,
            self.line,
            self.rule.id(),
            self.excerpt,
            self.rule.describe()
        )
    }
}

// ---------------------------------------------------------------------------
// Source model: comment/string stripping + test-region detection
// ---------------------------------------------------------------------------

/// A file prepared for scanning: raw lines (escape comments live in
/// comments, so they are read from the raw text), code-only lines
/// (comments and string/char literal *contents* blanked out, so patterns
/// in prose cannot fire), and a per-line "inside `#[cfg(test)]` module"
/// flag.
struct Prepared {
    raw: Vec<String>,
    code: Vec<String>,
    in_test: Vec<bool>,
}

/// Strips comments and literal contents from `content`, line by line.
///
/// Handles nested block comments, string literals with escapes, raw
/// strings (`r"…"`, `r#"…"#`), and distinguishes char literals from
/// lifetimes.  The result preserves line structure: braces outside
/// comments/literals survive, so brace counting works on the output.
fn strip_code(content: &str) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        Block(u32),  // nesting depth of /* */
        Str,         // inside "…" (may span lines)
        RawStr(u32), // inside r##"…"## with N hashes
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    for line in content.lines() {
        let bytes: Vec<char> = line.chars().collect();
        let mut stripped = String::with_capacity(line.len());
        let mut i = 0usize;
        while i < bytes.len() {
            match state {
                State::Block(depth) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => {
                    if bytes[i] == '\\' {
                        i += 2;
                    } else if bytes[i] == '"' {
                        state = State::Code;
                        stripped.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if bytes[i] == '"' {
                        let mut ok = true;
                        for h in 0..hashes as usize {
                            if bytes.get(i + 1 + h) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            state = State::Code;
                            stripped.push('"');
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
                State::Code => match bytes[i] {
                    '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
                    '/' if bytes.get(i + 1) == Some(&'*') => {
                        state = State::Block(1);
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        stripped.push('"');
                        i += 1;
                    }
                    'r' if bytes.get(i + 1) == Some(&'"')
                        || (bytes.get(i + 1) == Some(&'#')
                            && matches!(bytes.get(i + 2), Some(&'#') | Some(&'"'))) =>
                    {
                        // r"…" or r#"…"# (possibly more hashes): count them.
                        let mut hashes = 0u32;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            stripped.push('"');
                            i = j + 1;
                        } else {
                            stripped.push('r');
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: 'x' / '\n' close within
                        // a few chars; 'a of `<'a>` does not.
                        if bytes.get(i + 1) == Some(&'\\') {
                            // escaped char literal: skip to closing quote
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            i += 3; // plain char literal 'x'
                        } else {
                            i += 1; // lifetime
                        }
                    }
                    c => {
                        stripped.push(c);
                        i += 1;
                    }
                },
            }
        }
        // `state` persists across lines: multi-line strings, raw strings
        // and block comments keep stripping until they close.
        out.push(stripped);
    }
    out
}

/// Marks the lines belonging to `#[cfg(test)] mod … { … }` regions.
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    // When inside a test region: the depth the region's closing brace
    // returns to.
    let mut region_floor: Option<i64> = None;
    for (idx, line) in code.iter().enumerate() {
        let trimmed = line.trim();
        let before = depth;
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        depth += opens - closes;

        if let Some(floor) = region_floor {
            in_test[idx] = true;
            if depth <= floor {
                region_floor = None;
            }
            continue;
        }

        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.is_empty() || trimmed.starts_with("#[") {
                continue; // more attributes between cfg and the item
            }
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                in_test[idx] = true;
                if depth > before {
                    region_floor = Some(before);
                } // else: `mod x;` outline — nothing to span
            }
            pending_cfg_test = false;
        }
    }
    in_test
}

fn prepare(content: &str) -> Prepared {
    let raw: Vec<String> = content.lines().map(str::to_owned).collect();
    let code = strip_code(content);
    let in_test = test_regions(&code);
    Prepared { raw, code, in_test }
}

// ---------------------------------------------------------------------------
// Pattern tables (assembled with concat! so the linter's own source does
// not spell the forbidden tokens verbatim)
// ---------------------------------------------------------------------------

const P_STD_SYNC_MUTEX: &str = concat!("std::sync", "::Mutex");
const P_STD_SYNC_RWLOCK: &str = concat!("std::sync", "::RwLock");
const P_STD_SYNC_CONDVAR: &str = concat!("std::sync", "::Condvar");
const P_USE_STD_SYNC: &str = concat!("use std::", "sync::");
const P_LOCK_UNWRAP: &str = concat!(".lock()", ".unwrap()");
const P_LOCK_EXPECT: &str = concat!(".lock()", ".expect(");
const P_READ_UNWRAP: &str = concat!(".read()", ".unwrap()");
const P_READ_EXPECT: &str = concat!(".read()", ".expect(");
const P_WRITE_UNWRAP: &str = concat!(".write()", ".unwrap()");
const P_WRITE_EXPECT: &str = concat!(".write()", ".expect(");
const P_THREAD_SPAWN: &str = concat!("thread::", "spawn");
const P_THREAD_BUILDER: &str = concat!("thread::", "Builder");
const P_INSTANT_NOW: &str = concat!("Instant::", "now");
const P_SYSTEMTIME_NOW: &str = concat!("SystemTime::", "now");
const P_DEBUG_ASSERT: &str = concat!("debug_", "assert");
const P_FACADE_IMPORT: &str = concat!("hj_analysis", "::sync");

/// Metric-registration method calls whose first argument (the metric
/// name) must be a string literal.  `.counter(` cannot match
/// `.counter_with(` — the paren ends the token.
const P_METRIC_REGISTRATIONS: [&str; 6] = [
    concat!(".counter", "("),
    concat!(".gauge", "("),
    concat!(".histogram", "("),
    concat!(".counter_with", "("),
    concat!(".gauge_with", "("),
    concat!(".histogram_with", "("),
];

/// HTTP route registration whose first argument (the endpoint path) must
/// be a string literal.  `http_route(` cannot match `http_routes(` — the
/// paren ends the token.
const P_ENDPOINT_REGISTRATION: &str = concat!("http_route", "(");

/// True when `word` appears in `line` delimited by non-identifier chars.
fn contains_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= line.len()
            || !line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

// ---------------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------------

/// Scans one file's `content` as workspace-relative `rel_path` and
/// returns its findings.  Pure (no filesystem access): the unit tests and
/// the self-test feed synthetic paths through it.
pub fn scan_file(rel_path: &str, content: &str) -> Vec<Finding> {
    let rel = rel_path.replace('\\', "/");
    let prepared = prepare(content);
    let file_is_test = rel.starts_with("tests/") || rel.contains("/tests/");

    // File-level escapes, from the raw text (escapes live in comments).
    let mut file_allowed: Vec<Rule> = Vec::new();
    for line in &prepared.raw {
        for rule in Rule::ALL {
            if line.contains(&format!("hj-lint: allow-file({})", rule.id())) {
                file_allowed.push(rule);
            }
        }
    }

    let uses_facade = prepared
        .code
        .iter()
        .any(|line| line.contains(P_FACADE_IMPORT));
    let in_sim = DETERMINISTIC_MODULE_PREFIXES
        .iter()
        .any(|prefix| rel.starts_with(prefix));
    let spawn_sanctioned = SANCTIONED_SPAWN_FILES.iter().any(|f| rel == *f);

    let mut findings = Vec::new();
    let mut flag = |rule: Rule, idx: usize, prepared: &Prepared| {
        if file_allowed.contains(&rule) {
            return;
        }
        if (file_is_test || prepared.in_test[idx]) && !rule.applies_to_tests() {
            return;
        }
        let escape = format!("hj-lint: allow({})", rule.id());
        if prepared.raw[idx].contains(&escape)
            || (idx > 0 && prepared.raw[idx - 1].contains(&escape))
        {
            return;
        }
        findings.push(Finding {
            rule,
            path: rel.clone(),
            line: idx + 1,
            excerpt: prepared.raw[idx].trim().to_owned(),
        });
    };

    for (idx, line) in prepared.code.iter().enumerate() {
        // raw-sync: direct paths or a std::sync use-list naming the
        // primitives.
        if line.contains(P_STD_SYNC_MUTEX)
            || line.contains(P_STD_SYNC_RWLOCK)
            || line.contains(P_STD_SYNC_CONDVAR)
            || (line.contains(P_USE_STD_SYNC)
                && (contains_word(line, "Mutex")
                    || contains_word(line, "RwLock")
                    || contains_word(line, "Condvar")
                    || contains_word(line, "PoisonError")))
        {
            flag(Rule::RawSync, idx, &prepared);
        }

        // lock-unwrap: poison-panicking acquisition, any primitive.
        if line.contains(P_LOCK_UNWRAP)
            || line.contains(P_LOCK_EXPECT)
            || line.contains(P_READ_UNWRAP)
            || line.contains(P_READ_EXPECT)
            || line.contains(P_WRITE_UNWRAP)
            || line.contains(P_WRITE_EXPECT)
        {
            flag(Rule::LockUnwrap, idx, &prepared);
        }

        // raw-spawn.
        if !spawn_sanctioned && (line.contains(P_THREAD_SPAWN) || line.contains(P_THREAD_BUILDER)) {
            flag(Rule::RawSpawn, idx, &prepared);
        }

        // wall-clock-in-sim.
        if in_sim && (line.contains(P_INSTANT_NOW) || line.contains(P_SYSTEMTIME_NOW)) {
            flag(Rule::WallClockInSim, idx, &prepared);
        }

        // debug-assert-concurrency: only in files that lock through the
        // facade (the proxy for "this module coordinates threads").
        if uses_facade && line.contains(P_DEBUG_ASSERT) {
            flag(Rule::DebugAssertConcurrency, idx, &prepared);
        }

        // metrics-name-literal: every registration call's first argument
        // must start with a string literal (stripped code keeps the
        // quotes, so a literal reads `("`).
        for pattern in P_METRIC_REGISTRATIONS {
            if let Some(at) = line.find(pattern) {
                if !first_arg_is_literal(&prepared.code, idx, at + pattern.len()) {
                    flag(Rule::MetricsNameLiteral, idx, &prepared);
                    break;
                }
            }
        }

        // endpoint-path-literal: every route registration's first
        // argument must start with a string literal.  The registration
        // helper's own `fn http_route(path: …)` declaration is not a
        // call site, so declarations (token before the match is `fn`)
        // are exempt.
        if let Some(at) = line.find(P_ENDPOINT_REGISTRATION) {
            let before_ok = at == 0
                || !line[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let is_decl = line[..at].trim_end().ends_with("fn");
            if before_ok
                && !is_decl
                && !first_arg_is_literal(&prepared.code, idx, at + P_ENDPOINT_REGISTRATION.len())
            {
                flag(Rule::EndpointPathLiteral, idx, &prepared);
            }
        }

        // must-use-guard: struct declarations with RAII-suffixed names.
        if let Some(name) = struct_decl_name(line) {
            let raii = ["Guard", "Grant", "Slot", "Handle"]
                .iter()
                .any(|suffix| name.ends_with(suffix) && name.len() > suffix.len());
            if raii && !has_must_use_attr(&prepared.code, idx) {
                flag(Rule::MustUseGuard, idx, &prepared);
            }
        }
    }
    findings
}

/// True when the argument list opening at `code[idx][after..]` starts
/// with a string literal, following the call across a line break when
/// the paren ends the line.
fn first_arg_is_literal(code: &[String], idx: usize, after: usize) -> bool {
    let rest = code[idx][after..].trim_start();
    if !rest.is_empty() {
        return rest.starts_with('"');
    }
    for line in code.iter().skip(idx + 1) {
        let trimmed = line.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        return trimmed.starts_with('"');
    }
    false
}

/// The declared struct name if `line` is a struct declaration.
fn struct_decl_name(line: &str) -> Option<&str> {
    let trimmed = line.trim_start();
    let rest = trimmed
        .strip_prefix("pub ")
        .or_else(|| trimmed.strip_prefix("pub(crate) "))
        .or_else(|| trimmed.strip_prefix("pub(super) "))
        .unwrap_or(trimmed);
    let rest = rest.strip_prefix("struct ")?;
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = &rest[..end];
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// True when the attribute block directly above `idx` contains
/// `#[must_use`.
fn has_must_use_attr(code: &[String], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = code[i].trim();
        if line.contains("#[must_use") {
            return true;
        }
        // Keep walking through other attributes and (stripped-empty)
        // doc-comment lines; anything else ends the attribute block.
        if line.starts_with("#[") || line.starts_with("#!") || line.is_empty() || line == ")]" {
            continue;
        }
        break;
    }
    false
}

/// Walks the workspace at `root` and scans every `.rs` file outside
/// `target/`, hidden directories and the linter's own fixtures.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        findings.extend(scan_file(&rel, &content));
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` section is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(rel: &str, content: &str) -> Vec<Rule> {
        let mut rules: Vec<Rule> = scan_file(rel, content)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        rules.dedup();
        rules
    }

    #[test]
    fn raw_sync_fires_on_paths_and_use_lists() {
        let direct = format!("    state: {}<u32>,\n", P_STD_SYNC_MUTEX);
        assert_eq!(rules_fired("crates/x/src/a.rs", &direct), [Rule::RawSync]);
        let uselist = format!("{}{{Arc, Mutex}};\n", P_USE_STD_SYNC);
        assert_eq!(rules_fired("crates/x/src/a.rs", &uselist), [Rule::RawSync]);
        // Arc/atomics/mpsc through std::sync stay legal.
        let fine = format!(
            "{}{{Arc, OnceLock}};\nuse std::sync::atomic::AtomicU64;\n",
            P_USE_STD_SYNC
        );
        assert!(rules_fired("crates/x/src/a.rs", &fine).is_empty());
    }

    #[test]
    fn patterns_in_comments_and_strings_do_not_fire() {
        let source = format!(
            "//! Docs mentioning {} are fine.\nfn f() {{ let s = \"{}\"; let _ = s; }}\n",
            P_STD_SYNC_MUTEX, P_LOCK_UNWRAP
        );
        assert!(rules_fired("crates/x/src/a.rs", &source).is_empty());
    }

    #[test]
    fn lock_unwrap_fires_on_all_acquisition_forms() {
        for pattern in [
            P_LOCK_UNWRAP,
            P_LOCK_EXPECT,
            P_READ_UNWRAP,
            P_WRITE_UNWRAP,
            P_WRITE_EXPECT,
        ] {
            let line = format!("let g = state{}\"poisoned\");\n", pattern);
            assert_eq!(
                rules_fired("crates/x/src/a.rs", &line),
                [Rule::LockUnwrap],
                "pattern {pattern} must fire"
            );
        }
    }

    #[test]
    fn raw_spawn_exempts_sanctioned_files_and_tests() {
        let source = format!("fn go() {{ std::{}(|| {{}}); }}\n", P_THREAD_SPAWN);
        assert_eq!(rules_fired("crates/x/src/a.rs", &source), [Rule::RawSpawn]);
        assert!(rules_fired("crates/core/src/pipeline.rs", &source).is_empty());
        assert!(rules_fired("crates/core/src/serve.rs", &source).is_empty());
        assert!(rules_fired("tests/concurrency.rs", &source).is_empty());
        let in_test_mod = format!(
            "fn prod() {{}}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ std::{}(|| {{}}); }}\n}}\n",
            P_THREAD_SPAWN
        );
        assert!(rules_fired("crates/x/src/a.rs", &in_test_mod).is_empty());
    }

    #[test]
    fn cfg_test_region_ends_where_the_module_closes() {
        let source = format!(
            "#[cfg(test)]\nmod tests {{\n    fn t() {{}}\n}}\nfn prod() {{ std::{}(|| {{}}); }}\n",
            P_THREAD_SPAWN
        );
        let findings = scan_file("crates/x/src/a.rs", &source);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 5, "the post-module spawn must fire");
    }

    #[test]
    fn wall_clock_fires_only_in_sim_modules() {
        let source = format!("fn t() {{ let _ = std::time::{}(); }}\n", P_INSTANT_NOW);
        assert_eq!(
            rules_fired("crates/apu-sim/src/clock.rs", &source),
            [Rule::WallClockInSim]
        );
        assert!(rules_fired("crates/bench/src/micro.rs", &source).is_empty());
    }

    #[test]
    fn debug_assert_fires_only_in_facade_using_files() {
        let locking = format!(
            "use {}::Mutex;\nfn f() {{ {}!(true); }}\n",
            P_FACADE_IMPORT, P_DEBUG_ASSERT
        );
        assert_eq!(
            rules_fired("crates/x/src/a.rs", &locking),
            [Rule::DebugAssertConcurrency]
        );
        let plain = format!("fn f() {{ {}!(true); }}\n", P_DEBUG_ASSERT);
        assert!(rules_fired("crates/x/src/a.rs", &plain).is_empty());
    }

    #[test]
    fn must_use_guard_checks_raii_suffixes() {
        let missing = "pub struct ArenaGuard<'a> {\n    x: &'a u32,\n}\n";
        assert_eq!(
            rules_fired("crates/x/src/a.rs", missing),
            [Rule::MustUseGuard]
        );
        let present = "#[must_use = \"dropping releases\"]\npub struct ArenaGuard<'a> {\n    x: &'a u32,\n}\n";
        assert!(rules_fired("crates/x/src/a.rs", present).is_empty());
        // Non-RAII names and bare suffixes stay exempt.
        assert!(rules_fired("crates/x/src/a.rs", "pub struct Dispatcher {}\n").is_empty());
        assert!(rules_fired("crates/x/src/a.rs", "pub struct Guard {}\n").is_empty());
    }

    #[test]
    fn metrics_name_literal_requires_a_leading_string() {
        let computed = "fn f(r: &R, name: &'static str) { r.counter(name, \"help\"); }\n";
        assert_eq!(
            rules_fired("crates/x/src/a.rs", computed),
            [Rule::MetricsNameLiteral]
        );
        let literal = "fn f(r: &R) { r.counter(\"hj_x_total\", \"help\"); }\n";
        assert!(rules_fired("crates/x/src/a.rs", literal).is_empty());
        // Labelled variants and multi-line calls are covered too.
        let labelled = "fn f(r: &R, n: &'static str) { r.counter_with(n, &[], \"help\"); }\n";
        assert_eq!(
            rules_fired("crates/x/src/a.rs", labelled),
            [Rule::MetricsNameLiteral]
        );
        let broken_literal =
            "fn f(r: &R) {\n    r.histogram(\n        \"hj_x_ns\",\n        \"help\",\n    );\n}\n";
        assert!(rules_fired("crates/x/src/a.rs", broken_literal).is_empty());
        let broken_computed = "fn f(r: &R, n: &'static str) {\n    r.histogram(\n        n,\n        \"help\",\n    );\n}\n";
        assert_eq!(
            rules_fired("crates/x/src/a.rs", broken_computed),
            [Rule::MetricsNameLiteral]
        );
        // Test modules are exempt (throwaway registries).
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t(r: &R, n: &'static str) { r.gauge(n, \"h\"); }\n}\n";
        assert!(rules_fired("crates/x/src/a.rs", in_test).is_empty());
    }

    #[test]
    fn endpoint_path_literal_requires_a_leading_string() {
        let computed = format!(
            "fn f(p: &'static str) {{ let _ = {}p, handler); }}\n",
            P_ENDPOINT_REGISTRATION
        );
        assert_eq!(
            rules_fired("crates/x/src/a.rs", &computed),
            [Rule::EndpointPathLiteral]
        );
        let literal = format!(
            "fn f() {{ let _ = {}\"/metrics\", handler); }}\n",
            P_ENDPOINT_REGISTRATION
        );
        assert!(rules_fired("crates/x/src/a.rs", &literal).is_empty());
        // The helper's own declaration is not a call site.
        let decl = format!(
            "fn {}path: &'static str, handler: H) -> (&'static str, H) {{ (path, handler) }}\n",
            P_ENDPOINT_REGISTRATION
        );
        assert!(rules_fired("crates/x/src/a.rs", &decl).is_empty());
        // `http_routes(` (different token) does not fire.
        let plural = "fn f() { let _ = http_routes(); }\n";
        assert!(rules_fired("crates/x/src/a.rs", plural).is_empty());
        // Multi-line calls are covered, literal and computed alike.
        let broken_literal = format!(
            "fn f() {{\n    let _ = {}\n        \"/health\",\n        handler,\n    );\n}}\n",
            P_ENDPOINT_REGISTRATION
        );
        assert!(rules_fired("crates/x/src/a.rs", &broken_literal).is_empty());
        let broken_computed = format!(
            "fn f(p: &'static str) {{\n    let _ = {}\n        p,\n        handler,\n    );\n}}\n",
            P_ENDPOINT_REGISTRATION
        );
        assert_eq!(
            rules_fired("crates/x/src/a.rs", &broken_computed),
            [Rule::EndpointPathLiteral]
        );
        // Test modules are exempt (throwaway route tables).
        let in_test = format!(
            "#[cfg(test)]\nmod tests {{\n    fn t(p: &'static str) {{ let _ = {}p, handler); }}\n}}\n",
            P_ENDPOINT_REGISTRATION
        );
        assert!(rules_fired("crates/x/src/a.rs", &in_test).is_empty());
    }

    #[test]
    fn escapes_waive_line_and_file() {
        let line_escape = format!(
            "// hj-lint: allow(raw-spawn)\nfn f() {{ std::{}(|| {{}}); }}\n",
            P_THREAD_SPAWN
        );
        assert!(rules_fired("crates/x/src/a.rs", &line_escape).is_empty());
        let file_escape = format!(
            "// hj-lint: allow-file(raw-spawn)\nfn f() {{ std::{}(|| {{}}); }}\nfn g() {{ std::{}(|| {{}}); }}\n",
            P_THREAD_SPAWN, P_THREAD_SPAWN
        );
        assert!(rules_fired("crates/x/src/a.rs", &file_escape).is_empty());
        // The escape is rule-specific: a different rule still fires.
        let wrong_escape = format!(
            "// hj-lint: allow(raw-sync)\nfn f() {{ std::{}(|| {{}}); }}\n",
            P_THREAD_SPAWN
        );
        assert_eq!(
            rules_fired("crates/x/src/a.rs", &wrong_escape),
            [Rule::RawSpawn]
        );
    }

    #[test]
    fn strip_code_handles_raw_strings_and_lifetimes() {
        let source = format!(
            "fn f<'a>(x: &'a str) {{ let s = r#\"{}\"#; let c = '{{'; let _ = (s, c, x); }}\n",
            P_STD_SYNC_MUTEX
        );
        assert!(rules_fired("crates/x/src/a.rs", &source).is_empty());
        // Brace counting survives literals: the cfg(test) module below
        // contains a '{' char literal and a "}" string.
        let tricky = format!(
            "#[cfg(test)]\nmod tests {{\n    fn t() {{ let c = '{{'; let s = \"}}\"; let _ = (c, s); }}\n}}\nfn prod() {{ std::{}(|| {{}}); }}\n",
            P_THREAD_SPAWN
        );
        let findings = scan_file("crates/x/src/a.rs", &tricky);
        assert_eq!(findings.len(), 1, "only the post-module spawn fires");
        assert_eq!(findings[0].line, 5);
    }
}
