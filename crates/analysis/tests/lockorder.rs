//! Detector self-tests: the `lock-order` instrumentation must catch each
//! hazard pattern it claims to catch, and report both acquisition site
//! chains.  Run with `cargo test -p hj-analysis --features lock-order`.
//!
//! The violation registry is process-global and cargo runs tests
//! concurrently, so every test (a) serialises on one static lock and
//! (b) drains residue on entry — each test then observes exactly its own
//! violations.

#![cfg(feature = "lock-order")]

use hj_analysis::lockorder::{self, ViolationKind};
use hj_analysis::sync::{Condvar, Mutex, RwLock};

/// Serialises the detector tests and clears violations recorded by
/// earlier tests (the test lock itself is a raw std mutex on purpose: it
/// must not appear in the acquisition graph under scrutiny).
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = lockorder::take_violations();
    guard
}

#[test]
fn inverted_two_lock_acquisition_is_reported_with_both_chains() {
    let _serial = serial();
    let a = Mutex::new("cycle_test.a", 0u32);
    let b = Mutex::new("cycle_test.b", 0u32);

    // Chain 1: A then B — establishes the edge A → B.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // Chain 2: B then A — closes the cycle.  No two threads race here:
    // the detector flags the *potential* deadlock from acquisition order
    // alone, which is exactly what makes it usable in deterministic
    // tests.
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }

    let violations = lockorder::take_violations();
    let cycle = violations
        .iter()
        .find(|v| v.kind == ViolationKind::OrderCycle && v.classes.contains(&"cycle_test.a"))
        .expect("the inverted acquisition must be reported as an order cycle");
    assert!(cycle.classes.contains(&"cycle_test.b"));
    // Both acquisition site chains: the message names each class with the
    // site of the held lock and the site of the acquisition that created
    // the edge — this file, four distinct lines.
    assert!(
        cycle.message.contains("cycle_test.a") && cycle.message.contains("cycle_test.b"),
        "report must name both classes: {}",
        cycle.message
    );
    assert_eq!(
        cycle.message.matches("tests/lockorder.rs").count(),
        4,
        "report must carry one site per held/acquired hop of both chains: {}",
        cycle.message
    );
}

#[test]
fn consistent_order_is_not_reported() {
    let _serial = serial();
    let outer = Mutex::new("consistent_test.outer", ());
    let inner = Mutex::new("consistent_test.inner", ());
    for _ in 0..3 {
        let _go = outer.lock();
        let _gi = inner.lock();
    }
    let violations = lockorder::violations();
    assert!(
        !violations
            .iter()
            .any(|v| v.classes.contains(&"consistent_test.outer")),
        "a consistent outer → inner order must stay clean"
    );
}

#[test]
fn condvar_wait_while_holding_second_lock_is_reported() {
    let _serial = serial();
    let waited = Mutex::new("wait_test.waited", false);
    let held = Mutex::new("wait_test.held", ());
    let cv = Condvar::new();

    // A timed wait that simply expires: deterministic (no second thread,
    // no race about whether the wait was ever entered), and entering the
    // wait is the moment the detector checks what else is held.
    let _second = held.lock(); // the bug: still held across the wait
    let guard = waited.lock();
    let (guard, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_millis(1));
    assert!(timed_out);
    drop(guard);

    let violations = lockorder::take_violations();
    let hit = violations
        .iter()
        .find(|v| {
            v.kind == ViolationKind::WaitWhileHoldingLock && v.classes.contains(&"wait_test.waited")
        })
        .expect("waiting while holding a second lock must be reported");
    assert!(
        hit.classes.contains(&"wait_test.held"),
        "the report must name the lock held across the wait: {:?}",
        hit.classes
    );
    assert!(
        hit.message.contains("wait_test.held") && hit.message.contains("tests/lockorder.rs"),
        "the report must carry the held lock's acquisition site: {}",
        hit.message
    );
}

#[test]
fn clean_condvar_wait_is_not_reported() {
    let _serial = serial();
    let state = Mutex::new("clean_wait_test.state", false);
    let cv = Condvar::new();
    let (guard, timed_out) = cv.wait_timeout(state.lock(), std::time::Duration::from_millis(1));
    assert!(timed_out);
    drop(guard);
    assert!(
        !lockorder::violations()
            .iter()
            .any(|v| v.classes.contains(&"clean_wait_test.state")),
        "a wait holding only its own mutex must stay clean"
    );
}

#[test]
fn lock_held_at_thread_exit_is_reported() {
    let _serial = serial();
    let leaked = Box::leak(Box::new(Mutex::new("exit_test.leaked", ())));
    std::thread::Builder::new()
        .name("leaky".into())
        .spawn(move || {
            let guard = leaked.lock();
            // A guard that is forgotten is never released: the lock stays
            // taken forever.  The thread-local held-stack teardown flags
            // it when this thread exits.
            std::mem::forget(guard);
        })
        .expect("spawn leaky thread")
        .join()
        .expect("leaky thread exits normally");

    let violations = lockorder::take_violations();
    assert!(
        violations.iter().any(|v| {
            v.kind == ViolationKind::HeldAtThreadExit && v.classes.contains(&"exit_test.leaked")
        }),
        "a lock still held at thread exit must be reported: {violations:?}"
    );
}

#[test]
fn rwlock_acquisitions_participate_in_the_order_graph() {
    let _serial = serial();
    let meta = RwLock::new("rw_cycle_test.meta", 0u32);
    let data = Mutex::new("rw_cycle_test.data", 0u32);
    {
        let _r = meta.read();
        let _d = data.lock();
    }
    {
        let _d = data.lock();
        let _w = meta.write();
    }
    let violations = lockorder::take_violations();
    assert!(
        violations.iter().any(|v| {
            v.kind == ViolationKind::OrderCycle && v.classes.contains(&"rw_cycle_test.meta")
        }),
        "read-then-lock vs lock-then-write across classes is a cycle: {violations:?}"
    );
}

#[test]
fn same_class_nesting_is_a_self_cycle() {
    let _serial = serial();
    // Two *different* locks of one class acquired nested: the class has
    // no defined internal order, so two threads nesting in opposite
    // directions would deadlock.  Classes that legitimately nest must be
    // split (e.g. `pool.deque` is safe because deques are only taken one
    // at a time).
    let first = Mutex::new("self_cycle_test.slot", 1u32);
    let second = Mutex::new("self_cycle_test.slot", 2u32);
    {
        let _a = first.lock();
        let _b = second.lock();
    }
    let violations = lockorder::take_violations();
    assert!(
        violations.iter().any(|v| {
            v.kind == ViolationKind::OrderCycle && v.classes.contains(&"self_cycle_test.slot")
        }),
        "nested same-class acquisition must be reported: {violations:?}"
    );
}

#[test]
fn violations_survive_until_drained_and_assert_clean_panics() {
    let _serial = serial();
    let x = Mutex::new("assert_test.x", ());
    let y = Mutex::new("assert_test.y", ());
    {
        let _gx = x.lock();
        let _gy = y.lock();
    }
    {
        let _gy = y.lock();
        let _gx = x.lock();
    }
    assert!(lockorder::enabled());
    let result = std::panic::catch_unwind(lockorder::assert_clean);
    assert!(
        result.is_err(),
        "assert_clean must panic while violations are recorded"
    );
    let drained = lockorder::take_violations();
    assert!(!drained.is_empty());
}
