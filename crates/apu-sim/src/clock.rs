//! Simulated time and per-phase time breakdowns.
//!
//! All elapsed times produced by the simulator are [`SimTime`] values
//! (internally nanoseconds as `f64`).  Experiments aggregate them into a
//! [`PhaseBreakdown`] whose rows mirror the stacked-bar charts of the paper
//! (Figures 3, 15 and 19): data transfer, merge, partition, build, probe and
//! data copy.

use crate::device::DeviceKind;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A simulated duration.
///
/// Stored as nanoseconds in `f64`; the paper reports times between a few
/// nanoseconds (per-tuple unit costs, Figure 4) and tens of seconds
/// (out-of-core joins, Figure 19), which comfortably fits the 52-bit mantissa.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        debug_assert!(ns.is_finite(), "SimTime must be finite, got {ns}");
        SimTime(ns.max(0.0))
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1e3)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1e6)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Self::from_ns(s * 1e9)
    }

    /// The duration in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0
    }

    /// The duration in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 / 1e3
    }

    /// The duration in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 / 1e6
    }

    /// The duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: never goes below zero.
    ///
    /// Used by the pipeline-delay equations (Eqs. 4 and 5 of the paper) where
    /// a negative delay means "no stall".
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// True when the duration is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1e9 {
            write!(f, "{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            write!(f, "{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            write!(f, "{:.3} us", ns / 1e3)
        } else {
            write!(f, "{:.3} ns", ns)
        }
    }
}

/// One simulated event clock per device, for greedy dispatch of independent
/// work units (chunks, morsels, partition pairs) onto whichever device
/// becomes idle first.
///
/// This is the event-clock interpretation of a task schedule: the same
/// stream of tasks that a native backend executes on real threads is
/// *replayed* here by advancing per-device clocks with model-predicted
/// times, and the schedule's elapsed time is the later of the two clocks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceClocks {
    cpu: SimTime,
    gpu: SimTime,
}

impl DeviceClocks {
    /// Both clocks at zero.
    pub fn new() -> Self {
        DeviceClocks::default()
    }

    /// The device that becomes idle first (ties go to the CPU, matching the
    /// paper's greedy chunk scheduler).
    pub fn idlest(&self) -> DeviceKind {
        if self.cpu <= self.gpu {
            DeviceKind::Cpu
        } else {
            DeviceKind::Gpu
        }
    }

    /// Advances one device's clock by `time`.
    pub fn advance(&mut self, kind: DeviceKind, time: SimTime) {
        match kind {
            DeviceKind::Cpu => self.cpu += time,
            DeviceKind::Gpu => self.gpu += time,
        }
    }

    /// One device's accumulated busy time.
    pub fn busy(&self, kind: DeviceKind) -> SimTime {
        match kind {
            DeviceKind::Cpu => self.cpu,
            DeviceKind::Gpu => self.gpu,
        }
    }

    /// Elapsed time of the schedule so far: the later of the two clocks.
    pub fn elapsed(&self) -> SimTime {
        self.cpu.max(self.gpu)
    }
}

/// The phases into which a co-processed hash join decomposes its elapsed
/// time, matching the stacked bars of Figures 3, 15 and 19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// PCI-e transfer time (discrete topology only).
    DataTransfer,
    /// Merging per-device partial results (separate hash tables on the
    /// discrete topology, or when explicitly configured).
    Merge,
    /// Radix partitioning passes of the partitioned hash join.
    Partition,
    /// The build phase (steps `b1..b4`).
    Build,
    /// The probe phase (steps `p1..p4`).
    Probe,
    /// Copying data in and out of the zero-copy buffer for out-of-core joins
    /// (Figure 19).
    DataCopy,
    /// Disk run-file I/O of the out-of-memory spill path (distinct from
    /// [`Phase::DataCopy`], which models PCIe/zero-copy transfer).
    SpillIo,
}

impl Phase {
    /// All phases in presentation order.
    pub const ALL: [Phase; 7] = [
        Phase::DataTransfer,
        Phase::Merge,
        Phase::Partition,
        Phase::Build,
        Phase::Probe,
        Phase::DataCopy,
        Phase::SpillIo,
    ];

    /// A short lower-case label, used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::DataTransfer => "data-transfer",
            Phase::Merge => "merge",
            Phase::Partition => "partition",
            Phase::Build => "build",
            Phase::Probe => "probe",
            Phase::DataCopy => "data-copy",
            Phase::SpillIo => "spill-io",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Elapsed time split per [`Phase`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    times: [f64; 7],
}

impl PhaseBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(phase: Phase) -> usize {
        match phase {
            Phase::DataTransfer => 0,
            Phase::Merge => 1,
            Phase::Partition => 2,
            Phase::Build => 3,
            Phase::Probe => 4,
            Phase::DataCopy => 5,
            Phase::SpillIo => 6,
        }
    }

    /// Adds `time` to `phase`.
    pub fn add(&mut self, phase: Phase, time: SimTime) {
        self.times[Self::idx(phase)] += time.as_ns();
    }

    /// The accumulated time for `phase`.
    pub fn get(&self, phase: Phase) -> SimTime {
        SimTime::from_ns(self.times[Self::idx(phase)])
    }

    /// The total elapsed time across all phases.
    pub fn total(&self) -> SimTime {
        SimTime::from_ns(self.times.iter().sum())
    }

    /// Merges another breakdown into this one (phase-wise sum).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for (a, b) in self.times.iter_mut().zip(other.times.iter()) {
            *a += b;
        }
    }

    /// Iterates over `(phase, time)` pairs with non-zero time, in
    /// presentation order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, SimTime)> + '_ {
        Phase::ALL
            .iter()
            .copied()
            .map(move |p| (p, self.get(p)))
            .filter(|(_, t)| !t.is_zero())
    }

    /// Renders the breakdown as a single CSV row fragment
    /// (`transfer,merge,partition,build,probe,copy,spill-io` in seconds).
    pub fn csv_row(&self) -> String {
        Phase::ALL
            .iter()
            .map(|p| format!("{:.6}", self.get(*p).as_secs()))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The CSV header matching [`Self::csv_row`].
    pub fn csv_header() -> String {
        Phase::ALL
            .iter()
            .map(|p| p.label().to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (phase, time) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{phase}: {time}")?;
            first = false;
        }
        write!(f, " (total {})", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions_round_trip() {
        let t = SimTime::from_secs(1.5);
        assert!((t.as_ms() - 1500.0).abs() < 1e-9);
        assert!((t.as_us() - 1_500_000.0).abs() < 1e-6);
        assert!((t.as_ns() - 1.5e9).abs() < 1e-3);
        assert!((SimTime::from_ms(2.0).as_secs() - 0.002).abs() < 1e-12);
        assert!((SimTime::from_us(3.0).as_ns() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_ns(100.0);
        let b = SimTime::from_ns(40.0);
        assert_eq!((a + b).as_ns(), 140.0);
        assert_eq!((a - b).as_ns(), 60.0);
        assert_eq!((a * 2.0).as_ns(), 200.0);
        assert_eq!((a / 4.0).as_ns(), 25.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.saturating_sub(b).as_ns(), 60.0);
    }

    #[test]
    fn simtime_negative_input_clamps_to_zero() {
        assert_eq!(SimTime::from_ns(-5.0), SimTime::ZERO);
    }

    #[test]
    fn simtime_sum_of_iterator() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_ns(i as f64)).sum();
        assert_eq!(total.as_ns(), 10.0);
    }

    #[test]
    fn simtime_display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(12.0)), "12.000 ns");
        assert_eq!(format!("{}", SimTime::from_us(12.0)), "12.000 us");
        assert_eq!(format!("{}", SimTime::from_ms(12.0)), "12.000 ms");
        assert_eq!(format!("{}", SimTime::from_secs(12.0)), "12.000 s");
    }

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Build, SimTime::from_ms(10.0));
        b.add(Phase::Build, SimTime::from_ms(5.0));
        b.add(Phase::Probe, SimTime::from_ms(20.0));
        assert_eq!(b.get(Phase::Build).as_ms(), 15.0);
        assert_eq!(b.get(Phase::Probe).as_ms(), 20.0);
        assert_eq!(b.get(Phase::Partition), SimTime::ZERO);
        assert!((b.total().as_ms() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_merge_sums_phasewise() {
        let mut a = PhaseBreakdown::new();
        a.add(Phase::Partition, SimTime::from_ms(1.0));
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Partition, SimTime::from_ms(2.0));
        b.add(Phase::Merge, SimTime::from_ms(3.0));
        a.merge(&b);
        assert_eq!(a.get(Phase::Partition).as_ms(), 3.0);
        assert_eq!(a.get(Phase::Merge).as_ms(), 3.0);
    }

    #[test]
    fn breakdown_iter_skips_zero_phases() {
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Probe, SimTime::from_ns(1.0));
        let phases: Vec<_> = b.iter().map(|(p, _)| p).collect();
        assert_eq!(phases, vec![Phase::Probe]);
    }

    #[test]
    fn breakdown_csv_shapes_match() {
        let header = PhaseBreakdown::csv_header();
        let row = PhaseBreakdown::new().csv_row();
        assert_eq!(header.split(',').count(), row.split(',').count());
    }
}
