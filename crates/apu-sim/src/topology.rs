//! System topologies: the coupled APU versus the emulated discrete system.
//!
//! A [`SystemSpec`] bundles a CPU device, a GPU device and a [`Topology`]:
//!
//! * [`Topology::Coupled`] — both devices share main memory and the
//!   last-level cache; data lives in the *zero-copy buffer* (512 MB on the
//!   A8-3870K) and no transfers are needed.
//! * [`Topology::Discrete`] — the GPU has its own memory and cache, and every
//!   movement of data between devices pays the PCI-e delay of
//!   [`PcieSpec`].  This mirrors the paper's
//!   emulation-based methodology (Section 5.1).

use crate::device::{Device, DeviceKind, DeviceSpec};
use crate::pcie::PcieSpec;
use crate::SimTime;

/// How the CPU and GPU are connected.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// Single chip: shared memory controller, shared last-level cache,
    /// zero-copy buffer accessible by both devices.
    Coupled {
        /// Shared last-level cache capacity in bytes (4 MB on the A8-3870K).
        shared_cache_bytes: usize,
        /// Zero-copy buffer capacity in bytes (512 MB on the A8-3870K).
        zero_copy_bytes: usize,
    },
    /// Discrete accelerator behind a PCI-e bus, with separate caches.
    Discrete {
        /// The PCI-e link model.
        pcie: PcieSpec,
        /// CPU last-level cache capacity in bytes.
        cpu_cache_bytes: usize,
        /// GPU last-level cache capacity in bytes.
        gpu_cache_bytes: usize,
    },
}

/// A complete CPU + GPU system description.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// The CPU device.
    pub cpu: DeviceSpec,
    /// The GPU device.
    pub gpu: DeviceSpec,
    /// How the devices are connected.
    pub topology: Topology,
}

impl SystemSpec {
    /// The coupled AMD A8-3870K APU of the paper (Table 1): 4 CPU cores,
    /// 400 GPU cores, 4 MB shared cache, 512 MB zero-copy buffer.
    pub fn coupled_a8_3870k() -> Self {
        SystemSpec {
            cpu: DeviceSpec::a8_3870k_cpu(),
            gpu: DeviceSpec::a8_3870k_gpu(),
            topology: Topology::Coupled {
                shared_cache_bytes: 4 * 1024 * 1024,
                zero_copy_bytes: 512 * 1024 * 1024,
            },
        }
    }

    /// The discrete architecture the paper emulates: the *same* CPU and GPU
    /// devices, but connected by a PCI-e bus with 0.015 ms latency and
    /// 3 GB/s bandwidth (Section 5.1).  As in the paper's emulation, the
    /// devices keep their cache sizes.
    pub fn discrete_emulated() -> Self {
        SystemSpec {
            cpu: DeviceSpec::a8_3870k_cpu(),
            gpu: DeviceSpec::a8_3870k_gpu(),
            topology: Topology::Discrete {
                pcie: PcieSpec::paper_default(),
                cpu_cache_bytes: 4 * 1024 * 1024,
                gpu_cache_bytes: 4 * 1024 * 1024,
            },
        }
    }

    /// A discrete system with the high-end Radeon HD 7970 from Table 1, for
    /// sensitivity studies beyond the paper's main experiments.
    pub fn discrete_hd7970() -> Self {
        SystemSpec {
            cpu: DeviceSpec::a8_3870k_cpu(),
            gpu: DeviceSpec::radeon_hd7970(),
            topology: Topology::Discrete {
                pcie: PcieSpec::paper_default(),
                cpu_cache_bytes: 4 * 1024 * 1024,
                gpu_cache_bytes: 768 * 1024,
            },
        }
    }

    /// True when the topology is discrete (PCI-e attached).
    pub fn is_discrete(&self) -> bool {
        matches!(self.topology, Topology::Discrete { .. })
    }

    /// The [`Device`] of the given kind.
    pub fn device(&self, kind: DeviceKind) -> Device {
        match kind {
            DeviceKind::Cpu => Device::new(self.cpu.clone()),
            DeviceKind::Gpu => Device::new(self.gpu.clone()),
        }
    }

    /// The last-level cache capacity visible to `kind`, in bytes.
    ///
    /// On the coupled topology both devices see the shared cache; on the
    /// discrete topology each sees its own.
    pub fn cache_bytes_for(&self, kind: DeviceKind) -> usize {
        match &self.topology {
            Topology::Coupled {
                shared_cache_bytes, ..
            } => *shared_cache_bytes,
            Topology::Discrete {
                cpu_cache_bytes,
                gpu_cache_bytes,
                ..
            } => match kind {
                DeviceKind::Cpu => *cpu_cache_bytes,
                DeviceKind::Gpu => *gpu_cache_bytes,
            },
        }
    }

    /// Whether the two devices share a cache (enables cache reuse between
    /// build and probe portions processed on different devices).
    pub fn shares_cache(&self) -> bool {
        matches!(self.topology, Topology::Coupled { .. })
    }

    /// The zero-copy buffer capacity, if the topology has one.
    pub fn zero_copy_bytes(&self) -> Option<usize> {
        match &self.topology {
            Topology::Coupled {
                zero_copy_bytes, ..
            } => Some(*zero_copy_bytes),
            Topology::Discrete { .. } => None,
        }
    }

    /// The time to move `bytes` bytes between the devices.
    ///
    /// Zero on the coupled topology (the whole point of the APU); one PCI-e
    /// transfer on the discrete topology.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        match &self.topology {
            Topology::Coupled { .. } => SimTime::ZERO,
            Topology::Discrete { pcie, .. } => pcie.transfer_time(bytes),
        }
    }

    /// The PCI-e model if the topology is discrete.
    pub fn pcie(&self) -> Option<&PcieSpec> {
        match &self.topology {
            Topology::Discrete { pcie, .. } => Some(pcie),
            Topology::Coupled { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_preset_matches_table1() {
        let sys = SystemSpec::coupled_a8_3870k();
        assert!(!sys.is_discrete());
        assert!(sys.shares_cache());
        assert_eq!(sys.zero_copy_bytes(), Some(512 * 1024 * 1024));
        assert_eq!(sys.cache_bytes_for(DeviceKind::Cpu), 4 * 1024 * 1024);
        assert_eq!(
            sys.cache_bytes_for(DeviceKind::Cpu),
            sys.cache_bytes_for(DeviceKind::Gpu)
        );
        assert_eq!(sys.transfer_time(1 << 20), SimTime::ZERO);
        assert!(sys.pcie().is_none());
    }

    #[test]
    fn discrete_preset_pays_for_transfers() {
        let sys = SystemSpec::discrete_emulated();
        assert!(sys.is_discrete());
        assert!(!sys.shares_cache());
        assert_eq!(sys.zero_copy_bytes(), None);
        let t = sys.transfer_time(3_000_000_000);
        // 3 GB over 3 GB/s = 1 s plus latency.
        assert!(t.as_secs() > 1.0 && t.as_secs() < 1.01);
        assert!(sys.pcie().is_some());
    }

    #[test]
    fn devices_are_constructed_with_matching_kind() {
        let sys = SystemSpec::coupled_a8_3870k();
        assert_eq!(sys.device(DeviceKind::Cpu).kind(), DeviceKind::Cpu);
        assert_eq!(sys.device(DeviceKind::Gpu).kind(), DeviceKind::Gpu);
        assert_eq!(sys.device(DeviceKind::Gpu).wavefront_size(), 64);
    }

    #[test]
    fn hd7970_is_much_faster_than_apu_gpu() {
        let apu = DeviceSpec::a8_3870k_gpu();
        let hd = DeviceSpec::radeon_hd7970();
        assert!(hd.instr_throughput_per_ns() > 4.0 * apu.instr_throughput_per_ns());
    }
}
