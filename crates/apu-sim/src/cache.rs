//! Last-level cache models.
//!
//! The coupled architecture shares a 4 MB L2 cache between the CPU and the
//! GPU (Table 1), which is the source of the cache-reuse benefit the paper
//! attributes to shared hash tables and fine-grained steps (Figure 10 and
//! Table 3).  Two models are provided:
//!
//! * [`AnalyticCache`] — a closed-form steady-state hit-rate estimate used by
//!   the fast timing path (random accesses over a working set `W` with cache
//!   capacity `C` hit with probability ≈ `min(1, C/W)`).
//! * [`CacheSim`] — an exact set-associative LRU simulator used when an
//!   experiment needs miss *counts* (Table 3) rather than just elapsed time.

/// Hit/miss counters of a cache model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Hit ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Closed-form steady-state model of a shared last-level cache.
///
/// For uniformly random accesses into a working set of `w` bytes, the
/// probability that the touched line is resident in a cache of `c` bytes is
/// approximately `min(1, c/w)`.  This is the same simplification the
/// calibration-based cost models the paper builds on (Manegold et al.) use
/// for the "random access within a region" pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCache {
    capacity_bytes: f64,
}

impl AnalyticCache {
    /// Creates a model of a cache with the given capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        AnalyticCache {
            capacity_bytes: capacity_bytes as f64,
        }
    }

    /// The cache capacity in bytes.
    pub fn capacity_bytes(&self) -> f64 {
        self.capacity_bytes
    }

    /// Estimated hit rate for random accesses over `working_set_bytes`.
    pub fn hit_rate(&self, working_set_bytes: f64) -> f64 {
        if working_set_bytes <= 0.0 {
            1.0
        } else {
            (self.capacity_bytes / working_set_bytes).min(1.0)
        }
    }

    /// Estimated hit rate when two working sets compete for the cache
    /// (e.g. the hash table plus the probe stream); the cache is shared
    /// proportionally to the access volume of each set.
    pub fn hit_rate_shared(&self, working_set_bytes: f64, competing_bytes: f64) -> f64 {
        self.hit_rate(working_set_bytes + competing_bytes.max(0.0))
    }
}

/// An exact set-associative, write-allocate, LRU cache simulator.
///
/// Used to produce the L2 miss counts of Table 3 (fine vs. coarse step
/// definition) and the cache-miss comparison of shared vs. separate hash
/// tables (Section 5.4).
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    num_sets: u64,
    ways: usize,
    /// `sets[set][way]` holds a line tag; `u64::MAX` marks an empty way.
    /// Ways are kept in LRU order: index 0 is the most recently used.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity and
    /// `line_bytes` cache lines.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly or any parameter is 0.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && line_bytes > 0);
        assert!(
            capacity_bytes.is_multiple_of(ways * line_bytes),
            "capacity must be a multiple of ways * line size"
        );
        let num_sets = (capacity_bytes / (ways * line_bytes)) as u64;
        CacheSim {
            line_bytes: line_bytes as u64,
            num_sets,
            ways,
            sets: vec![Vec::with_capacity(ways); num_sets as usize],
            stats: CacheStats::default(),
        }
    }

    /// The 4 MB shared L2 of the A8-3870K (16-way, 64-byte lines).
    pub fn a8_3870k_l2() -> Self {
        CacheSim::new(4 * 1024 * 1024, 16, 64)
    }

    /// Accesses one byte address; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set_idx = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Accesses `bytes` consecutive bytes starting at `addr`, touching each
    /// covered cache line once.
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let first = addr / self.line_bytes;
        let last = (addr + bytes - 1) / self.line_bytes;
        for line in first..=last {
            self.access(line * self.line_bytes);
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache and resets counters.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }

    /// Cache capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        (self.num_sets as usize) * self.ways * (self.line_bytes as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_hit_rate_bounds() {
        let c = AnalyticCache::new(4 * 1024 * 1024);
        assert_eq!(c.hit_rate(0.0), 1.0);
        assert_eq!(c.hit_rate(1024.0), 1.0);
        assert!((c.hit_rate(8.0 * 1024.0 * 1024.0) - 0.5).abs() < 1e-9);
        assert!(c.hit_rate(1e12) < 1e-4);
    }

    #[test]
    fn analytic_shared_sets_reduce_hit_rate() {
        let c = AnalyticCache::new(4 * 1024 * 1024);
        let alone = c.hit_rate(6.0 * 1024.0 * 1024.0);
        let shared = c.hit_rate_shared(6.0 * 1024.0 * 1024.0, 6.0 * 1024.0 * 1024.0);
        assert!(shared < alone);
    }

    #[test]
    fn sim_small_working_set_hits_after_warmup() {
        let mut sim = CacheSim::new(64 * 1024, 8, 64);
        // Working set of 32 KB fits entirely.
        for round in 0..4 {
            for addr in (0..32 * 1024u64).step_by(64) {
                let hit = sim.access(addr);
                if round > 0 {
                    assert!(hit, "resident line must hit on later rounds");
                }
            }
        }
        assert!(sim.stats().hit_ratio() > 0.7);
    }

    #[test]
    fn sim_streaming_over_large_set_mostly_misses() {
        let mut sim = CacheSim::new(64 * 1024, 8, 64);
        for addr in (0..16 * 1024 * 1024u64).step_by(64) {
            sim.access(addr);
        }
        assert!(sim.stats().miss_ratio() > 0.99);
    }

    #[test]
    fn sim_lru_evicts_least_recently_used() {
        // 2 sets * 2 ways * 16B lines = 64B cache.
        let mut sim = CacheSim::new(64, 2, 16);
        // All these addresses map to set 0 (line % 2 == 0).
        let a = 0u64; // line 0
        let b = 64u64; // line 4
        let c = 128u64; // line 8
        assert!(!sim.access(a));
        assert!(!sim.access(b));
        assert!(sim.access(a)); // a is MRU now
        assert!(!sim.access(c)); // evicts b (LRU)
        assert!(sim.access(a));
        assert!(!sim.access(b)); // b was evicted
    }

    #[test]
    fn sim_access_range_touches_every_line() {
        let mut sim = CacheSim::new(4096, 4, 64);
        sim.access_range(0, 256);
        assert_eq!(sim.stats().accesses(), 4);
        sim.access_range(10, 1); // within an already-resident line
        assert_eq!(sim.stats().hits, 1);
    }

    #[test]
    fn sim_geometry() {
        let sim = CacheSim::a8_3870k_l2();
        assert_eq!(sim.capacity_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    #[should_panic]
    fn sim_rejects_bad_geometry() {
        let _ = CacheSim::new(1000, 3, 64);
    }

    #[test]
    fn stats_ratios() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
