//! Kernel cost profiles: what a data-parallel step *did*, so a
//! [`Device`](crate::device::Device) can decide how long it *took*.
//!
//! Step kernels in the join crate perform the real work (hashing, bucket
//! walks, inserts) on the host and record their per-item effort into a
//! [`CostRecorder`].  The recorder also tracks per-item work units grouped
//! into wavefronts so the executor can charge the SIMD divergence penalty the
//! paper discusses in Section 3.3 ("Workload divergence").

use crate::SimTime;

/// Aggregated cost profile of one kernel launch (one step of a step series
/// executed over some portion of the input).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepCost {
    /// Number of input items processed.
    pub items: u64,
    /// Total dynamic instructions across all items.
    pub instructions: f64,
    /// Random (non-streaming) global-memory reads.
    pub random_reads: f64,
    /// Random global-memory writes.
    pub random_writes: f64,
    /// Bytes read with a streaming/sequential pattern.
    pub seq_read_bytes: f64,
    /// Bytes written with a streaming/sequential pattern.
    pub seq_write_bytes: f64,
    /// Serialising global atomics (all requesters target one address, e.g.
    /// the basic allocator's global pointer).
    pub serial_atomics: f64,
    /// Distributed global atomics (spread over many addresses, e.g.
    /// per-bucket latches).
    pub parallel_atomics: f64,
    /// Atomics on work-group local memory.
    pub local_atomics: f64,
    /// Sum of the per-item work units recorded via [`CostRecorder::work`].
    pub total_work: f64,
    /// Sum over wavefronts of the maximum work unit in that wavefront,
    /// multiplied by the wavefront width — i.e. the lock-step cost.
    pub lockstep_work: f64,
}

impl StepCost {
    /// An empty cost profile.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The divergence factor: lock-step cost over useful work (≥ 1).
    ///
    /// Returns 1.0 when no per-item work was recorded (a perfectly regular
    /// kernel).
    pub fn divergence_factor(&self) -> f64 {
        if self.total_work <= 0.0 || self.lockstep_work <= 0.0 {
            1.0
        } else {
            (self.lockstep_work / self.total_work).max(1.0)
        }
    }

    /// Component-wise sum of two cost profiles.
    pub fn merge(&mut self, other: &StepCost) {
        self.items += other.items;
        self.instructions += other.instructions;
        self.random_reads += other.random_reads;
        self.random_writes += other.random_writes;
        self.seq_read_bytes += other.seq_read_bytes;
        self.seq_write_bytes += other.seq_write_bytes;
        self.serial_atomics += other.serial_atomics;
        self.parallel_atomics += other.parallel_atomics;
        self.local_atomics += other.local_atomics;
        self.total_work += other.total_work;
        self.lockstep_work += other.lockstep_work;
    }

    /// Scales every component by `factor` (used by the cost model to
    /// extrapolate a profiled sample to a full relation).
    pub fn scaled(&self, factor: f64) -> StepCost {
        StepCost {
            items: (self.items as f64 * factor).round() as u64,
            instructions: self.instructions * factor,
            random_reads: self.random_reads * factor,
            random_writes: self.random_writes * factor,
            seq_read_bytes: self.seq_read_bytes * factor,
            seq_write_bytes: self.seq_write_bytes * factor,
            serial_atomics: self.serial_atomics * factor,
            parallel_atomics: self.parallel_atomics * factor,
            local_atomics: self.local_atomics * factor,
            total_work: self.total_work * factor,
            lockstep_work: self.lockstep_work * factor,
        }
    }

    /// Average instructions per item (0 when empty).
    pub fn instructions_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.instructions / self.items as f64
        }
    }
}

/// Streaming builder for a [`StepCost`].
///
/// A kernel creates one recorder per launch, calls [`CostRecorder::item`]
/// once per work item, and the fine-grained recording methods as it performs
/// memory accesses and atomics.  Per-item work units passed to
/// [`CostRecorder::work`] are grouped into wavefronts of the device's width
/// to measure lock-step (divergence) overhead.
#[derive(Debug, Clone)]
pub struct CostRecorder {
    wavefront: usize,
    cost: StepCost,
    wave_fill: usize,
    wave_max: u32,
}

impl CostRecorder {
    /// Creates a recorder for a device whose wavefront width is `wavefront`
    /// (use 1 for the CPU).
    pub fn new(wavefront: usize) -> Self {
        CostRecorder {
            wavefront: wavefront.max(1),
            cost: StepCost::zero(),
            wave_fill: 0,
            wave_max: 0,
        }
    }

    /// Records one work item that executes `instructions` instructions.
    #[inline]
    pub fn item(&mut self, instructions: f64) {
        self.cost.items += 1;
        self.cost.instructions += instructions;
    }

    /// Adds extra instructions to the current kernel (e.g. per-node work in
    /// a list traversal).
    #[inline]
    pub fn instructions(&mut self, n: f64) {
        self.cost.instructions += n;
    }

    /// Records `n` random global reads.
    #[inline]
    pub fn random_read(&mut self, n: f64) {
        self.cost.random_reads += n;
    }

    /// Records `n` random global writes.
    #[inline]
    pub fn random_write(&mut self, n: f64) {
        self.cost.random_writes += n;
    }

    /// Records `bytes` of streaming reads.
    #[inline]
    pub fn seq_read(&mut self, bytes: f64) {
        self.cost.seq_read_bytes += bytes;
    }

    /// Records `bytes` of streaming writes.
    #[inline]
    pub fn seq_write(&mut self, bytes: f64) {
        self.cost.seq_write_bytes += bytes;
    }

    /// Records `n` serialising global atomics.
    #[inline]
    pub fn serial_atomic(&mut self, n: f64) {
        self.cost.serial_atomics += n;
    }

    /// Records `n` distributed global atomics.
    #[inline]
    pub fn parallel_atomic(&mut self, n: f64) {
        self.cost.parallel_atomics += n;
    }

    /// Records `n` local-memory atomics.
    #[inline]
    pub fn local_atomic(&mut self, n: f64) {
        self.cost.local_atomics += n;
    }

    /// Records the work units of the current item for divergence accounting.
    ///
    /// Items are grouped into wavefronts in arrival order; a wavefront costs
    /// `wavefront_width × max(work in the wavefront)` on a lock-step SIMD
    /// device.
    #[inline]
    pub fn work(&mut self, units: u32) {
        self.cost.total_work += units as f64;
        self.wave_max = self.wave_max.max(units);
        self.wave_fill += 1;
        if self.wave_fill == self.wavefront {
            self.flush_wave();
        }
    }

    fn flush_wave(&mut self) {
        if self.wave_fill > 0 {
            self.cost.lockstep_work += self.wave_max as f64 * self.wavefront as f64;
            self.wave_fill = 0;
            self.wave_max = 0;
        }
    }

    /// The cost accumulated so far, with the current partial wavefront
    /// flushed as if the kernel ended here.  The recorder itself keeps
    /// recording (and keeps packing the open wavefront), so successive
    /// snapshots let an observer compute incremental costs — the adaptive
    /// tuner's telemetry — without splitting the kernel into many small
    /// launches whose partial wavefronts would inflate the lock-step cost.
    pub fn snapshot(&self) -> StepCost {
        let mut copy = self.clone();
        copy.flush_wave();
        copy.cost
    }

    /// Finalises the recorder into a [`StepCost`].
    pub fn finish(mut self) -> StepCost {
        self.flush_wave();
        self.cost
    }
}

/// Memory-system context for a kernel: how likely its random accesses are to
/// hit the (shared) last-level cache.
///
/// The join executor derives the hit rate either analytically from working
/// set vs. cache capacity ([`crate::cache::AnalyticCache`]) or from an exact
/// cache simulation ([`crate::cache::CacheSim`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemContext {
    /// Probability that a random access hits the last-level cache.
    pub random_hit_rate: f64,
}

impl MemContext {
    /// A context where every random access misses the cache.
    pub fn uncached() -> Self {
        MemContext {
            random_hit_rate: 0.0,
        }
    }

    /// A context where every random access hits the cache.
    pub fn fully_cached() -> Self {
        MemContext {
            random_hit_rate: 1.0,
        }
    }

    /// A context with the given hit rate (clamped to `[0, 1]`).
    pub fn with_hit_rate(rate: f64) -> Self {
        MemContext {
            random_hit_rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl Default for MemContext {
    fn default() -> Self {
        MemContext::uncached()
    }
}

/// The decomposed elapsed time of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelTime {
    /// Pure computation (Eq. 3 of the paper).
    pub compute: SimTime,
    /// Memory stalls (random accesses and streaming).
    pub memory: SimTime,
    /// Latch/atomic overhead.
    pub atomic: SimTime,
    /// The part of `compute + memory` attributable to SIMD divergence
    /// (already included in those terms; reported separately for analysis).
    pub divergence_overhead: SimTime,
}

impl KernelTime {
    /// Total elapsed time of the kernel.
    pub fn total(&self) -> SimTime {
        self.compute + self.memory + self.atomic
    }

    /// Total excluding the atomic/latch term — this is what the paper's cost
    /// model predicts, since it deliberately omits lock contention
    /// (Section 5.3).
    pub fn total_without_atomics(&self) -> SimTime {
        self.compute + self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_all_components() {
        let mut rec = CostRecorder::new(1);
        for _ in 0..10 {
            rec.item(5.0);
            rec.random_read(2.0);
            rec.random_write(1.0);
            rec.seq_read(8.0);
            rec.seq_write(4.0);
            rec.serial_atomic(1.0);
            rec.parallel_atomic(2.0);
            rec.local_atomic(3.0);
        }
        let c = rec.finish();
        assert_eq!(c.items, 10);
        assert_eq!(c.instructions, 50.0);
        assert_eq!(c.random_reads, 20.0);
        assert_eq!(c.random_writes, 10.0);
        assert_eq!(c.seq_read_bytes, 80.0);
        assert_eq!(c.seq_write_bytes, 40.0);
        assert_eq!(c.serial_atomics, 10.0);
        assert_eq!(c.parallel_atomics, 20.0);
        assert_eq!(c.local_atomics, 30.0);
        assert_eq!(c.instructions_per_item(), 5.0);
    }

    #[test]
    fn uniform_work_has_no_divergence() {
        let mut rec = CostRecorder::new(64);
        for _ in 0..6400 {
            rec.item(1.0);
            rec.work(3);
        }
        let c = rec.finish();
        assert!((c.divergence_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_work_has_divergence_above_one() {
        let mut rec = CostRecorder::new(64);
        for i in 0..6400u32 {
            rec.item(1.0);
            rec.work(if i % 64 == 0 { 100 } else { 1 });
        }
        let c = rec.finish();
        assert!(c.divergence_factor() > 5.0);
    }

    #[test]
    fn partial_last_wavefront_is_flushed() {
        let mut rec = CostRecorder::new(64);
        for _ in 0..10 {
            rec.item(1.0);
            rec.work(2);
        }
        let c = rec.finish();
        // One partial wavefront of 10 items, max work 2.
        assert_eq!(c.total_work, 20.0);
        assert_eq!(c.lockstep_work, 2.0 * 64.0);
    }

    #[test]
    fn wavefront_of_one_never_diverges() {
        let mut rec = CostRecorder::new(1);
        for i in 0..100u32 {
            rec.item(1.0);
            rec.work(i % 17 + 1);
        }
        let c = rec.finish();
        assert!((c.divergence_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_scale_are_consistent() {
        let mut rec = CostRecorder::new(1);
        for _ in 0..100 {
            rec.item(2.0);
            rec.random_read(1.0);
        }
        let c = rec.finish();
        let mut doubled = c.clone();
        doubled.merge(&c);
        let scaled = c.scaled(2.0);
        assert_eq!(doubled.instructions, scaled.instructions);
        assert_eq!(doubled.random_reads, scaled.random_reads);
        assert_eq!(doubled.items, scaled.items);
    }

    #[test]
    fn kernel_time_totals() {
        let kt = KernelTime {
            compute: SimTime::from_ns(10.0),
            memory: SimTime::from_ns(5.0),
            atomic: SimTime::from_ns(2.0),
            divergence_overhead: SimTime::from_ns(1.0),
        };
        assert_eq!(kt.total().as_ns(), 17.0);
        assert_eq!(kt.total_without_atomics().as_ns(), 15.0);
    }

    #[test]
    fn mem_context_clamps() {
        assert_eq!(MemContext::with_hit_rate(2.0).random_hit_rate, 1.0);
        assert_eq!(MemContext::with_hit_rate(-1.0).random_hit_rate, 0.0);
    }
}
