//! PCI-e bus model for the emulated discrete architecture.
//!
//! The paper compares the coupled APU against a *discrete* CPU-GPU system by
//! emulating the PCI-e bus with a delay of `latency + size / bandwidth`
//! (Section 5.1), using `latency = 0.015 ms` and `bandwidth = 3 GB/s`.
//! [`PcieSpec`] reproduces exactly that model and keeps running transfer
//! statistics so experiments can report the 4–10 % transfer share found in
//! Figure 3.

use crate::SimTime;

/// PCI-e link parameters and the transfer-delay model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieSpec {
    /// One-way latency per transfer, in milliseconds.
    pub latency_ms: f64,
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl PcieSpec {
    /// The bus emulated in the paper: 0.015 ms latency, 3 GB/s bandwidth.
    pub fn paper_default() -> Self {
        PcieSpec {
            latency_ms: 0.015,
            bandwidth_gbps: 3.0,
        }
    }

    /// A PCI-e 3.0 x16 class link, for sensitivity studies.
    pub fn pcie3_x16() -> Self {
        PcieSpec {
            latency_ms: 0.010,
            bandwidth_gbps: 12.0,
        }
    }

    /// Delay of one transfer of `bytes` bytes: `latency + size / bandwidth`.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let latency = SimTime::from_ms(self.latency_ms);
        // bandwidth in GB/s == bytes per nanosecond.
        let payload = SimTime::from_ns(bytes as f64 / self.bandwidth_gbps);
        latency + payload
    }

    /// Delay of `count` transfers totalling `bytes` bytes (each transfer pays
    /// the latency once).
    pub fn transfers_time(&self, count: u64, bytes: u64) -> SimTime {
        if count == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_ms(self.latency_ms) * count as f64
            + SimTime::from_ns(bytes as f64 / self.bandwidth_gbps)
    }
}

/// Running totals of PCI-e traffic, useful for reporting the transfer share
/// of the total execution time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PcieTraffic {
    /// Number of individual transfers performed.
    pub transfers: u64,
    /// Total bytes moved across the bus.
    pub bytes: u64,
    /// Accumulated bus time.
    pub time: SimTime,
}

impl PcieTraffic {
    /// Records a transfer of `bytes` bytes over `spec`, returning its delay.
    pub fn record(&mut self, spec: &PcieSpec, bytes: u64) -> SimTime {
        let t = spec.transfer_time(bytes);
        self.transfers += 1;
        self.bytes += bytes;
        self.time += t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_parameters() {
        let p = PcieSpec::paper_default();
        assert_eq!(p.latency_ms, 0.015);
        assert_eq!(p.bandwidth_gbps, 3.0);
    }

    #[test]
    fn transfer_time_matches_formula() {
        let p = PcieSpec::paper_default();
        // 128 MB build relation side (16M tuples x 8 bytes).
        let bytes = 128u64 * 1024 * 1024;
        let t = p.transfer_time(bytes);
        let expected_secs = 0.015e-3 + bytes as f64 / (3.0e9);
        assert!((t.as_secs() - expected_secs).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_still_pays_latency() {
        let p = PcieSpec::paper_default();
        assert!((p.transfer_time(0).as_ms() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn batched_transfers_pay_latency_per_transfer() {
        let p = PcieSpec::paper_default();
        let one = p.transfer_time(1_000_000);
        let four_split = p.transfers_time(4, 4_000_000);
        let four_merged = p.transfer_time(4_000_000);
        assert!(four_split > four_merged);
        assert!(four_split.as_ns() > one.as_ns());
        assert_eq!(p.transfers_time(0, 0), SimTime::ZERO);
    }

    #[test]
    fn traffic_accumulates() {
        let p = PcieSpec::paper_default();
        let mut traffic = PcieTraffic::default();
        traffic.record(&p, 1024);
        traffic.record(&p, 2048);
        assert_eq!(traffic.transfers, 2);
        assert_eq!(traffic.bytes, 3072);
        assert!(traffic.time > SimTime::ZERO);
    }

    #[test]
    fn faster_link_is_faster() {
        let slow = PcieSpec::paper_default();
        let fast = PcieSpec::pcie3_x16();
        let bytes = 64 * 1024 * 1024;
        assert!(fast.transfer_time(bytes) < slow.transfer_time(bytes));
    }
}
