//! Execution-model helpers: wavefront divergence and latch contention.
//!
//! These utilities sit between the raw device model ([`crate::device`]) and
//! the join algorithms: they answer "how much does an irregular workload cost
//! on a lock-step SIMD device?" and "how expensive is a latched counter under
//! a given access distribution?" — the two OpenCL-specific effects the paper
//! calls out in Section 3.3 and measures in Figures 11 and 20.

use crate::device::DeviceSpec;
use crate::SimTime;

/// Computes the SIMD divergence factor of a per-item work distribution when
/// executed in wavefronts of `wavefront` items: the ratio of lock-step cost
/// (each wavefront costs `width × max(work)`) to useful work.
///
/// A factor of 1.0 means no divergence; higher values mean idle SIMD lanes.
/// The grouping optimisation of Section 3.3 works precisely by reordering
/// items so this factor approaches 1.
pub fn divergence_factor(work: &[u32], wavefront: usize) -> f64 {
    if work.is_empty() || wavefront <= 1 {
        return 1.0;
    }
    let total: f64 = work.iter().map(|&w| w as f64).sum();
    if total <= 0.0 {
        return 1.0;
    }
    let mut lockstep = 0.0;
    for chunk in work.chunks(wavefront) {
        let max = chunk.iter().copied().max().unwrap_or(0) as f64;
        lockstep += max * wavefront as f64;
    }
    (lockstep / total).max(1.0)
}

/// Parameters of the latch micro-benchmark of Figure 20 (Appendix A):
/// an array of `array_len` integers receives `total_increments` atomic
/// increments from `threads` concurrent work items; a fraction
/// `skew_fraction` of the increments is concentrated on a small hot set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicWorkload {
    /// Number of integers in the shared array (`N` in the paper, 1..16M).
    pub array_len: u64,
    /// Total number of increments performed (`X` = 16M in the paper).
    pub total_increments: u64,
    /// Number of concurrent work items (`K`: 256 on the CPU, 8192 on the
    /// GPU in the paper).
    pub threads: u64,
    /// Fraction of increments that target duplicated (hot) keys; 0.0 for the
    /// uniform dataset, 0.10 for low-skew, 0.25 for high-skew.
    pub skew_fraction: f64,
}

impl AtomicWorkload {
    /// The paper's configuration for a given array length, device-side thread
    /// count and skew.
    pub fn paper(array_len: u64, threads: u64, skew_fraction: f64) -> Self {
        AtomicWorkload {
            array_len: array_len.max(1),
            total_increments: 16 * 1024 * 1024,
            threads,
            skew_fraction: skew_fraction.clamp(0.0, 1.0),
        }
    }
}

/// Analytic model of latched atomic increments over a shared array.
///
/// Two effects compete as the array grows (exactly the trend of Figure 20):
///
/// * **Contention** — with few distinct targets, many threads serialise on
///   the same latch, so small arrays are slow.
/// * **Locality** — once the array exceeds the cache, every access pays a
///   memory miss, so very large arrays get slower again; skewed access keeps
///   a hot set resident and is therefore slightly *faster* than uniform
///   beyond that point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatchModel {
    /// Capacity of the cache the array competes for, in bytes.
    pub cache_bytes: f64,
    /// Bytes per array element (4-byte integers in the paper).
    pub element_bytes: f64,
}

impl LatchModel {
    /// Model over the A8-3870K's 4 MB shared cache with 4-byte integers.
    pub fn a8_3870k() -> Self {
        LatchModel {
            cache_bytes: 4.0 * 1024.0 * 1024.0,
            element_bytes: 4.0,
        }
    }

    /// Size of the hot set targeted by skewed accesses (a small constant
    /// fraction of the array, at least one element).
    fn hot_set_len(&self, workload: &AtomicWorkload) -> f64 {
        (workload.array_len as f64 / 128.0).max(1.0)
    }

    /// Probability that an access hits the cache.
    pub fn hit_rate(&self, workload: &AtomicWorkload) -> f64 {
        let uniform_bytes = workload.array_len as f64 * self.element_bytes;
        let hot_bytes = self.hot_set_len(workload) * self.element_bytes;
        let uniform_hit = (self.cache_bytes / uniform_bytes.max(1.0)).min(1.0);
        let hot_hit = (self.cache_bytes / hot_bytes.max(1.0)).min(1.0);
        workload.skew_fraction * hot_hit + (1.0 - workload.skew_fraction) * uniform_hit
    }

    /// Average number of threads contending for the same latch.
    pub fn contention(&self, workload: &AtomicWorkload) -> f64 {
        let uniform_targets = workload.array_len as f64;
        let hot_targets = self.hot_set_len(workload);
        let threads = workload.threads as f64;
        let uniform_contention = (threads / uniform_targets).max(1.0);
        let hot_contention = (threads / hot_targets).max(1.0);
        workload.skew_fraction * hot_contention
            + (1.0 - workload.skew_fraction) * uniform_contention
    }

    /// Total elapsed time of the micro-benchmark on `device`.
    pub fn locking_time(&self, device: &DeviceSpec, workload: &AtomicWorkload) -> SimTime {
        let n = workload.total_increments as f64;
        let hit = self.hit_rate(workload);
        let mem_unit = hit * device.random_hit_ns + (1.0 - hit) * device.random_miss_ns;
        let contention = self.contention(workload);
        // Contended atomics serialise: they degrade from the distributed
        // (parallel) cost towards the serialising cost as contention grows.
        let span = (device.serial_atomic_ns - device.parallel_atomic_ns).max(0.0);
        let saturation = 1.0 - 1.0 / contention; // 0 when uncontended, -> 1 under heavy contention
        let atomic_unit = device.parallel_atomic_ns + span * saturation;
        // A handful of instructions per increment (index computation, load,
        // add, store under the latch).
        let instr_unit = 12.0 / device.instr_throughput_per_ns();
        SimTime::from_ns(n * (atomic_unit + mem_unit + instr_unit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn divergence_factor_uniform_is_one() {
        let work = vec![5u32; 256];
        assert!((divergence_factor(&work, 64) - 1.0).abs() < 1e-12);
        assert_eq!(divergence_factor(&[], 64), 1.0);
        assert_eq!(divergence_factor(&work, 1), 1.0);
    }

    #[test]
    fn divergence_factor_detects_skew() {
        let mut work = vec![1u32; 64];
        work[0] = 64;
        let f = divergence_factor(&work, 64);
        assert!(
            f > 30.0,
            "one hot lane should dominate the wavefront, got {f}"
        );
    }

    #[test]
    fn divergence_factor_improves_after_sorting() {
        // Alternating light/heavy items diverge badly; grouping (sorting)
        // them recovers most of the loss — the basis of the paper's grouping
        // optimisation.
        let mixed: Vec<u32> = (0..1024).map(|i| if i % 2 == 0 { 1 } else { 32 }).collect();
        let mut grouped = mixed.clone();
        grouped.sort_unstable();
        let f_mixed = divergence_factor(&mixed, 64);
        let f_grouped = divergence_factor(&grouped, 64);
        assert!(f_grouped < f_mixed);
    }

    #[test]
    fn latch_contention_drops_with_array_size() {
        let model = LatchModel::a8_3870k();
        let gpu = DeviceSpec::a8_3870k_gpu();
        let small = model.locking_time(&gpu, &AtomicWorkload::paper(4, 8192, 0.0));
        let medium = model.locking_time(&gpu, &AtomicWorkload::paper(64 * 1024, 8192, 0.0));
        assert!(
            small > medium,
            "tiny arrays must suffer latch contention: {small} <= {medium}"
        );
    }

    #[test]
    fn latch_time_rises_again_beyond_cache() {
        let model = LatchModel::a8_3870k();
        let cpu = DeviceSpec::a8_3870k_cpu();
        // 256K integers (1 MB) fit in the 4 MB cache; 16M integers (64 MB) do not.
        let in_cache = model.locking_time(&cpu, &AtomicWorkload::paper(256 * 1024, 256, 0.0));
        let beyond = model.locking_time(&cpu, &AtomicWorkload::paper(16 * 1024 * 1024, 256, 0.0));
        assert!(beyond > in_cache);
    }

    #[test]
    fn skew_is_faster_than_uniform_beyond_cache() {
        // "The execution time of running on the high-skew data is slightly
        // lower than that on the uniform data" once the array exceeds the
        // cache (Appendix A).
        let model = LatchModel::a8_3870k();
        let cpu = DeviceSpec::a8_3870k_cpu();
        let n = 16 * 1024 * 1024;
        let uniform = model.locking_time(&cpu, &AtomicWorkload::paper(n, 256, 0.0));
        let skewed = model.locking_time(&cpu, &AtomicWorkload::paper(n, 256, 0.25));
        assert!(skewed < uniform);
    }

    #[test]
    fn hit_rate_and_contention_bounds() {
        let model = LatchModel::a8_3870k();
        let w = AtomicWorkload::paper(1, 8192, 0.0);
        assert!(model.hit_rate(&w) >= 0.999);
        assert!(model.contention(&w) >= 8000.0);
        let w = AtomicWorkload::paper(1 << 30, 8192, 0.0);
        assert!(model.hit_rate(&w) < 0.01);
        assert!((model.contention(&w) - 1.0).abs() < 1e-6);
    }
}
