//! Compute-device descriptions and the device timing model.
//!
//! OpenCL abstracts both the CPU and the GPU of the APU as *compute devices*
//! made of compute units (CUs) that execute work groups, whose work items run
//! in SIMD wavefronts.  [`DeviceSpec`] captures the parameters of that model
//! that the paper's cost model needs (Table 1 and Table 2 of the paper), plus
//! calibrated memory-access and atomic-operation costs.
//!
//! [`Device::kernel_time`] turns a [`StepCost`]
//! (instructions, memory accesses, atomics, divergence) into simulated
//! elapsed time, mirroring Eq. 2/3 of the paper: computation + memory stalls,
//! with SIMD-divergence and latch terms added on top.

use crate::cost::{KernelTime, MemContext, StepCost};
use crate::SimTime;

/// Whether a device is the CPU or the GPU side of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// The multi-core CPU device.
    Cpu,
    /// The integrated (or discrete) GPU device.
    Gpu,
}

impl DeviceKind {
    /// Short label used in experiment output ("CPU" / "GPU").
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Cpu => "CPU",
            DeviceKind::Gpu => "GPU",
        }
    }

    /// The two kinds in presentation order.
    pub const BOTH: [DeviceKind; 2] = [DeviceKind::Cpu, DeviceKind::Gpu];
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of one compute device.
///
/// Structural parameters (cores, frequency, wavefront width, local memory)
/// come from Table 1 of the paper; the memory-access, atomic and IPC
/// parameters are calibration constants chosen so that the per-step unit
/// costs produced by the simulator reproduce the shape of Figure 4
/// (hash-computation steps ≥15× faster on the GPU, pointer-chasing steps at
/// rough parity).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name, e.g. `"A8-3870K CPU"`.
    pub name: String,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Number of compute units (CPU cores, or GPU SIMD engines).
    pub compute_units: usize,
    /// SIMD lanes (processing elements) per compute unit.
    pub lanes_per_cu: usize,
    /// Work items executed in lock-step; 64 on AMD GPUs (a *wavefront*),
    /// 1 on the CPU.
    pub wavefront_size: usize,
    /// Core clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Sustained instructions per cycle per lane for OpenCL-style kernels.
    pub ipc_per_lane: f64,
    /// Effective device-aggregate cost of one random access that misses the
    /// last-level cache (latency divided by the memory-level parallelism the
    /// device can sustain), in nanoseconds.
    pub random_miss_ns: f64,
    /// Effective device-aggregate cost of one random access that hits the
    /// shared cache, in nanoseconds.
    pub random_hit_ns: f64,
    /// Sustained sequential/streaming bandwidth in GB/s (equivalently
    /// bytes per nanosecond).
    pub seq_bandwidth_gbps: f64,
    /// Cost of one *serialising* atomic operation — all requesters target the
    /// same address (e.g. the global pointer of the basic memory allocator) —
    /// in nanoseconds.  These cannot be overlapped.
    pub serial_atomic_ns: f64,
    /// Effective aggregate cost of one *distributed* atomic operation —
    /// requests spread over many addresses (e.g. per-bucket latches) — in
    /// nanoseconds.
    pub parallel_atomic_ns: f64,
    /// Effective aggregate cost of one atomic on work-group local memory, in
    /// nanoseconds.
    pub local_atomic_ns: f64,
    /// Local (work-group shared) memory per compute unit, in bytes.
    pub local_mem_bytes: usize,
    /// Whether the device has a branch predictor (CPUs do, the APU GPU does
    /// not); devices without one pay the full divergence penalty.
    pub has_branch_prediction: bool,
}

impl DeviceSpec {
    /// The CPU side of the AMD A8-3870K APU used in the paper:
    /// 4 cores at 3.0 GHz (Table 1).
    pub fn a8_3870k_cpu() -> Self {
        DeviceSpec {
            name: "A8-3870K CPU".to_string(),
            kind: DeviceKind::Cpu,
            compute_units: 4,
            lanes_per_cu: 1,
            wavefront_size: 1,
            frequency_ghz: 3.0,
            ipc_per_lane: 0.75,
            random_miss_ns: 3.6,
            random_hit_ns: 1.0,
            seq_bandwidth_gbps: 18.0,
            serial_atomic_ns: 15.0,
            parallel_atomic_ns: 3.0,
            local_atomic_ns: 1.0,
            local_mem_bytes: 32 * 1024,
            has_branch_prediction: true,
        }
    }

    /// The GPU side of the AMD A8-3870K APU used in the paper:
    /// 400 cores (5 SIMD engines × 80 lanes) at 0.6 GHz (Table 1).
    pub fn a8_3870k_gpu() -> Self {
        DeviceSpec {
            name: "A8-3870K GPU".to_string(),
            kind: DeviceKind::Gpu,
            compute_units: 5,
            lanes_per_cu: 80,
            wavefront_size: 64,
            frequency_ghz: 0.6,
            ipc_per_lane: 0.9,
            random_miss_ns: 6.8,
            random_hit_ns: 1.4,
            seq_bandwidth_gbps: 22.0,
            serial_atomic_ns: 40.0,
            parallel_atomic_ns: 3.5,
            local_atomic_ns: 0.3,
            local_mem_bytes: 32 * 1024,
            has_branch_prediction: false,
        }
    }

    /// The discrete AMD Radeon HD 7970 listed for reference in Table 1:
    /// 2048 cores at 0.9 GHz with its own GDDR5 memory.
    pub fn radeon_hd7970() -> Self {
        DeviceSpec {
            name: "Radeon HD 7970".to_string(),
            kind: DeviceKind::Gpu,
            compute_units: 32,
            lanes_per_cu: 64,
            wavefront_size: 64,
            frequency_ghz: 0.925,
            ipc_per_lane: 0.9,
            random_miss_ns: 1.2,
            random_hit_ns: 0.5,
            seq_bandwidth_gbps: 264.0,
            serial_atomic_ns: 25.0,
            parallel_atomic_ns: 1.0,
            local_atomic_ns: 0.2,
            local_mem_bytes: 32 * 1024,
            has_branch_prediction: false,
        }
    }

    /// Peak aggregate instruction throughput in instructions per nanosecond
    /// (`compute_units × lanes × frequency × IPC`), the denominator of Eq. 3.
    pub fn instr_throughput_per_ns(&self) -> f64 {
        self.compute_units as f64
            * self.lanes_per_cu as f64
            * self.frequency_ghz
            * self.ipc_per_lane
    }

    /// Total number of hardware lanes.
    pub fn total_lanes(&self) -> usize {
        self.compute_units * self.lanes_per_cu
    }
}

/// A compute device: a [`DeviceSpec`] plus the timing model that converts a
/// kernel's [`StepCost`] into simulated elapsed time.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    spec: DeviceSpec,
}

impl Device {
    /// Wraps a specification.
    pub fn new(spec: DeviceSpec) -> Self {
        Device { spec }
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// CPU or GPU.
    pub fn kind(&self) -> DeviceKind {
        self.spec.kind
    }

    /// The wavefront width a kernel on this device should use when recording
    /// per-item work for divergence accounting.
    pub fn wavefront_size(&self) -> usize {
        self.spec.wavefront_size
    }

    /// Simulated elapsed time of a data-parallel kernel with the given cost
    /// profile on this device.
    ///
    /// This instantiates the per-step term of the paper's cost model
    /// (Eq. 2): `C + M` (computation plus memory stalls), extended with the
    /// divergence and atomic/latch terms that the paper handles through
    /// separate design tradeoffs (Sections 3.3 and 5.4).
    pub fn kernel_time(&self, cost: &StepCost, mem: &MemContext) -> KernelTime {
        let spec = &self.spec;

        // Eq. 3: computation time = instructions / peak throughput.
        let mut compute_ns = cost.instructions / spec.instr_throughput_per_ns();

        // Memory stalls: random accesses pay the calibrated hit/miss unit
        // cost; streaming accesses are bandwidth-bound.
        let hit = mem.random_hit_rate.clamp(0.0, 1.0);
        let random_unit = hit * spec.random_hit_ns + (1.0 - hit) * spec.random_miss_ns;
        let random_accesses = cost.random_reads + cost.random_writes;
        let mut random_ns = random_accesses * random_unit;
        let seq_bytes = cost.seq_read_bytes + cost.seq_write_bytes;
        let stream_ns = seq_bytes / spec.seq_bandwidth_gbps;

        // Workload divergence: on a SIMD device a wavefront runs as long as
        // its slowest work item, so latency-bound work is inflated by the
        // measured max/mean factor.  Devices with a branch predictor and
        // wavefront width 1 (the CPU) are unaffected.
        let divergence = if spec.wavefront_size > 1 {
            cost.divergence_factor().max(1.0)
        } else {
            1.0
        };
        let base_latency_ns = compute_ns + random_ns;
        compute_ns *= divergence;
        random_ns *= divergence;
        let divergence_overhead_ns = (compute_ns + random_ns) - base_latency_ns;

        // Latches and the software memory allocator (Section 3.3): global
        // serialising atomics cannot overlap; distributed and local-memory
        // atomics are costed at their aggregate effective rate.
        let atomic_ns = cost.serial_atomics * spec.serial_atomic_ns
            + cost.parallel_atomics * spec.parallel_atomic_ns
            + cost.local_atomics * spec.local_atomic_ns;

        KernelTime {
            compute: SimTime::from_ns(compute_ns),
            memory: SimTime::from_ns(random_ns + stream_ns),
            atomic: SimTime::from_ns(atomic_ns),
            divergence_overhead: SimTime::from_ns(divergence_overhead_ns.max(0.0)),
        }
    }

    /// Convenience: total elapsed time of [`Self::kernel_time`].
    pub fn kernel_elapsed(&self, cost: &StepCost, mem: &MemContext) -> SimTime {
        self.kernel_time(cost, mem).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostRecorder;

    fn pure_compute_cost(items: u64, instr_per_item: f64, wavefront: usize) -> StepCost {
        let mut rec = CostRecorder::new(wavefront);
        for _ in 0..items {
            rec.item(instr_per_item);
        }
        rec.finish()
    }

    #[test]
    fn table1_shapes() {
        let cpu = DeviceSpec::a8_3870k_cpu();
        let gpu = DeviceSpec::a8_3870k_gpu();
        let hd = DeviceSpec::radeon_hd7970();
        assert_eq!(cpu.compute_units, 4);
        assert_eq!(gpu.total_lanes(), 400);
        assert_eq!(hd.total_lanes(), 2048);
        assert_eq!(cpu.local_mem_bytes, 32 * 1024);
        assert!(cpu.frequency_ghz > gpu.frequency_ghz);
    }

    #[test]
    fn gpu_dominates_compute_bound_kernels() {
        // Hash-value computation (b1/p1/n1) is compute bound; the paper
        // reports a >15x GPU advantage (Section 5.2, Figure 4).
        let cpu = Device::new(DeviceSpec::a8_3870k_cpu());
        let gpu = Device::new(DeviceSpec::a8_3870k_gpu());
        let mem = MemContext::uncached();
        let t_cpu = cpu
            .kernel_elapsed(&pure_compute_cost(1_000_000, 200.0, 1), &mem)
            .as_ns();
        let t_gpu = gpu
            .kernel_elapsed(&pure_compute_cost(1_000_000, 200.0, 64), &mem)
            .as_ns();
        let speedup = t_cpu / t_gpu;
        assert!(
            speedup > 10.0,
            "expected a large GPU speedup, got {speedup:.1}x"
        );
    }

    #[test]
    fn memory_bound_kernels_are_close_between_devices() {
        // Pointer chasing (b3/p3) is random-access bound; the paper reports
        // near-parity between CPU and GPU on those steps.
        let cpu = Device::new(DeviceSpec::a8_3870k_cpu());
        let gpu = Device::new(DeviceSpec::a8_3870k_gpu());
        let mem = MemContext::uncached();
        let cost_cpu = {
            let mut rec = CostRecorder::new(1);
            for _ in 0..1_000_000u64 {
                rec.item(25.0);
                rec.random_read(1.0);
            }
            rec.finish()
        };
        let cost_gpu = {
            let mut rec = CostRecorder::new(64);
            for _ in 0..1_000_000u64 {
                rec.item(25.0);
                rec.random_read(1.0);
            }
            rec.finish()
        };
        let t_cpu = cpu.kernel_elapsed(&cost_cpu, &mem).as_ns();
        let t_gpu = gpu.kernel_elapsed(&cost_gpu, &mem).as_ns();
        let ratio = t_cpu / t_gpu;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "memory-bound steps should be close across devices, got ratio {ratio:.2}"
        );
    }

    #[test]
    fn cache_hits_are_cheaper_than_misses() {
        let cpu = Device::new(DeviceSpec::a8_3870k_cpu());
        let mut rec = CostRecorder::new(1);
        for _ in 0..1000u64 {
            rec.item(1.0);
            rec.random_read(1.0);
        }
        let cost = rec.finish();
        let hot = cpu.kernel_elapsed(&cost, &MemContext::fully_cached());
        let cold = cpu.kernel_elapsed(&cost, &MemContext::uncached());
        assert!(hot < cold);
    }

    #[test]
    fn serial_atomics_do_not_scale_with_parallelism() {
        let gpu = Device::new(DeviceSpec::a8_3870k_gpu());
        let mut rec = CostRecorder::new(64);
        for _ in 0..10_000u64 {
            rec.item(1.0);
            rec.serial_atomic(1.0);
        }
        let serial = gpu.kernel_time(&rec.finish(), &MemContext::uncached());
        let mut rec = CostRecorder::new(64);
        for _ in 0..10_000u64 {
            rec.item(1.0);
            rec.local_atomic(1.0);
        }
        let local = gpu.kernel_time(&rec.finish(), &MemContext::uncached());
        assert!(serial.atomic > local.atomic * 10.0);
    }

    #[test]
    fn divergence_penalises_simd_devices_only() {
        let make_cost = |wavefront: usize| {
            let mut rec = CostRecorder::new(wavefront);
            for i in 0..64_000u64 {
                rec.item(10.0);
                // One in 64 items does 64x the work: a classic divergent
                // wavefront.
                rec.work(if i % 64 == 0 { 64 } else { 1 });
            }
            rec.finish()
        };
        let gpu = Device::new(DeviceSpec::a8_3870k_gpu());
        let cpu = Device::new(DeviceSpec::a8_3870k_cpu());
        let gpu_time = gpu.kernel_time(&make_cost(64), &MemContext::uncached());
        let cpu_time = cpu.kernel_time(&make_cost(1), &MemContext::uncached());
        assert!(gpu_time.divergence_overhead > SimTime::ZERO);
        assert_eq!(cpu_time.divergence_overhead, SimTime::ZERO);
    }

    #[test]
    fn throughput_formula() {
        let gpu = DeviceSpec::a8_3870k_gpu();
        let expected = 5.0 * 80.0 * 0.6 * gpu.ipc_per_lane;
        assert!((gpu.instr_throughput_per_ns() - expected).abs() < 1e-9);
    }
}
