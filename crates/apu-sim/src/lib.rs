//! # apu-sim — coupled / discrete CPU-GPU architecture simulator
//!
//! This crate is the hardware substrate used by the hash-join reproduction of
//! *"Revisiting Co-Processing for Hash Joins on the Coupled CPU-GPU
//! Architecture"* (He, Lu, He; VLDB 2013).
//!
//! The paper runs on an AMD APU A8-3870K (a coupled CPU-GPU chip sharing the
//! last-level cache and main memory) and, for comparison, on an *emulated*
//! discrete architecture obtained by adding a PCI-e transfer delay.  Neither
//! an APU nor OpenCL is available in this environment, so the hardware is
//! simulated: kernels execute as ordinary Rust code over work items (the
//! joins produce real, verifiable results) while elapsed time is accounted by
//! a calibrated device model.
//!
//! The model follows the structure of the paper's cost model (Section 4):
//!
//! * **Computation** — instructions / (compute units × lanes × frequency ×
//!   IPC), see [`DeviceSpec`] and [`cost::KernelTime`].
//! * **Memory stalls** — calibrated per-access costs for random reads/writes
//!   (cache hit vs. miss) and bandwidth-limited sequential streams, see
//!   [`cost::MemContext`] and [`cache`].
//! * **Divergence** — SIMD wavefronts execute in lock-step, so a wavefront
//!   costs as much as its slowest work item, see [`executor`].
//! * **Atomics / latches** — serialising atomics (e.g. a global allocator
//!   pointer) versus distributed atomics (e.g. per-bucket latches).
//! * **PCI-e transfers** — only on the discrete topology, modelled exactly as
//!   the paper does: `latency + size / bandwidth` ([`pcie::PcieSpec`]).
//!
//! The crate deliberately knows nothing about hash joins; it provides
//! devices, topologies, a simulated clock, a cache model and kernel-cost
//! accounting that any data-parallel operator can use.

#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod cost;
pub mod device;
pub mod executor;
pub mod pcie;
pub mod topology;

pub use cache::{AnalyticCache, CacheSim, CacheStats};
pub use clock::{DeviceClocks, Phase, PhaseBreakdown, SimTime};
pub use cost::{CostRecorder, KernelTime, MemContext, StepCost};
pub use device::{Device, DeviceKind, DeviceSpec};
pub use executor::{divergence_factor, AtomicWorkload, LatchModel};
pub use pcie::PcieSpec;
pub use topology::{SystemSpec, Topology};
