//! Calibrated per-step unit costs (the model parameters of Table 2).

use hj_core::StepId;

/// Per-step, per-device unit costs (nanoseconds per input tuple) of one step
/// series, excluding latch/lock contention.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesUnitCosts {
    /// The steps of the series, in order.
    pub steps: Vec<StepId>,
    /// Unit cost of each step on the CPU, ns per tuple.
    pub cpu_ns: Vec<f64>,
    /// Unit cost of each step on the GPU, ns per tuple.
    pub gpu_ns: Vec<f64>,
}

impl SeriesUnitCosts {
    /// Creates a series cost table.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn new(steps: Vec<StepId>, cpu_ns: Vec<f64>, gpu_ns: Vec<f64>) -> Self {
        assert_eq!(steps.len(), cpu_ns.len());
        assert_eq!(steps.len(), gpu_ns.len());
        SeriesUnitCosts {
            steps,
            cpu_ns,
            gpu_ns,
        }
    }

    /// Number of steps in the series.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the series has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The GPU speedup of step `i` (CPU unit cost / GPU unit cost).
    pub fn gpu_speedup(&self, i: usize) -> f64 {
        if self.gpu_ns[i] <= 0.0 {
            f64::INFINITY
        } else {
            self.cpu_ns[i] / self.gpu_ns[i]
        }
    }
}

/// Unit costs for all three step series of a hash join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinUnitCosts {
    /// One partition pass (`n1..n3`); empty for SHJ.
    pub partition: SeriesUnitCosts,
    /// The build phase (`b1..b4`).
    pub build: SeriesUnitCosts,
    /// The probe phase (`p1..p4`).
    pub probe: SeriesUnitCosts,
}

impl JoinUnitCosts {
    /// Renders the unit-cost table in the layout of Figure 4 (one row per
    /// step: CPU ns/tuple, GPU ns/tuple).
    pub fn figure4_rows(&self) -> Vec<(StepId, f64, f64)> {
        let mut rows = Vec::new();
        for series in [&self.partition, &self.build, &self.probe] {
            for i in 0..series.len() {
                rows.push((series.steps[i], series.cpu_ns[i], series.gpu_ns[i]));
            }
        }
        rows
    }

    /// Extracts these calibrated unit costs as a prior for the adaptive
    /// runtime tuner: seeding `AdaptiveConfig::with_prior` with this lets
    /// the very first re-plan solve every step, while execution telemetry
    /// progressively overrides the seed — the offline model proposes, the
    /// runtime disposes.
    pub fn adaptive_prior(&self) -> hj_core::adaptive::JoinPrior {
        let series = |costs: &SeriesUnitCosts| hj_core::adaptive::SeriesPrior {
            cpu_ns: costs.cpu_ns.clone(),
            gpu_ns: costs.gpu_ns.clone(),
        };
        hj_core::adaptive::JoinPrior {
            partition: series(&self.partition),
            build: series(&self.build),
            probe: series(&self.probe),
        }
    }

    /// A deliberately mis-calibrated copy with the CPU and GPU columns
    /// swapped — the worst-case wrong prior (it claims the slow device is
    /// the fast one for every step).  Used by the adaptive benchmark and
    /// tests to measure how much of the gap to an oracle-tuned run the
    /// runtime tuner recovers.
    pub fn swapped_devices(&self) -> JoinUnitCosts {
        let swap = |costs: &SeriesUnitCosts| {
            SeriesUnitCosts::new(
                costs.steps.clone(),
                costs.gpu_ns.clone(),
                costs.cpu_ns.clone(),
            )
        };
        JoinUnitCosts {
            partition: swap(&self.partition),
            build: swap(&self.build),
            probe: swap(&self.probe),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accessors() {
        let s = SeriesUnitCosts::new(
            vec![StepId::B1, StepId::B2],
            vec![20.0, 5.0],
            vec![1.5, 4.0],
        );
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!((s.gpu_speedup(0) - 20.0 / 1.5).abs() < 1e-9);
        assert!(s.gpu_speedup(1) < 2.0);
    }

    #[test]
    fn figure4_rows_cover_all_steps() {
        let costs = JoinUnitCosts {
            partition: SeriesUnitCosts::new(StepId::PARTITION.to_vec(), vec![1.0; 3], vec![1.0; 3]),
            build: SeriesUnitCosts::new(StepId::BUILD.to_vec(), vec![1.0; 4], vec![1.0; 4]),
            probe: SeriesUnitCosts::new(StepId::PROBE.to_vec(), vec![1.0; 4], vec![1.0; 4]),
        };
        assert_eq!(costs.figure4_rows().len(), 11);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = SeriesUnitCosts::new(vec![StepId::B1], vec![1.0, 2.0], vec![1.0]);
    }

    fn sample_costs() -> JoinUnitCosts {
        JoinUnitCosts {
            partition: SeriesUnitCosts::new(
                StepId::PARTITION.to_vec(),
                vec![20.0, 4.0, 8.0],
                vec![1.5, 3.0, 7.0],
            ),
            build: SeriesUnitCosts::new(
                StepId::BUILD.to_vec(),
                vec![22.0, 5.0, 10.0, 6.0],
                vec![1.5, 4.0, 9.0, 5.0],
            ),
            probe: SeriesUnitCosts::new(
                StepId::PROBE.to_vec(),
                vec![23.0, 5.0, 9.0, 6.0],
                vec![1.4, 4.0, 8.5, 5.0],
            ),
        }
    }

    #[test]
    fn adaptive_prior_mirrors_the_unit_costs() {
        let costs = sample_costs();
        let prior = costs.adaptive_prior();
        assert_eq!(prior.build.cpu_ns, costs.build.cpu_ns);
        assert_eq!(prior.probe.gpu_ns, costs.probe.gpu_ns);
        assert_eq!(prior.partition.cpu_ns.len(), 3);
        // The prior validates against the tuner's shape requirements.
        assert!(hj_core::adaptive::AdaptiveConfig::default()
            .with_prior(prior)
            .validate()
            .is_ok());
    }

    #[test]
    fn swapped_devices_inverts_every_speedup() {
        let costs = sample_costs();
        let bad = costs.swapped_devices();
        assert_eq!(bad.build.cpu_ns, costs.build.gpu_ns);
        assert_eq!(bad.build.gpu_ns, costs.build.cpu_ns);
        // The hash step now (wrongly) looks CPU-friendly.
        assert!(bad.build.gpu_speedup(0) < 1.0);
        assert!(costs.build.gpu_speedup(0) > 1.0);
        // Swapping twice round-trips.
        assert_eq!(bad.swapped_devices(), costs);
    }
}
