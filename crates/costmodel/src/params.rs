//! Calibrated per-step unit costs (the model parameters of Table 2).

use hj_core::StepId;

/// Per-step, per-device unit costs (nanoseconds per input tuple) of one step
/// series, excluding latch/lock contention.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesUnitCosts {
    /// The steps of the series, in order.
    pub steps: Vec<StepId>,
    /// Unit cost of each step on the CPU, ns per tuple.
    pub cpu_ns: Vec<f64>,
    /// Unit cost of each step on the GPU, ns per tuple.
    pub gpu_ns: Vec<f64>,
}

impl SeriesUnitCosts {
    /// Creates a series cost table.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn new(steps: Vec<StepId>, cpu_ns: Vec<f64>, gpu_ns: Vec<f64>) -> Self {
        assert_eq!(steps.len(), cpu_ns.len());
        assert_eq!(steps.len(), gpu_ns.len());
        SeriesUnitCosts {
            steps,
            cpu_ns,
            gpu_ns,
        }
    }

    /// Number of steps in the series.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the series has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The GPU speedup of step `i` (CPU unit cost / GPU unit cost).
    pub fn gpu_speedup(&self, i: usize) -> f64 {
        if self.gpu_ns[i] <= 0.0 {
            f64::INFINITY
        } else {
            self.cpu_ns[i] / self.gpu_ns[i]
        }
    }
}

/// Unit costs for all three step series of a hash join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinUnitCosts {
    /// One partition pass (`n1..n3`); empty for SHJ.
    pub partition: SeriesUnitCosts,
    /// The build phase (`b1..b4`).
    pub build: SeriesUnitCosts,
    /// The probe phase (`p1..p4`).
    pub probe: SeriesUnitCosts,
}

impl JoinUnitCosts {
    /// Renders the unit-cost table in the layout of Figure 4 (one row per
    /// step: CPU ns/tuple, GPU ns/tuple).
    pub fn figure4_rows(&self) -> Vec<(StepId, f64, f64)> {
        let mut rows = Vec::new();
        for series in [&self.partition, &self.build, &self.probe] {
            for i in 0..series.len() {
                rows.push((series.steps[i], series.cpu_ns[i], series.gpu_ns[i]));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accessors() {
        let s = SeriesUnitCosts::new(
            vec![StepId::B1, StepId::B2],
            vec![20.0, 5.0],
            vec![1.5, 4.0],
        );
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!((s.gpu_speedup(0) - 20.0 / 1.5).abs() < 1e-9);
        assert!(s.gpu_speedup(1) < 2.0);
    }

    #[test]
    fn figure4_rows_cover_all_steps() {
        let costs = JoinUnitCosts {
            partition: SeriesUnitCosts::new(StepId::PARTITION.to_vec(), vec![1.0; 3], vec![1.0; 3]),
            build: SeriesUnitCosts::new(StepId::BUILD.to_vec(), vec![1.0; 4], vec![1.0; 4]),
            probe: SeriesUnitCosts::new(StepId::PROBE.to_vec(), vec![1.0; 4], vec![1.0; 4]),
        };
        assert_eq!(costs.figure4_rows().len(), 11);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = SeriesUnitCosts::new(vec![StepId::B1], vec![1.0, 2.0], vec![1.0]);
    }
}
