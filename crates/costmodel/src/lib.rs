//! # costmodel — the abstract cost model, calibration and ratio optimiser
//!
//! Section 4 of the paper develops a cost model that predicts the elapsed
//! time of a step series under pipelined co-processing from per-step
//! per-device unit costs, and uses it to choose the workload ratios of OL,
//! DD and PL.  This crate reproduces that machinery:
//!
//! * [`params`] — the calibrated per-step unit costs (the `#I^i_XPU` /
//!   memory-cost terms of Table 2);
//! * [`calibration`] — obtains those unit costs by profiling CPU-only and
//!   GPU-only executions on the simulator (standing in for AMD CodeXL and
//!   the memory-calibration micro-benchmarks of Manegold et al. / He et
//!   al.);
//! * [`model`] — Eqs. 1–5: computation + memory per step, pipeline delays,
//!   elapsed time as the max over the devices.  Lock contention is
//!   deliberately *not* modelled, exactly as in the paper (Section 5.3);
//! * [`optimizer`] — grid search over ratios at step δ (0.02 in the paper)
//!   with coordinate refinement, plus OL placement and DD ratio selection;
//! * [`montecarlo`] — random-ratio sampling used to evaluate how close the
//!   model-chosen ratios come to the best achievable (Figure 9).

#![warn(missing_docs)]

pub mod calibration;
pub mod model;
pub mod montecarlo;
pub mod optimizer;
pub mod params;

pub use calibration::{calibrate_from_relations, calibrate_quick};
pub use model::{JoinCostModel, SeriesCostModel};
pub use montecarlo::{cdf_points, monte_carlo_series};
pub use optimizer::{
    optimize_dd_ratio, optimize_offload, optimize_pl_ratios, tune_scheme, TunedScheme,
};
pub use params::{JoinUnitCosts, SeriesUnitCosts};
