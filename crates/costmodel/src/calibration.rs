//! Calibration: obtaining per-step unit costs by profiling CPU-only and
//! GPU-only executions.
//!
//! The paper obtains per-step instruction counts from AMD's profilers and
//! per-access memory costs from calibration micro-benchmarks.  Here the
//! simulator already reports per-step kernel times, so calibration simply
//! runs the join once per device on a profiling workload and divides each
//! step's time (excluding the latch term, which the model deliberately
//! ignores) by the number of tuples it processed.

use crate::params::{JoinUnitCosts, SeriesUnitCosts};
use apu_sim::{DeviceKind, Phase, SystemSpec};
use datagen::{DataGenConfig, Relation};
use hj_core::{
    Algorithm, EngineConfig, JoinConfig, JoinEngine, JoinOutcome, JoinRequest, Scheme, StepId,
};

/// Calibrates per-step unit costs for `algorithm` on `sys` using the given
/// relations as the profiling workload.
///
/// This performs one CPU-only and one GPU-only execution; the measured
/// per-step times (minus atomics) become the model's unit costs.  Using the
/// target workload itself as the profiling input makes the calibrated memory
/// costs reflect the target working-set sizes, as the paper's
/// workload-dependent calibration does (Section 4.2).
pub fn calibrate_from_relations(
    sys: &SystemSpec,
    build: &Relation,
    probe: &Relation,
    algorithm: Algorithm,
) -> JoinUnitCosts {
    let base = match algorithm {
        Algorithm::Simple => JoinConfig::shj(Scheme::CpuOnly),
        Algorithm::Partitioned { .. } => JoinConfig {
            algorithm,
            ..JoinConfig::phj(Scheme::CpuOnly)
        },
    };
    let cpu_cfg = JoinConfig {
        scheme: Scheme::CpuOnly,
        ..base.clone()
    };
    let gpu_cfg = JoinConfig {
        scheme: Scheme::GpuOnly,
        ..base
    };
    // One engine serves both profiling runs over the same arena.
    let mut engine = JoinEngine::for_system(
        sys.clone(),
        EngineConfig::for_tuples(build.len(), probe.len()),
    )
    .expect("calibration engine construction");
    let mut run = |cfg: JoinConfig| {
        let request = JoinRequest::from_config(cfg).expect("calibration configuration is valid");
        engine
            .execute(&request, build, probe)
            .expect("calibration run failed")
    };
    let cpu_run = run(cpu_cfg);
    let gpu_run = run(gpu_cfg);

    JoinUnitCosts {
        partition: series_costs(&cpu_run, &gpu_run, Phase::Partition, &StepId::PARTITION),
        build: series_costs(&cpu_run, &gpu_run, Phase::Build, &StepId::BUILD),
        probe: series_costs(&cpu_run, &gpu_run, Phase::Probe, &StepId::PROBE),
    }
}

/// Calibrates on a small synthetic profiling workload (handy for examples
/// and tests when the target relations are not at hand).
pub fn calibrate_quick(
    sys: &SystemSpec,
    sample_tuples: usize,
    algorithm: Algorithm,
) -> JoinUnitCosts {
    let (build, probe) =
        datagen::generate_pair(&DataGenConfig::small(sample_tuples, sample_tuples));
    calibrate_from_relations(sys, &build, &probe, algorithm)
}

/// Extracts per-step unit costs of one phase kind from a CPU-only and a
/// GPU-only run: total per-step device time (without atomics) divided by the
/// tuples that step processed, aggregated across all executions of that
/// phase (PHJ runs it once per partition pair).
fn series_costs(
    cpu_run: &JoinOutcome,
    gpu_run: &JoinOutcome,
    phase: Phase,
    steps: &[StepId],
) -> SeriesUnitCosts {
    let mut cpu_ns = Vec::with_capacity(steps.len());
    let mut gpu_ns = Vec::with_capacity(steps.len());
    for (i, _) in steps.iter().enumerate() {
        cpu_ns.push(unit_cost(cpu_run, phase, i, DeviceKind::Cpu));
        gpu_ns.push(unit_cost(gpu_run, phase, i, DeviceKind::Gpu));
    }
    SeriesUnitCosts::new(steps.to_vec(), cpu_ns, gpu_ns)
}

fn unit_cost(run: &JoinOutcome, phase: Phase, step_idx: usize, device: DeviceKind) -> f64 {
    let mut total_ns = 0.0;
    let mut items = 0u64;
    for p in run.phases.iter().filter(|p| p.phase == phase) {
        if let Some(step) = p.steps.get(step_idx) {
            // Per-tuple bucket latches are part of a step's intrinsic cost and
            // are included; what the model (intentionally) misses is the
            // *contention* overhead that appears only under co-processing or
            // with the basic allocator, so estimates stay slightly below
            // measurements as in the paper.
            let (t, n) = match device {
                DeviceKind::Cpu => (step.cpu_time.total(), step.cpu_items),
                DeviceKind::Gpu => (step.gpu_time.total(), step.gpu_items),
            };
            total_ns += t.as_ns();
            items += n as u64;
        }
    }
    if items == 0 {
        0.0
    } else {
        total_ns / items as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_figure4_shape() {
        // The hash-computation steps must show a large GPU advantage while
        // the pointer-chasing steps stay close (Section 5.2 / Figure 4).
        let sys = SystemSpec::coupled_a8_3870k();
        let costs = calibrate_quick(&sys, 20_000, Algorithm::partitioned_auto());
        for series in [&costs.partition, &costs.build, &costs.probe] {
            for i in 0..series.len() {
                assert!(
                    series.cpu_ns[i] > 0.0,
                    "{:?} cpu cost missing",
                    series.steps[i]
                );
                assert!(
                    series.gpu_ns[i] > 0.0,
                    "{:?} gpu cost missing",
                    series.steps[i]
                );
                if series.steps[i].is_hash_step() {
                    assert!(
                        series.gpu_speedup(i) > 8.0,
                        "{:?} should be much faster on the GPU ({}x)",
                        series.steps[i],
                        series.gpu_speedup(i)
                    );
                } else {
                    assert!(
                        series.gpu_speedup(i) < 8.0,
                        "{:?} should be comparable across devices ({}x)",
                        series.steps[i],
                        series.gpu_speedup(i)
                    );
                }
            }
        }
    }

    #[test]
    fn shj_calibration_has_empty_partition_costs() {
        let sys = SystemSpec::coupled_a8_3870k();
        let costs = calibrate_quick(&sys, 5000, Algorithm::Simple);
        assert!(costs.partition.cpu_ns.iter().all(|&c| c == 0.0));
        assert!(costs.build.cpu_ns.iter().all(|&c| c > 0.0));
        assert_eq!(costs.figure4_rows().len(), 11);
    }
}
