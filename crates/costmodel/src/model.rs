//! The abstract cost model (Eqs. 1–5 of the paper).
//!
//! Given calibrated per-step unit costs, the model predicts the elapsed time
//! of a step series for any ratio vector: each device's per-step time is its
//! unit cost times its share of the tuples; pipeline delays are charged when
//! consecutive steps use different ratios; the series costs the slower of
//! the two devices.  Lock contention is intentionally not modelled
//! (Section 5.3), which is why measured times sit slightly above the
//! estimates.

use crate::params::{JoinUnitCosts, SeriesUnitCosts};
use apu_sim::SimTime;
use hj_core::{compose_pipeline, RatioPlan, Ratios};

/// Cost model of one step series.
#[derive(Debug, Clone)]
pub struct SeriesCostModel {
    costs: SeriesUnitCosts,
}

impl SeriesCostModel {
    /// Wraps calibrated unit costs.
    pub fn new(costs: SeriesUnitCosts) -> Self {
        SeriesCostModel { costs }
    }

    /// The underlying unit costs.
    pub fn costs(&self) -> &SeriesUnitCosts {
        &self.costs
    }

    /// Number of steps in the series.
    pub fn num_steps(&self) -> usize {
        self.costs.len()
    }

    /// Estimated elapsed time of the series over `items` tuples with the
    /// given per-step CPU ratios (Eqs. 1–5).
    ///
    /// # Panics
    /// Panics if `ratios.len()` differs from the number of steps.
    pub fn estimate(&self, items: usize, ratios: &Ratios) -> SimTime {
        assert_eq!(ratios.len(), self.costs.len(), "ratio count mismatch");
        let x = items as f64;
        let cpu: Vec<SimTime> = (0..self.costs.len())
            .map(|i| SimTime::from_ns(self.costs.cpu_ns[i] * ratios.get(i) * x))
            .collect();
        let gpu: Vec<SimTime> = (0..self.costs.len())
            .map(|i| SimTime::from_ns(self.costs.gpu_ns[i] * (1.0 - ratios.get(i)) * x))
            .collect();
        compose_pipeline(&cpu, &gpu, ratios).elapsed
    }

    /// Estimated time when the whole series runs on one device.
    pub fn estimate_single_device(&self, items: usize, cpu: bool) -> SimTime {
        let ratios = if cpu {
            Ratios::cpu_only(self.costs.len())
        } else {
            Ratios::gpu_only(self.costs.len())
        };
        self.estimate(items, &ratios)
    }
}

/// Cost model of a whole hash join (partition passes + build + probe).
#[derive(Debug, Clone)]
pub struct JoinCostModel {
    /// Model of one partition pass.
    pub partition: SeriesCostModel,
    /// Model of the build phase.
    pub build: SeriesCostModel,
    /// Model of the probe phase.
    pub probe: SeriesCostModel,
}

impl JoinCostModel {
    /// Builds the join model from calibrated unit costs.
    pub fn new(costs: JoinUnitCosts) -> Self {
        JoinCostModel {
            partition: SeriesCostModel::new(costs.partition),
            build: SeriesCostModel::new(costs.build),
            probe: SeriesCostModel::new(costs.probe),
        }
    }

    /// Estimated total elapsed time of a join of `build_tuples` ⨝
    /// `probe_tuples` under a ratio plan.
    ///
    /// `partition_passes` is 0 for SHJ; for PHJ each pass partitions both
    /// relations.
    pub fn estimate_total(
        &self,
        build_tuples: usize,
        probe_tuples: usize,
        partition_passes: u32,
        plan: &RatioPlan,
    ) -> SimTime {
        let mut total = SimTime::ZERO;
        for _ in 0..partition_passes {
            total += self.partition.estimate(build_tuples, &plan.partition);
            total += self.partition.estimate(probe_tuples, &plan.partition);
        }
        total += self.build.estimate(build_tuples, &plan.build);
        total += self.probe.estimate(probe_tuples, &plan.probe);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hj_core::StepId;

    fn build_series() -> SeriesCostModel {
        // Shapes from Figure 4: the hash step is ~15x faster on the GPU, the
        // pointer-chasing steps are roughly at parity.
        SeriesCostModel::new(SeriesUnitCosts::new(
            StepId::BUILD.to_vec(),
            vec![22.0, 5.0, 10.0, 6.0],
            vec![1.5, 4.0, 9.0, 5.0],
        ))
    }

    #[test]
    fn extremes_match_single_device_sums() {
        let m = build_series();
        let n = 1_000_000;
        let cpu = m.estimate(n, &Ratios::cpu_only(4));
        let gpu = m.estimate(n, &Ratios::gpu_only(4));
        assert!((cpu.as_ns() - (22.0 + 5.0 + 10.0 + 6.0) * n as f64).abs() < 1.0);
        assert!((gpu.as_ns() - (1.5 + 4.0 + 9.0 + 5.0) * n as f64).abs() < 1.0);
        assert_eq!(cpu, m.estimate_single_device(n, true));
        assert_eq!(gpu, m.estimate_single_device(n, false));
    }

    #[test]
    fn co_processing_beats_either_device_alone() {
        let m = build_series();
        let n = 1_000_000;
        let best_single = m
            .estimate_single_device(n, true)
            .min(m.estimate_single_device(n, false));
        // Hash step on the GPU, the rest split roughly by relative speed.
        let pl = m.estimate(n, &Ratios::new(vec![0.0, 0.45, 0.5, 0.45]));
        assert!(pl < best_single, "PL {} vs best single {}", pl, best_single);
    }

    #[test]
    fn estimate_scales_linearly_with_items() {
        let m = build_series();
        let r = Ratios::uniform(0.3, 4);
        let t1 = m.estimate(100_000, &r);
        let t2 = m.estimate(200_000, &r);
        assert!((t2.as_ns() / t1.as_ns() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn join_model_includes_partition_passes() {
        let costs = JoinUnitCosts {
            partition: SeriesUnitCosts::new(
                StepId::PARTITION.to_vec(),
                vec![20.0, 4.0, 8.0],
                vec![1.5, 3.0, 7.0],
            ),
            build: SeriesUnitCosts::new(
                StepId::BUILD.to_vec(),
                vec![22.0, 5.0, 10.0, 6.0],
                vec![1.5, 4.0, 9.0, 5.0],
            ),
            probe: SeriesUnitCosts::new(
                StepId::PROBE.to_vec(),
                vec![22.0, 5.0, 10.0, 6.0],
                vec![1.5, 4.0, 9.0, 5.0],
            ),
        };
        let model = JoinCostModel::new(costs);
        let plan = RatioPlan::from_scheme(&hj_core::Scheme::data_dividing_paper()).unwrap();
        let shj = model.estimate_total(1_000_000, 1_000_000, 0, &plan);
        let phj = model.estimate_total(1_000_000, 1_000_000, 1, &plan);
        assert!(phj > shj);
    }

    #[test]
    #[should_panic]
    fn wrong_ratio_length_panics() {
        let m = build_series();
        let _ = m.estimate(10, &Ratios::uniform(0.5, 3));
    }
}
