//! Monte-Carlo evaluation of ratio choices (Figure 9).
//!
//! The paper draws one thousand random ratio settings for PL, measures each,
//! and shows the cumulative distribution of their elapsed times together
//! with the time achieved by the cost-model-chosen ratios — which lands very
//! close to the best sampled setting.  This module reproduces the sampling
//! and CDF construction over the cost model (and the experiment binary also
//! measures a sampled subset on the simulator).

use crate::model::SeriesCostModel;
use apu_sim::SimTime;
use datagen::rng::SmallRng;
use hj_core::Ratios;

/// Draws `runs` random per-step ratio settings for the series and returns
/// the model-predicted elapsed time of each, together with the sampled
/// ratio vectors.
pub fn monte_carlo_series(
    model: &SeriesCostModel,
    items: usize,
    runs: usize,
    seed: u64,
) -> Vec<(Ratios, SimTime)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = model.num_steps();
    (0..runs)
        .map(|_| {
            let ratios = Ratios::new((0..n).map(|_| rng.random_unit()).collect());
            let t = model.estimate(items, &ratios);
            (ratios, t)
        })
        .collect()
}

/// Builds CDF points `(elapsed seconds, cumulative fraction)` from a set of
/// sampled times, using `bins` equally spaced thresholds between the fastest
/// and slowest sample.
pub fn cdf_points(times: &[SimTime], bins: usize) -> Vec<(f64, f64)> {
    if times.is_empty() || bins == 0 {
        return Vec::new();
    }
    let mut secs: Vec<f64> = times.iter().map(|t| t.as_secs()).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = secs[0];
    let hi = *secs.last().unwrap();
    let width = ((hi - lo) / bins as f64).max(f64::EPSILON);
    (0..=bins)
        .map(|i| {
            let threshold = lo + width * i as f64;
            let count = secs.iter().filter(|&&s| s <= threshold + 1e-15).count();
            (threshold, count as f64 / secs.len() as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SeriesUnitCosts;
    use hj_core::StepId;

    fn model() -> SeriesCostModel {
        SeriesCostModel::new(SeriesUnitCosts::new(
            StepId::BUILD.to_vec(),
            vec![22.0, 5.0, 10.0, 6.0],
            vec![1.5, 4.0, 9.0, 5.0],
        ))
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = model();
        let a = monte_carlo_series(&m, 10_000, 50, 7);
        let b = monte_carlo_series(&m, 10_000, 50, 7);
        let c = monte_carlo_series(&m, 10_000, 50, 8);
        assert_eq!(a.len(), 50);
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x.1 == y.1));
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.1 != y.1));
    }

    #[test]
    fn model_chosen_ratios_beat_most_random_settings() {
        // The claim of Figure 9: the cost-model choice sits at the far left
        // of the Monte-Carlo CDF.
        let m = model();
        let n = 1_000_000;
        let samples = monte_carlo_series(&m, n, 1000, 42);
        let (_, chosen) = crate::optimizer::optimize_pl_ratios(&m, n, 0.02);
        let better = samples.iter().filter(|(_, t)| *t < chosen).count();
        assert!(
            better <= 10,
            "only a handful of 1000 random settings may beat the model, got {better}"
        );
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let m = model();
        let samples = monte_carlo_series(&m, 100_000, 200, 1);
        let times: Vec<SimTime> = samples.iter().map(|(_, t)| *t).collect();
        let cdf = cdf_points(&times, 20);
        assert_eq!(cdf.len(), 21);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(cdf_points(&[], 10).is_empty());
    }
}
