//! Choosing workload ratios with the cost model.
//!
//! The paper enumerates all ratio combinations at a step of δ = 0.02 and
//! keeps the best prediction (Section 3.2).  For a 4-step series that grid
//! has 51⁴ ≈ 6.8 M points, so this module uses the same idea with a cheap
//! refinement: a coarse full grid followed by per-step coordinate descent at
//! the fine δ, which reaches the same optima in a fraction of the
//! evaluations.

use crate::model::{JoinCostModel, SeriesCostModel};
use apu_sim::SimTime;
use hj_core::{Algorithm, RatioPlan, Ratios, Scheme};

/// The paper's ratio granularity δ.
pub const PAPER_DELTA: f64 = 0.02;

/// Chooses the best single (data-dividing) ratio for a series by scanning
/// `r = 0, δ, 2δ, …, 1`.
pub fn optimize_dd_ratio(model: &SeriesCostModel, items: usize, delta: f64) -> (f64, SimTime) {
    let delta = delta.clamp(1e-3, 0.5);
    let mut best = (0.0f64, SimTime::from_secs(f64::MAX / 1e9));
    let mut r = 0.0f64;
    while r <= 1.0 + 1e-9 {
        let t = model.estimate(items, &Ratios::uniform(r.min(1.0), model.num_steps()));
        if t < best.1 {
            best = (r.min(1.0), t);
        }
        r += delta;
    }
    best
}

/// Chooses the best off-loading placement (each step entirely on one device)
/// by enumerating all `2^n` assignments.
pub fn optimize_offload(model: &SeriesCostModel, items: usize) -> (Vec<bool>, SimTime) {
    let n = model.num_steps();
    let mut best: (Vec<bool>, SimTime) = (vec![false; n], SimTime::from_secs(f64::MAX / 1e9));
    for mask in 0u32..(1 << n) {
        let on_cpu: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let t = model.estimate(items, &Ratios::offload(&on_cpu));
        if t < best.1 {
            best = (on_cpu, t);
        }
    }
    best
}

/// Chooses per-step ratios for pipelined co-processing.
///
/// A full grid at a coarse δ seeds per-step coordinate descent at the fine
/// `delta` (default [`PAPER_DELTA`]); the result is the model-optimal ratio
/// vector and its predicted time.
pub fn optimize_pl_ratios(model: &SeriesCostModel, items: usize, delta: f64) -> (Ratios, SimTime) {
    let n = model.num_steps();
    let delta = delta.clamp(1e-3, 0.5);
    let coarse = 0.1f64.max(delta);

    // Coarse full grid.
    let levels: Vec<f64> = steps_between(0.0, 1.0, coarse);
    let mut best_vec = vec![0.0; n];
    let mut best_time = SimTime::from_secs(f64::MAX / 1e9);
    let mut current = vec![0usize; n];
    loop {
        let ratios = Ratios::new(current.iter().map(|&i| levels[i]).collect());
        let t = model.estimate(items, &ratios);
        if t < best_time {
            best_time = t;
            best_vec = ratios.as_slice().to_vec();
        }
        // Odometer increment over the grid.
        let mut pos = 0;
        loop {
            if pos == n {
                // Grid exhausted: refine and return.
                let (refined, time) = coordinate_descent(model, items, best_vec, delta);
                return (Ratios::new(refined), time);
            }
            current[pos] += 1;
            if current[pos] < levels.len() {
                break;
            }
            current[pos] = 0;
            pos += 1;
        }
    }
}

/// Per-step refinement at the fine δ around a seed vector.
fn coordinate_descent(
    model: &SeriesCostModel,
    items: usize,
    mut seed: Vec<f64>,
    delta: f64,
) -> (Vec<f64>, SimTime) {
    let n = seed.len();
    let levels: Vec<f64> = steps_between(0.0, 1.0, delta);
    let mut best_time = model.estimate(items, &Ratios::new(seed.clone()));
    for _round in 0..4 {
        let mut improved = false;
        for step in 0..n {
            let mut local_best = (seed[step], best_time);
            for &candidate in &levels {
                let mut trial = seed.clone();
                trial[step] = candidate;
                let t = model.estimate(items, &Ratios::new(trial));
                if t < local_best.1 {
                    local_best = (candidate, t);
                }
            }
            if local_best.1 < best_time {
                seed[step] = local_best.0;
                best_time = local_best.1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (seed, best_time)
}

fn steps_between(lo: f64, hi: f64, delta: f64) -> Vec<f64> {
    let mut v = Vec::new();
    let mut x = lo;
    while x < hi + 1e-9 {
        v.push(x.min(hi));
        x += delta;
    }
    if (v.last().copied().unwrap_or(lo) - hi).abs() > 1e-9 {
        v.push(hi);
    }
    v
}

/// The plan produced by [`tune_scheme`]: the tuned PL, DD and OL schemes
/// with their predicted times.
///
/// The plan is consumed *directly* by the engine's request builder — it
/// converts into its best-predicted [`Scheme`], so
/// `JoinRequest::builder().scheme(&tuned)` runs the cost model's
/// recommendation without manual unpacking:
///
/// ```
/// use costmodel::{calibrate_quick, tune_scheme, JoinCostModel};
/// use hj_core::{Algorithm, EngineConfig, JoinEngine, JoinRequest};
/// use apu_sim::SystemSpec;
///
/// let sys = SystemSpec::coupled_a8_3870k();
/// let costs = calibrate_quick(&sys, 2_000, Algorithm::Simple);
/// let tuned = tune_scheme(&JoinCostModel::new(costs), 2_000, 4_000, Algorithm::Simple, 0.1);
/// let request = JoinRequest::builder().scheme(&tuned).build().unwrap();
/// # let (r, s) = datagen::generate_pair(&datagen::DataGenConfig::small(2_000, 4_000));
/// # let mut engine = JoinEngine::coupled(EngineConfig::for_tuples(2_000, 4_000)).unwrap();
/// # assert!(engine.execute(&request, &r, &s).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct TunedScheme {
    /// The tuned pipelined scheme (per-step ratios for all three series).
    pub pipelined: Scheme,
    /// The tuned data-dividing scheme (one ratio per phase).
    pub data_dividing: Scheme,
    /// The tuned off-loading scheme.
    pub offload: Scheme,
    /// Predicted total time of the tuned PL scheme.
    pub predicted_pl: SimTime,
    /// Predicted total time of the tuned DD scheme.
    pub predicted_dd: SimTime,
    /// Predicted total time of the tuned OL scheme.
    pub predicted_ol: SimTime,
}

impl TunedScheme {
    /// The scheme with the smallest predicted total time.
    pub fn best(&self) -> &Scheme {
        let (mut scheme, mut time) = (&self.pipelined, self.predicted_pl);
        if self.predicted_dd < time {
            scheme = &self.data_dividing;
            time = self.predicted_dd;
        }
        if self.predicted_ol < time {
            scheme = &self.offload;
        }
        scheme
    }

    /// The predicted total time of [`best`](Self::best).
    pub fn best_predicted(&self) -> SimTime {
        self.predicted_pl
            .min(self.predicted_dd)
            .min(self.predicted_ol)
    }
}

impl From<&TunedScheme> for Scheme {
    fn from(tuned: &TunedScheme) -> Scheme {
        tuned.best().clone()
    }
}

impl From<TunedScheme> for Scheme {
    fn from(tuned: TunedScheme) -> Scheme {
        tuned.best().clone()
    }
}

/// Tunes PL, DD and OL ratio choices for a join of `build_tuples` ⨝
/// `probe_tuples` with the given calibrated model.
///
/// `algorithm` only determines whether partition passes are included in the
/// predicted totals.
pub fn tune_scheme(
    model: &JoinCostModel,
    build_tuples: usize,
    probe_tuples: usize,
    algorithm: Algorithm,
    delta: f64,
) -> TunedScheme {
    let passes = match algorithm {
        Algorithm::Simple => 0,
        Algorithm::Partitioned { passes, .. } => passes.max(1),
    };

    let (part_pl, _) = if passes > 0 {
        optimize_pl_ratios(&model.partition, build_tuples + probe_tuples, delta)
    } else {
        (Ratios::gpu_only(3), SimTime::ZERO)
    };
    let (build_pl, _) = optimize_pl_ratios(&model.build, build_tuples, delta);
    let (probe_pl, _) = optimize_pl_ratios(&model.probe, probe_tuples, delta);

    let (part_dd, _) = if passes > 0 {
        optimize_dd_ratio(&model.partition, build_tuples + probe_tuples, delta)
    } else {
        (0.0, SimTime::ZERO)
    };
    let (build_dd, _) = optimize_dd_ratio(&model.build, build_tuples, delta);
    let (probe_dd, _) = optimize_dd_ratio(&model.probe, probe_tuples, delta);

    let (part_ol, _) = optimize_offload(&model.partition, build_tuples + probe_tuples);
    let (build_ol, _) = optimize_offload(&model.build, build_tuples);
    let (probe_ol, _) = optimize_offload(&model.probe, probe_tuples);

    let pipelined = Scheme::Pipelined {
        partition: to_array3(part_pl.as_slice()),
        build: to_array4(build_pl.as_slice()),
        probe: to_array4(probe_pl.as_slice()),
    };
    let data_dividing = Scheme::DataDividing {
        partition_ratio: part_dd,
        build_ratio: build_dd,
        probe_ratio: probe_dd,
    };
    let offload = Scheme::Offload {
        partition_on_cpu: to_barray3(&part_ol),
        build_on_cpu: to_barray4(&build_ol),
        probe_on_cpu: to_barray4(&probe_ol),
    };

    let predict = |scheme: &Scheme| {
        let plan = RatioPlan::from_scheme(scheme).expect("ratio-based scheme");
        model.estimate_total(build_tuples, probe_tuples, passes, &plan)
    };
    let predicted_pl = predict(&pipelined);
    let predicted_dd = predict(&data_dividing);
    let predicted_ol = predict(&offload);

    TunedScheme {
        pipelined,
        data_dividing,
        offload,
        predicted_pl,
        predicted_dd,
        predicted_ol,
    }
}

fn to_array3(v: &[f64]) -> [f64; 3] {
    [v[0], v[1], v[2]]
}

fn to_array4(v: &[f64]) -> [f64; 4] {
    [v[0], v[1], v[2], v[3]]
}

fn to_barray3(v: &[bool]) -> [bool; 3] {
    [v[0], v[1], v[2]]
}

fn to_barray4(v: &[bool]) -> [bool; 4] {
    [v[0], v[1], v[2], v[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SeriesUnitCosts;
    use hj_core::StepId;

    fn figure4_build_model() -> SeriesCostModel {
        SeriesCostModel::new(SeriesUnitCosts::new(
            StepId::BUILD.to_vec(),
            vec![22.0, 5.0, 10.0, 6.0],
            vec![1.5, 4.0, 9.0, 5.0],
        ))
    }

    #[test]
    fn dd_ratio_lands_between_the_extremes() {
        let m = figure4_build_model();
        let (r, t) = optimize_dd_ratio(&m, 1_000_000, PAPER_DELTA);
        assert!(r > 0.0 && r < 0.6, "DD ratio {r}");
        assert!(t <= m.estimate_single_device(1_000_000, true));
        assert!(t <= m.estimate_single_device(1_000_000, false));
    }

    #[test]
    fn offload_puts_hash_step_on_gpu() {
        let m = figure4_build_model();
        let (placement, _) = optimize_offload(&m, 1_000_000);
        assert!(!placement[0], "b1 must be off-loaded to the GPU");
    }

    #[test]
    fn pl_beats_dd_and_ol_in_prediction() {
        let m = figure4_build_model();
        let n = 1_000_000;
        let (_, t_dd) = optimize_dd_ratio(&m, n, PAPER_DELTA);
        let (_, t_ol) = optimize_offload(&m, n);
        let (ratios, t_pl) = optimize_pl_ratios(&m, n, PAPER_DELTA);
        assert!(t_pl <= t_dd, "PL {} vs DD {}", t_pl, t_dd);
        assert!(t_pl <= t_ol, "PL {} vs OL {}", t_pl, t_ol);
        // The hash step should be (almost) entirely on the GPU.
        assert!(ratios.get(0) <= 0.1, "b1 ratio {}", ratios.get(0));
    }

    #[test]
    fn pl_grid_is_near_exhaustive_optimum_on_small_grid() {
        // With a coarse delta we can verify the optimiser against brute force.
        let m = figure4_build_model();
        let n = 100_000;
        let delta = 0.25;
        let levels = [0.0, 0.25, 0.5, 0.75, 1.0];
        let mut brute = SimTime::from_secs(1e18);
        for a in levels {
            for b in levels {
                for c in levels {
                    for d in levels {
                        let t = m.estimate(n, &Ratios::new(vec![a, b, c, d]));
                        brute = brute.min(t);
                    }
                }
            }
        }
        let (_, ours) = optimize_pl_ratios(&m, n, delta);
        assert!(ours.as_ns() <= brute.as_ns() * 1.001);
    }

    #[test]
    fn tune_scheme_produces_consistent_predictions() {
        let costs = crate::params::JoinUnitCosts {
            partition: SeriesUnitCosts::new(
                StepId::PARTITION.to_vec(),
                vec![20.0, 4.0, 8.0],
                vec![1.5, 3.0, 7.0],
            ),
            build: SeriesUnitCosts::new(
                StepId::BUILD.to_vec(),
                vec![22.0, 5.0, 10.0, 6.0],
                vec![1.5, 4.0, 9.0, 5.0],
            ),
            probe: SeriesUnitCosts::new(
                StepId::PROBE.to_vec(),
                vec![23.0, 5.0, 9.0, 6.0],
                vec![1.4, 4.0, 8.5, 5.0],
            ),
        };
        let model = JoinCostModel::new(costs);
        let tuned = tune_scheme(
            &model,
            500_000,
            1_000_000,
            Algorithm::partitioned_auto(),
            0.05,
        );
        assert!(tuned.predicted_pl <= tuned.predicted_dd);
        assert!(tuned.predicted_pl <= tuned.predicted_ol);
        assert!(matches!(tuned.pipelined, Scheme::Pipelined { .. }));
        assert!(matches!(tuned.data_dividing, Scheme::DataDividing { .. }));
        assert!(matches!(tuned.offload, Scheme::Offload { .. }));
        // PL has the best prediction, so the plan converts into it.
        assert_eq!(tuned.best(), &tuned.pipelined);
        assert_eq!(tuned.best_predicted(), tuned.predicted_pl);
        assert_eq!(Scheme::from(&tuned), tuned.pipelined);
    }

    #[test]
    fn steps_between_includes_endpoints() {
        let v = steps_between(0.0, 1.0, 0.25);
        assert_eq!(v.first().copied(), Some(0.0));
        assert_eq!(v.last().copied(), Some(1.0));
        assert_eq!(v.len(), 5);
    }
}
