//! The engine-wide metrics registry: counters, gauges and log2 histograms
//! registered once under static names, updated via atomics on hot paths,
//! and rendered as a Prometheus text-format snapshot for wire exposition.
//!
//! Registration takes the registry lock (class `metrics.registry`); updates
//! never do — callers keep the returned [`Counter`]/[`Gauge`]/
//! [`AtomicHistogram`] handle and touch only its atomics.  Snapshot and
//! render also take the lock, but only to walk the entry list; the values
//! themselves are relaxed atomic loads, so a snapshot never stalls a join.
//!
//! Metric names must be `'static` string literals at every call site — the
//! `metrics-name-literal` hj-lint rule enforces this so the name catalogue
//! in `docs/OBSERVABILITY.md` stays greppable.
//
// The registry itself necessarily forwards `name` variables between its
// own registration methods:
// hj-lint: allow-file(metrics-name-literal)

use crate::histogram::{LatencyHistogram, HISTOGRAM_BUCKETS};
use hj_analysis::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter; cloned handles share one value.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge; cloned handles share one value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is larger (monotonic high-water mark).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log2 latency histogram: the atomic twin of
/// [`LatencyHistogram`], recorded into concurrently and snapshotted into
/// the plain type for rendering.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl AtomicHistogram {
    /// Records one duration, same bucketing as
    /// [`LatencyHistogram::record`].
    pub fn record(&self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-data snapshot of the current bucket counters.
    pub fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram::from_buckets(std::array::from_fn(|i| {
            self.buckets[i].load(Ordering::Relaxed)
        }))
    }
}

/// The value of one registered metric, captured by
/// [`MetricsRegistry::snapshot`].
// Snapshots hold a handful of samples on a cold path; boxing the
// histogram buckets would cost an allocation per sample for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(u64),
    /// An [`AtomicHistogram`] reading.
    Histogram(LatencyHistogram),
}

/// One metric in a [`MetricsRegistry::snapshot`]: name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The registered metric name (a static literal at the register site).
    pub name: &'static str,
    /// `(key, value)` label pairs, possibly empty.
    pub labels: Vec<(&'static str, String)>,
    /// One-line help text from the register site.
    pub help: &'static str,
    /// The captured value.
    pub value: MetricValue,
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    help: &'static str,
    handle: Handle,
}

/// The registry: a locked list of registered metrics whose values live in
/// shared atomics.  Register once, update lock-free, snapshot on demand.
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.entries.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            entries: Mutex::new("metrics.registry", Vec::new()),
        }
    }

    fn register(
        &self,
        name: &'static str,
        labels: &[(&'static str, String)],
        help: &'static str,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut entries = self.entries.lock();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            let handle = match &e.handle {
                Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
                Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
                Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
            };
            let fresh = make();
            assert!(
                handle.kind() == fresh.kind(),
                "metric {name} re-registered as a {} but already is a {}",
                fresh.kind(),
                handle.kind()
            );
            return handle;
        }
        let handle = make();
        let shared = match &handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
        };
        entries.push(Entry {
            name,
            labels: labels.to_vec(),
            help,
            handle: shared,
        });
        handle
    }

    /// Registers (or re-attaches to) an unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Registers (or re-attaches to) a labelled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, String)],
        help: &'static str,
    ) -> Arc<Counter> {
        match self.register(name, labels, help, || {
            Handle::Counter(Arc::new(Counter::default()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Registers (or re-attaches to) an unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or re-attaches to) a labelled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, String)],
        help: &'static str,
    ) -> Arc<Gauge> {
        match self.register(name, labels, help, || {
            Handle::Gauge(Arc::new(Gauge::default()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Registers (or re-attaches to) an unlabelled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<AtomicHistogram> {
        self.histogram_with(name, &[], help)
    }

    /// Registers (or re-attaches to) a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, String)],
        help: &'static str,
    ) -> Arc<AtomicHistogram> {
        match self.register(name, labels, help, || {
            Handle::Histogram(Arc::new(AtomicHistogram::default()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Plain-data readings of every registered metric, in registration
    /// order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let entries = self.entries.lock();
        entries
            .iter()
            .map(|e| MetricSample {
                name: e.name,
                labels: e.labels.clone(),
                help: e.help,
                value: match &e.handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format: `# HELP` / `# TYPE` headers once per name, then one sample
    /// line per label set (histograms expand to `_bucket`/`_sum`/`_count`
    /// families via [`LatencyHistogram::render`]).
    pub fn render_prometheus(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        let mut last_name = "";
        for sample in &snapshot {
            if sample.name != last_name {
                let kind = match &sample.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", sample.name, sample.help));
                out.push_str(&format!("# TYPE {} {kind}\n", sample.name));
                last_name = sample.name;
            }
            let label_refs: Vec<(&str, &str)> = sample
                .labels
                .iter()
                .map(|(k, v)| (*k, v.as_str()))
                .collect();
            match &sample.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let braces = if label_refs.is_empty() {
                        String::new()
                    } else {
                        let inner: Vec<String> = label_refs
                            .iter()
                            .map(|(k, v)| {
                                format!("{k}=\"{}\"", crate::histogram::escape_label_value(v))
                            })
                            .collect();
                        format!("{{{}}}", inner.join(","))
                    };
                    out.push_str(&format!("{}{braces} {v}\n", sample.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&h.render(sample.name, &label_refs));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hj_test_total", "a test counter");
        let b = reg.counter("hj_test_total", "a test counter");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().len(), 1);
        match &reg.snapshot()[0].value {
            MetricValue::Counter(v) => assert_eq!(*v, 4),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn labels_distinguish_series() {
        let reg = MetricsRegistry::new();
        let w0 = reg.counter_with(
            "hj_worker_tasks_total",
            &[("worker", "0".to_string())],
            "per-worker tasks",
        );
        let w1 = reg.counter_with(
            "hj_worker_tasks_total",
            &[("worker", "1".to_string())],
            "per-worker tasks",
        );
        w0.add(2);
        w1.add(5);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].value, MetricValue::Counter(2));
        assert_eq!(snap[1].value, MetricValue::Counter(5));
        let text = reg.render_prometheus();
        assert!(text.contains("hj_worker_tasks_total{worker=\"0\"} 2\n"));
        assert!(text.contains("hj_worker_tasks_total{worker=\"1\"} 5\n"));
        // One HELP/TYPE header for the shared name.
        assert_eq!(text.matches("# TYPE hj_worker_tasks_total").count(), 1);
    }

    #[test]
    fn hostile_label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        let c = reg.counter_with(
            "hj_test_total",
            &[("table", "a\\b\"c\nd".to_string())],
            "counter with a hostile label value",
        );
        c.inc();
        let text = reg.render_prometheus();
        // Backslash -> \\, quote -> \", newline -> the two characters \n.
        assert!(
            text.contains("hj_test_total{table=\"a\\\\b\\\"c\\nd\"} 1\n"),
            "unescaped exposition: {text:?}"
        );
        // No raw newline may survive inside a sample line: every line must
        // end in a value, i.e. parse as `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line shape");
            assert!(value.parse::<f64>().is_ok(), "broken line {line:?}");
        }
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("hj_test_total", "a counter");
        let _g = reg.gauge("hj_test_total", "now a gauge");
    }

    #[test]
    fn gauges_set_and_raise() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("hj_test_gauge", "a gauge");
        g.set(7);
        g.raise(3); // lower: no-op
        assert_eq!(g.get(), 7);
        g.raise(11);
        assert_eq!(g.get(), 11);
        assert!(reg.render_prometheus().contains("hj_test_gauge 11\n"));
    }

    #[test]
    fn histograms_snapshot_to_plain_data() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("hj_test_ns", "a histogram");
        h.record(1_000);
        h.record(2_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert!(snap.quantile_ns(1.0).unwrap() >= 2_000_000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE hj_test_ns histogram"));
        assert!(text.contains("hj_test_ns_count 2\n"));
    }

    #[test]
    fn concurrent_updates_never_lock() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let c = reg.counter("hj_test_total", "contended counter");
        let h = reg.histogram("hj_test_ns", "contended histogram");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1_000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4_000);
        assert_eq!(h.snapshot().count(), 4_000);
    }
}
