//! One tiny fixed-bucket latency histogram: log2 nanosecond buckets, cheap
//! to record into, percentile-extractable, `Copy` so stats snapshots stay
//! plain data.
//!
//! The engine (`EngineStats::queue_wait`, cache-build latency), the serving
//! layer (wire-level request latency) and the bench harness all record into
//! this one type, so percentile arithmetic and bucket layout cannot drift
//! between layers.  Bucket `i` covers durations below `2^i` ns (the last
//! bucket is open-ended), so the whole range from sub-microsecond to
//! ~9 minutes fits in 40 counters and a percentile is never off by more
//! than a factor of two — plenty for p50/p99/p999 trend gates.

use std::time::Duration;

/// Number of log2 buckets; `2^39` ns ≈ 9.2 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and a literal newline become `\\`, `\"` and
/// `\n`.  Label *names* and metric names are static literals enforced by
/// hj-lint, so only values need escaping.
pub(crate) fn escape_label_value(v: &str) -> std::borrow::Cow<'_, str> {
    if !v.contains(['\\', '"', '\n']) {
        return std::borrow::Cow::Borrowed(v);
    }
    let mut out = String::with_capacity(v.len() + 2);
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// A log2-bucketed duration histogram (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// A histogram rebuilt from raw bucket counters (the inverse of
    /// [`buckets`](Self::buckets)); the sample count is the bucket sum.
    pub fn from_buckets(buckets: [u64; HISTOGRAM_BUCKETS]) -> Self {
        let count = buckets.iter().sum();
        LatencyHistogram { buckets, count }
    }

    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// The raw bucket counters; bucket `i` counts durations in
    /// `[2^(i-1), 2^i)` ns (bucket 0: `[0, 1]` ns, the last bucket is
    /// open-ended).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// The bucket-wise difference `self - earlier`, saturating at zero:
    /// the observations recorded *between* two snapshots of one growing
    /// histogram.  The windowed-rate derivation uses this to turn lifetime
    /// queue-wait histograms into per-window quantiles.
    pub fn delta_since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        LatencyHistogram::from_buckets(std::array::from_fn(|i| {
            self.buckets[i].saturating_sub(earlier.buckets[i])
        }))
    }

    /// An upper bound (ns) on the `q`-quantile (`q` in `[0, 1]`), `None`
    /// while the histogram is empty.  Accurate to its bucket's factor-of-two
    /// width.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank is 1-based and rounded up: q = 1.0 returns the bucket of
        // the largest recorded sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(1u64 << i);
            }
        }
        unreachable!("count > 0 but no bucket reached the rank");
    }

    /// [`quantile_ns`](Self::quantile_ns) as a [`Duration`], `None` while
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.quantile_ns(q).map(Duration::from_nanos)
    }

    /// [`quantile_ns`](Self::quantile_ns) in fractional milliseconds.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.quantile_ns(q).map(|ns| ns as f64 / 1e6)
    }

    /// Renders the histogram in Prometheus text exposition format:
    /// cumulative `<name>_bucket{le="..."}` lines (bucket bounds in
    /// nanoseconds), then `<name>_sum` and `<name>_count`.
    ///
    /// `labels` are `(key, value)` pairs prepended inside every brace set.
    /// The `_sum` line is an upper-bound estimate (each sample counted at
    /// its bucket's upper bound), consistent with the factor-of-two
    /// accuracy of the whole histogram.
    pub fn render(&self, name: &str, labels: &[(&str, &str)]) -> String {
        let prefix: String = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\",", escape_label_value(v)))
            .collect();
        let plain = if labels.is_empty() {
            String::new()
        } else {
            let inner: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        };
        let mut out = String::new();
        let mut cumulative = 0u64;
        let mut sum_estimate = 0u128;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            sum_estimate += n as u128 * (1u128 << i);
            // Only emit buckets that move the cumulative count, plus the
            // mandatory +Inf line below, to keep the exposition compact.
            if n > 0 {
                out.push_str(&format!(
                    "{name}_bucket{{{prefix}le=\"{}\"}} {cumulative}\n",
                    1u64 << i
                ));
            }
        }
        out.push_str(&format!(
            "{name}_bucket{{{prefix}le=\"+Inf\"}} {}\n",
            self.count
        ));
        out.push_str(&format!("{name}_sum{plain} {sum_estimate}\n"));
        out.push_str(&format!("{name}_count{plain} {}\n", self.count));
        out
    }
}

/// The exact `q`-quantile of a sample set (`q` in `[0, 1]`), `None` when
/// empty.  Sorts `samples` in place and picks the ceil-rank element — the
/// same 1-based convention as [`LatencyHistogram::quantile_ns`], so the
/// bench harness and the histogram report the same statistic.
pub fn exact_quantile(samples: &mut [f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
    Some(samples[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_bound_the_recorded_values() {
        let mut h = LatencyHistogram::new();
        for ns in [100, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5).unwrap();
        assert!((200..=512).contains(&p50), "p50 bound {p50}");
        let p100 = h.quantile_ns(1.0).unwrap();
        assert!(
            p100 >= 100_000,
            "max bound {p100} must cover the largest sample"
        );
        // Every quantile bound is within 2x of a recorded value.
        assert!(p100 <= 2 * 131_072);
    }

    #[test]
    fn zero_and_huge_values_land_in_terminal_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert!(h.quantile_ns(1.0).unwrap() >= 1u64 << 39);
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let mut earlier = LatencyHistogram::new();
        earlier.record(1_000);
        let mut later = earlier;
        later.record(1_000);
        later.record(2_000_000);
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.count(), 2);
        assert!(delta.quantile_ns(1.0).unwrap() >= 2_000_000);
        // Reversed pair saturates to empty instead of wrapping.
        assert_eq!(earlier.delta_since(&later).count(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1_000);
        b.record(1_000);
        b.record(2_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile_ns(1.0).unwrap() >= 2_000_000);
    }

    #[test]
    fn quantile_ms_converts() {
        let mut h = LatencyHistogram::new();
        h.record(4_000_000); // 4 ms -> bucket bound 2^22 ns ≈ 4.19 ms
        let ms = h.quantile_ms(0.99).unwrap();
        assert!(ms > 3.9 && ms < 8.5, "{ms}");
        let d = h.quantile(0.99).unwrap();
        assert_eq!(d.as_nanos() as u64, h.quantile_ns(0.99).unwrap());
    }

    #[test]
    fn from_buckets_round_trips() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.record(5_000);
        let rebuilt = LatencyHistogram::from_buckets(*h.buckets());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn render_is_cumulative_and_labelled() {
        let mut h = LatencyHistogram::new();
        h.record(3); // bucket 2, bound 4
        h.record(1_000); // bucket 10, bound 1024
        let text = h.render("hj_test_ns", &[("worker", "3")]);
        assert!(text.contains("hj_test_ns_bucket{worker=\"3\",le=\"4\"} 1\n"));
        assert!(text.contains("hj_test_ns_bucket{worker=\"3\",le=\"1024\"} 2\n"));
        assert!(text.contains("hj_test_ns_bucket{worker=\"3\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("hj_test_ns_count{worker=\"3\"} 2\n"));
        // Unlabelled render has no empty brace sets on _sum/_count.
        let plain = h.render("hj_test_ns", &[]);
        assert!(plain.contains("hj_test_ns_count 2\n"));
        assert!(plain.contains("hj_test_ns_bucket{le=\"+Inf\"} 2\n"));
    }

    #[test]
    fn render_escapes_hostile_label_values() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        let text = h.render("hj_test_ns", &[("table", "a\\b\"c\nd")]);
        assert!(
            text.contains("hj_test_ns_bucket{table=\"a\\\\b\\\"c\\nd\",le=\"+Inf\"} 1\n"),
            "unescaped bucket line: {text:?}"
        );
        assert!(
            text.contains("hj_test_ns_count{table=\"a\\\\b\\\"c\\nd\"} 1\n"),
            "unescaped count line: {text:?}"
        );
    }

    #[test]
    fn exact_quantile_matches_hand_derivation() {
        assert_eq!(exact_quantile(&mut [], 0.5), None);
        let mut one = [7.0];
        assert_eq!(exact_quantile(&mut one, 0.5), Some(7.0));
        let mut samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(exact_quantile(&mut samples, 0.5), Some(3.0));
        assert_eq!(exact_quantile(&mut samples, 1.0), Some(5.0));
        assert_eq!(exact_quantile(&mut samples, 0.0), Some(1.0));
        // p99 of 100 evenly spaced samples is the 99th element.
        let mut hundred: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(exact_quantile(&mut hundred, 0.99), Some(99.0));
    }
}
