//! Continuous self-monitoring: a bounded, drop-oldest ring of timestamped
//! registry snapshots ([`TimeSeriesRing`]) plus windowed delta/rate
//! derivation ([`WindowRates`]).
//!
//! The engine's background sampler pushes one [`TimePoint`] per
//! `sample_interval`; the ring holds the most recent `capacity` points and
//! silently drops the oldest on overflow, so sampling never blocks and
//! memory stays bounded.  Rates are derived by diffing two points: every
//! monotonic counter family is summed across its label sets at each end of
//! the window and the delta is divided by the wall-clock span.
//!
//! The ring stores plain [`MetricSample`]s, so it works for *any* registry;
//! the typed [`WindowRates`] derivation reads the engine's well-known
//! metric names (the catalogue in `docs/OBSERVABILITY.md`) and simply
//! reports zero for families that are not registered.

use crate::histogram::LatencyHistogram;
use crate::registry::{MetricSample, MetricValue};
use hj_analysis::sync::Mutex;
use std::collections::VecDeque;

/// One timestamped snapshot of a metrics registry.
#[derive(Debug, Clone)]
pub struct TimePoint {
    /// When the snapshot was taken, in monotonic nanoseconds on the
    /// engine's trace timescale.
    pub at_ns: u64,
    /// The registry's samples at that instant, in registration order.
    pub samples: Vec<MetricSample>,
}

/// A bounded, drop-oldest ring of [`TimePoint`]s (lock class
/// `timeseries.ring`).  Push never blocks beyond the short ring lock and
/// never allocates past the fixed capacity.
#[derive(Debug)]
pub struct TimeSeriesRing {
    ring: Mutex<VecDeque<TimePoint>>,
    capacity: usize,
}

impl TimeSeriesRing {
    /// A ring holding at most `capacity` points (clamped to at least 2 —
    /// one point derives no rates).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        TimeSeriesRing {
            ring: Mutex::new("timeseries.ring", VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Points currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one point, dropping the oldest when the ring is full.
    pub fn push(&self, point: TimePoint) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(point);
    }

    /// A copy of the buffered points, oldest first.
    pub fn snapshot(&self) -> Vec<TimePoint> {
        self.ring.lock().iter().cloned().collect()
    }

    /// The timestamp of the newest point, if any.
    pub fn latest_at_ns(&self) -> Option<u64> {
        self.ring.lock().back().map(|p| p.at_ns)
    }

    /// Rates derived over the window spanned by the newest `points` points
    /// (clamped to what the ring holds).  `None` until the ring has two
    /// points spanning nonzero time.
    pub fn rates_over_last(&self, points: usize) -> Option<WindowRates> {
        let ring = self.ring.lock();
        if ring.len() < 2 {
            return None;
        }
        let first = ring.len().saturating_sub(points.max(2));
        WindowRates::between(&ring[first], ring.back().expect("len >= 2"))
    }

    /// Rates derived over the whole buffered window.
    pub fn window_rates(&self) -> Option<WindowRates> {
        self.rates_over_last(usize::MAX)
    }
}

/// Sums one counter/gauge family across all its label sets in a snapshot
/// (0 when the family is not registered).
pub fn family_total(samples: &[MetricSample], name: &str) -> u64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match &s.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(_) => 0,
        })
        .sum()
}

/// Merges one histogram family across all its label sets in a snapshot
/// (empty when the family is not registered).
pub fn family_histogram(samples: &[MetricSample], name: &str) -> LatencyHistogram {
    let mut merged = LatencyHistogram::new();
    for sample in samples.iter().filter(|s| s.name == name) {
        if let MetricValue::Histogram(h) = &sample.value {
            merged.merge(h);
        }
    }
    merged
}

/// Rates and ratios derived from two [`TimePoint`]s of one registry.
///
/// All `*_per_sec` fields are deltas of monotonic families divided by the
/// window's wall-clock span; ratios are delta-over-delta within the same
/// window, `None` when the window saw no relevant traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRates {
    /// Wall-clock span of the window in seconds (always positive).
    pub span_secs: f64,
    /// Joins completed per second (`hj_engine_requests_served_total`).
    pub joins_per_sec: f64,
    /// Requests shed per second: engine saturation rejections
    /// (`hj_engine_rejected_saturated_total`) plus serving-layer sheds
    /// (`hj_server_sheds_total`, all reasons).
    pub sheds_per_sec: f64,
    /// Shed fraction of the window's admission decisions:
    /// `sheds / (joins + sheds)`, 0 when the window saw no traffic.
    pub shed_ratio: f64,
    /// Bytes spilled to disk per second (`hj_spill_bytes_spilled_total`).
    pub spill_bytes_per_sec: f64,
    /// Bytes evicted under broker reclaim pressure per second
    /// (`hj_spill_reclaimed_bytes_total`).
    pub reclaim_bytes_per_sec: f64,
    /// Cache hits over hits+misses within the window, `None` when the
    /// window saw no cache lookups.
    pub cache_hit_ratio: Option<f64>,
    /// Busy fraction of the worker pool within the window —
    /// `Δbusy / (Δbusy + Δpark)` over `hj_pipeline_worker_busy_ns` /
    /// `_park_ns` — `None` while the pool reported no wall time.
    pub worker_utilization: Option<f64>,
    /// Queue-wait observations recorded *within* the window (the
    /// bucket-wise delta of `hj_engine_queue_wait_ns`); quantiles of this
    /// histogram are windowed, not lifetime.
    pub queue_wait: LatencyHistogram,
}

impl WindowRates {
    /// Derives the rates between two snapshots of one registry, `None`
    /// when the pair spans no time (or is reversed).
    pub fn between(first: &TimePoint, last: &TimePoint) -> Option<WindowRates> {
        if last.at_ns <= first.at_ns {
            return None;
        }
        let span_secs = (last.at_ns - first.at_ns) as f64 / 1e9;
        let delta = |name: &str| {
            family_total(&last.samples, name).saturating_sub(family_total(&first.samples, name))
        };
        let joins = delta("hj_engine_requests_served_total");
        let sheds = delta("hj_engine_rejected_saturated_total") + delta("hj_server_sheds_total");
        let hits = delta("hj_cache_hits_total");
        let misses = delta("hj_cache_misses_total");
        let busy = delta("hj_pipeline_worker_busy_ns");
        let park = delta("hj_pipeline_worker_park_ns");
        let queue_wait = family_histogram(&last.samples, "hj_engine_queue_wait_ns")
            .delta_since(&family_histogram(&first.samples, "hj_engine_queue_wait_ns"));
        Some(WindowRates {
            span_secs,
            joins_per_sec: joins as f64 / span_secs,
            sheds_per_sec: sheds as f64 / span_secs,
            shed_ratio: if joins + sheds > 0 {
                sheds as f64 / (joins + sheds) as f64
            } else {
                0.0
            },
            spill_bytes_per_sec: delta("hj_spill_bytes_spilled_total") as f64 / span_secs,
            reclaim_bytes_per_sec: delta("hj_spill_reclaimed_bytes_total") as f64 / span_secs,
            cache_hit_ratio: (hits + misses > 0).then(|| hits as f64 / (hits + misses) as f64),
            worker_utilization: (busy + park > 0).then(|| busy as f64 / (busy + park) as f64),
            queue_wait,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn point(at_ns: u64, reg: &MetricsRegistry) -> TimePoint {
        TimePoint {
            at_ns,
            samples: reg.snapshot(),
        }
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let ring = TimeSeriesRing::new(3);
        assert_eq!(ring.capacity(), 3);
        for i in 0..5u64 {
            ring.push(TimePoint {
                at_ns: i,
                samples: Vec::new(),
            });
        }
        assert_eq!(ring.len(), 3);
        let points = ring.snapshot();
        assert_eq!(points.first().unwrap().at_ns, 2, "oldest dropped first");
        assert_eq!(ring.latest_at_ns(), Some(4));
    }

    #[test]
    fn capacity_is_clamped_to_two() {
        assert_eq!(TimeSeriesRing::new(0).capacity(), 2);
    }

    #[test]
    fn rates_need_two_points_and_nonzero_span() {
        let ring = TimeSeriesRing::new(4);
        assert!(ring.window_rates().is_none());
        ring.push(TimePoint {
            at_ns: 5,
            samples: Vec::new(),
        });
        assert!(ring.window_rates().is_none());
        ring.push(TimePoint {
            at_ns: 5,
            samples: Vec::new(),
        });
        assert!(ring.window_rates().is_none(), "zero span derives nothing");
    }

    #[test]
    fn window_rates_diff_counters_across_label_sets() {
        let reg = MetricsRegistry::new();
        let served = reg.counter("hj_engine_requests_served_total", "served");
        let shed_a = reg.counter_with(
            "hj_server_sheds_total",
            &[("reason", "quota".to_string())],
            "sheds",
        );
        let shed_b = reg.counter_with(
            "hj_server_sheds_total",
            &[("reason", "deadline".to_string())],
            "sheds",
        );
        let spilled = reg.counter("hj_spill_bytes_spilled_total", "spill bytes");
        let hits = reg.counter("hj_cache_hits_total", "hits");
        let misses = reg.counter("hj_cache_misses_total", "misses");
        let ring = TimeSeriesRing::new(8);
        served.add(10);
        ring.push(point(0, &reg));
        served.add(20); // 20 joins over the window
        shed_a.add(3);
        shed_b.add(2); // 5 sheds over the window
        spilled.add(4_000_000_000);
        hits.add(3);
        misses.add(1);
        ring.push(point(2_000_000_000, &reg)); // 2 s window
        let rates = ring.window_rates().expect("two points, 2 s apart");
        assert!((rates.span_secs - 2.0).abs() < 1e-9);
        assert!((rates.joins_per_sec - 10.0).abs() < 1e-9);
        assert!((rates.sheds_per_sec - 2.5).abs() < 1e-9);
        assert!((rates.shed_ratio - 5.0 / 25.0).abs() < 1e-9);
        assert!((rates.spill_bytes_per_sec - 2e9).abs() < 1e-3);
        assert_eq!(rates.cache_hit_ratio, Some(0.75));
        assert_eq!(rates.worker_utilization, None, "no busy/park gauges");
    }

    #[test]
    fn utilization_and_queue_wait_are_windowed() {
        let reg = MetricsRegistry::new();
        let busy = reg.gauge_with(
            "hj_pipeline_worker_busy_ns",
            &[("worker", "0".to_string())],
            "busy",
        );
        let park = reg.gauge_with(
            "hj_pipeline_worker_park_ns",
            &[("worker", "0".to_string())],
            "park",
        );
        let wait = reg.histogram("hj_engine_queue_wait_ns", "queue wait");
        wait.record(100);
        let ring = TimeSeriesRing::new(8);
        busy.set(1_000);
        park.set(3_000);
        ring.push(point(0, &reg));
        busy.set(4_000); // +3000 busy
        park.set(4_000); // +1000 parked
        wait.record(1 << 20); // only this lands inside the window
        ring.push(point(1_000_000_000, &reg));
        let rates = ring.window_rates().expect("rates");
        assert_eq!(rates.worker_utilization, Some(0.75));
        assert_eq!(rates.queue_wait.count(), 1, "lifetime sample excluded");
        assert!(rates.queue_wait.quantile_ns(1.0).unwrap() >= 1 << 20);
    }

    #[test]
    fn rates_over_last_clamps_to_ring_contents() {
        let reg = MetricsRegistry::new();
        let served = reg.counter("hj_engine_requests_served_total", "served");
        let ring = TimeSeriesRing::new(8);
        for i in 0..4u64 {
            served.add(10);
            ring.push(point(i * 1_000_000_000, &reg));
        }
        // Last 2 points: one 10-join step over 1 s.
        let short = ring.rates_over_last(2).expect("short window");
        assert!((short.joins_per_sec - 10.0).abs() < 1e-9);
        // Clamped: asking for more points than buffered uses the whole ring.
        let all = ring.rates_over_last(100).expect("full window");
        assert!((all.span_secs - 3.0).abs() < 1e-9);
    }
}
