//! Structured tracing: typed events with span IDs and monotonic
//! timestamps, a bounded per-engine ring buffer, and the per-join
//! flight-recorder tree ([`JoinTrace`]) returned to callers that opt in.
//!
//! The ring ([`TraceBuffer`]) is deliberately lossy: when full it drops
//! the **oldest** event and counts the drop, so a worker never blocks on
//! observability.  The `trace-off` cargo feature compiles [`TraceBuffer::
//! push`](TraceBuffer::push) down to a no-op for deployments that want
//! provably zero trace overhead.

use hj_analysis::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What kind of thing a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened (`label` names it; `value` is the parent span, 0 for
    /// roots).
    SpanStart,
    /// A span closed (`value` is its duration in ns).
    SpanEnd,
    /// A join phase finished (`label` is the phase, `value` its simulated
    /// nanoseconds).
    Phase,
    /// A pipeline step finished (`label` is the step, `value` its
    /// simulated nanoseconds).
    Step,
    /// A spill-path decision (`label` says what, `value` is bytes).
    Spill,
    /// A hash-table-cache lookup (`label` is hit/miss/evict, `value` is
    /// detail such as saved build ns).
    Cache,
    /// An admission verdict (`label` is admitted/shed reason, `value` is
    /// detail such as estimated queue ns).
    Admission,
    /// An adaptive re-plan (`label` is the series, `value` the re-plan
    /// count so far).
    Replan,
    /// A free-form marker.
    Mark,
}

impl TraceEventKind {
    /// All kinds, in wire-code order.
    pub const ALL: [TraceEventKind; 9] = [
        TraceEventKind::SpanStart,
        TraceEventKind::SpanEnd,
        TraceEventKind::Phase,
        TraceEventKind::Step,
        TraceEventKind::Spill,
        TraceEventKind::Cache,
        TraceEventKind::Admission,
        TraceEventKind::Replan,
        TraceEventKind::Mark,
    ];

    /// A stable lower-case name (used in renders and docs).
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::SpanStart => "span-start",
            TraceEventKind::SpanEnd => "span-end",
            TraceEventKind::Phase => "phase",
            TraceEventKind::Step => "step",
            TraceEventKind::Spill => "spill",
            TraceEventKind::Cache => "cache",
            TraceEventKind::Admission => "admission",
            TraceEventKind::Replan => "replan",
            TraceEventKind::Mark => "mark",
        }
    }

    /// The wire tag of this kind.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The kind for a wire tag, `None` for unknown tags.
    pub fn from_code(code: u8) -> Option<Self> {
        TraceEventKind::ALL.get(code as usize).copied()
    }
}

/// One typed event in the engine-wide ring: which span, when (monotonic ns
/// since the buffer's epoch), what, and one numeric detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span this event belongs to (an ID from
    /// [`TraceBuffer::next_span`]).
    pub span: u64,
    /// Monotonic nanoseconds since the owning buffer was created.
    pub at_ns: u64,
    /// What kind of event.
    pub kind: TraceEventKind,
    /// A static label (phase/step/decision name).
    pub label: &'static str,
    /// One numeric detail; meaning depends on `kind`.
    pub value: u64,
}

/// A bounded, drop-oldest ring of [`TraceEvent`]s shared by every join on
/// one engine.  Pushing never blocks beyond the short ring lock (class
/// `trace.ring`), never allocates past the fixed capacity, and when the
/// `trace-off` feature is enabled it compiles to nothing.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
    next_span: AtomicU64,
    epoch: Instant,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` events (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            ring: Mutex::new("trace.ring", VecDeque::with_capacity(capacity)),
            capacity,
            dropped: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    /// Whether tracing is compiled in (`false` under the `trace-off`
    /// feature).
    pub const fn is_enabled() -> bool {
        cfg!(not(feature = "trace-off"))
    }

    /// A fresh span ID (never 0; 0 means "no parent").
    pub fn next_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Monotonic nanoseconds since this buffer was created — the timescale
    /// of every [`TraceEvent::at_ns`].
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Appends one event, dropping the oldest (and counting the drop) when
    /// the ring is full.
    #[cfg(not(feature = "trace-off"))]
    pub fn push(&self, event: TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Tracing is compiled out (`trace-off`): events vanish for free.
    #[cfg(feature = "trace-off")]
    pub fn push(&self, _event: TraceEvent) {}

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped (oldest-first) since creation.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring.lock().iter().copied().collect()
    }
}

/// One timed span of a [`JoinTrace`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// This span's ID (unique within the trace).
    pub id: u64,
    /// The parent span's ID; 0 for the root.
    pub parent: u64,
    /// What the span covers ("join", "build", "probe", ...).
    pub label: String,
    /// Start, in ns on the engine trace buffer's monotonic timescale.
    pub start_ns: u64,
    /// The span's duration in ns (simulated time for phase spans, wall
    /// clock for the root).
    pub duration_ns: u64,
}

/// One recorded event of a [`JoinTrace`] (an owned twin of
/// [`TraceEvent`], so traces survive the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// The span the event belongs to.
    pub span: u64,
    /// When, in ns on the trace's timescale.
    pub at_ns: u64,
    /// What kind of event.
    pub kind: TraceEventKind,
    /// The event label (phase/step/decision name).
    pub label: String,
    /// One numeric detail; meaning depends on `kind`.
    pub value: u64,
}

/// The per-join flight recorder: an EXPLAIN-ANALYZE-style tree of spans
/// (phases, steps) plus the typed events the join emitted, returned in
/// the engine's `JoinOutcome::trace` when the request opted in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinTrace {
    /// The root span's ID.
    pub root: u64,
    /// All spans, root first.
    pub spans: Vec<TraceSpan>,
    /// Events in emission order.
    pub events: Vec<FlightEvent>,
    /// Events the engine ring dropped while this join ran (0 means the
    /// flight recorder saw everything).
    pub dropped_events: u64,
}

impl JoinTrace {
    /// Appends a span and returns its ID (IDs are trace-local, starting
    /// at 1).
    pub fn push_span(
        &mut self,
        parent: u64,
        label: impl Into<String>,
        start_ns: u64,
        duration_ns: u64,
    ) -> u64 {
        let id = self.spans.len() as u64 + 1;
        if parent == 0 && self.root == 0 {
            self.root = id;
        }
        self.spans.push(TraceSpan {
            id,
            parent,
            label: label.into(),
            start_ns,
            duration_ns,
        });
        id
    }

    /// Appends an event under `span`.
    pub fn push_event(
        &mut self,
        span: u64,
        at_ns: u64,
        kind: TraceEventKind,
        label: impl Into<String>,
        value: u64,
    ) {
        self.events.push(FlightEvent {
            span,
            at_ns,
            kind,
            label: label.into(),
            value,
        });
    }

    /// Renders the trace as an indented tree: spans with millisecond
    /// durations, each followed by its events.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            out.push_str("(empty trace)\n");
        } else {
            self.render_span(self.root, 0, &mut out);
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "({} events dropped by the engine ring)\n",
                self.dropped_events
            ));
        }
        out
    }

    fn render_span(&self, id: u64, depth: usize, out: &mut String) {
        let Some(span) = self.spans.iter().find(|s| s.id == id) else {
            return;
        };
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{} ({:.3} ms)\n",
            span.label,
            span.duration_ns as f64 / 1e6
        ));
        for event in self.events.iter().filter(|e| e.span == id) {
            out.push_str(&format!(
                "{indent}  · {} {} = {}\n",
                event.kind.name(),
                event.label,
                event.value
            ));
        }
        let mut children: Vec<&TraceSpan> = self.spans.iter().filter(|s| s.parent == id).collect();
        children.sort_by_key(|s| (s.start_ns, s.id));
        for child in children {
            self.render_span(child.id, depth + 1, out);
        }
    }
}

/// One retained slow join: when it finished, how slow it was, and the
/// flight-recorder trace that was assembled retroactively even when the
/// request itself opted out of tracing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowJoinRecord {
    /// When the join finished (ns on the engine trace buffer's timescale).
    pub at_ns: u64,
    /// The join's wall-clock duration in ns.
    pub wall_ns: u64,
    /// The threshold it exceeded, in ns.
    pub threshold_ns: u64,
    /// The session the join ran on.
    pub session_id: u64,
    /// Matches the join produced.
    pub matches: u64,
    /// Whether the caller had asked for a trace anyway (`trace(true)`).
    pub traced: bool,
    /// The full flight-recorder tree for the slow join.
    pub trace: JoinTrace,
}

/// A bounded, drop-oldest ring of [`SlowJoinRecord`]s (lock class
/// `slowlog.ring`).  The engine pushes into it from `finish_join` only
/// when a join breached the slow threshold, so the lock is cold in the
/// healthy case.
#[derive(Debug)]
pub struct SlowLog {
    ring: Mutex<VecDeque<SlowJoinRecord>>,
    capacity: usize,
    recorded: AtomicU64,
}

impl SlowLog {
    /// A slow-log holding at most `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SlowLog {
            ring: Mutex::new("slowlog.ring", VecDeque::with_capacity(capacity)),
            capacity,
            recorded: AtomicU64::new(0),
        }
    }

    /// Appends one record, dropping the oldest when the ring is full.
    pub fn push(&self, record: SlowJoinRecord) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no slow join has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slow joins recorded since creation (including ones since dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// A copy of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<SlowJoinRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Renders the retained records as the `/debug/slowlog` text dump:
    /// one header line per record followed by its rendered trace.
    pub fn render(&self) -> String {
        let records = self.snapshot();
        let mut out = format!(
            "slow joins: {} retained ({} recorded, capacity {})\n",
            records.len(),
            self.recorded(),
            self.capacity
        );
        for (i, r) in records.iter().enumerate() {
            out.push_str(&format!(
                "\n#{} at={}ns wall={:.3}ms threshold={:.3}ms session={} matches={} traced={}\n",
                i + 1,
                r.at_ns,
                r.wall_ns as f64 / 1e6,
                r.threshold_ns as f64 / 1e6,
                r.session_id,
                r.matches,
                r.traced
            ));
            out.push_str(&r.trace.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(span: u64, at_ns: u64, value: u64) -> TraceEvent {
        TraceEvent {
            span,
            at_ns,
            kind: TraceEventKind::Mark,
            label: "test",
            value,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let buf = TraceBuffer::new(3);
        for i in 0..5 {
            buf.push(event(1, i, i));
        }
        if TraceBuffer::is_enabled() {
            let events: Vec<u64> = buf.snapshot().iter().map(|e| e.value).collect();
            assert_eq!(events, vec![2, 3, 4], "drop-oldest keeps the newest");
            assert_eq!(buf.dropped_events(), 2);
            assert_eq!(buf.len(), buf.capacity());
        } else {
            assert!(buf.is_empty());
            assert_eq!(buf.dropped_events(), 0);
        }
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let buf = TraceBuffer::new(4);
        let a = buf.next_span();
        let b = buf.next_span();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn now_is_monotonic() {
        let buf = TraceBuffer::new(1);
        let a = buf.now_ns();
        let b = buf.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in TraceEventKind::ALL {
            assert_eq!(TraceEventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(TraceEventKind::from_code(200), None);
    }

    #[test]
    fn join_trace_renders_a_tree() {
        let mut trace = JoinTrace::default();
        let root = trace.push_span(0, "join", 0, 10_000_000);
        let build = trace.push_span(root, "build", 0, 4_000_000);
        let _probe = trace.push_span(root, "probe", 4_000_000, 6_000_000);
        trace.push_event(build, 100, TraceEventKind::Replan, "build", 2);
        let text = trace.render();
        assert!(text.starts_with("join (10.000 ms)\n"));
        assert!(text.contains("  build (4.000 ms)\n"));
        assert!(text.contains("  probe (6.000 ms)\n"));
        assert!(text.contains("· replan build = 2"));
        // probe is rendered after build (start order).
        assert!(text.find("build").unwrap() < text.find("probe").unwrap());
    }

    #[test]
    fn join_trace_reports_drops_in_render() {
        let trace = JoinTrace {
            dropped_events: 3,
            ..JoinTrace::default()
        };
        let text = trace.render();
        assert!(text.contains("(empty trace)"));
        assert!(text.contains("3 events dropped"));
    }

    #[test]
    fn slow_log_is_bounded_and_drop_oldest() {
        let log = SlowLog::new(2);
        for i in 0..4u64 {
            let mut trace = JoinTrace::default();
            trace.push_span(0, "join", 0, i * 1_000_000);
            log.push(SlowJoinRecord {
                at_ns: i,
                wall_ns: i * 1_000_000,
                threshold_ns: 100,
                session_id: i,
                matches: i,
                traced: false,
                trace,
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.recorded(), 4);
        let sessions: Vec<u64> = log.snapshot().iter().map(|r| r.session_id).collect();
        assert_eq!(sessions, vec![2, 3], "oldest records are dropped");
    }

    #[test]
    fn slow_log_capacity_is_clamped() {
        assert_eq!(SlowLog::new(0).capacity(), 1);
    }

    #[test]
    fn slow_log_render_includes_headers_and_traces() {
        let log = SlowLog::new(4);
        assert!(log.render().starts_with("slow joins: 0 retained"));
        let mut trace = JoinTrace::default();
        let root = trace.push_span(0, "join", 0, 7_000_000);
        trace.push_span(root, "probe", 0, 5_000_000);
        log.push(SlowJoinRecord {
            at_ns: 42,
            wall_ns: 7_000_000,
            threshold_ns: 5_000_000,
            session_id: 9,
            matches: 123,
            traced: false,
            trace,
        });
        let text = log.render();
        assert!(text.contains(
            "#1 at=42ns wall=7.000ms threshold=5.000ms session=9 matches=123 traced=false"
        ));
        assert!(text.contains("join (7.000 ms)\n"));
        assert!(text.contains("  probe (5.000 ms)\n"));
    }

    #[test]
    fn ring_never_blocks_concurrent_pushers() {
        let buf = std::sync::Arc::new(TraceBuffer::new(8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let buf = std::sync::Arc::clone(&buf);
                scope.spawn(move || {
                    for i in 0..500 {
                        buf.push(event(t, i, i));
                    }
                });
            }
        });
        if TraceBuffer::is_enabled() {
            assert_eq!(buf.len(), 8);
            assert_eq!(buf.dropped_events(), 4 * 500 - 8);
        }
    }
}
