//! Shared observability primitives.
//!
//! One tiny fixed-bucket latency histogram: log2 nanosecond buckets, cheap
//! to record into, percentile-extractable, `Copy` so stats snapshots stay
//! plain data.
//!
//! The engine (`EngineStats::queue_wait`, cache-build latency), the serving
//! layer (wire-level request latency) and the bench harness all record into
//! this one type, so percentile arithmetic and bucket layout cannot drift
//! between layers.  Bucket `i` covers durations below `2^i` ns (the last
//! bucket is open-ended), so the whole range from sub-microsecond to
//! ~9 minutes fits in 40 counters and a percentile is never off by more
//! than a factor of two — plenty for p50/p99/p999 trend gates.

#![warn(missing_docs)]

/// Number of log2 buckets; `2^39` ns ≈ 9.2 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log2-bucketed duration histogram (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// The raw bucket counters; bucket `i` counts durations in
    /// `[2^(i-1), 2^i)` ns (bucket 0: `[0, 1]` ns, the last bucket is
    /// open-ended).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// An upper bound (ns) on the `q`-quantile (`q` in `[0, 1]`), `None`
    /// while the histogram is empty.  Accurate to its bucket's factor-of-two
    /// width.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank is 1-based and rounded up: q = 1.0 returns the bucket of
        // the largest recorded sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(1u64 << i);
            }
        }
        unreachable!("count > 0 but no bucket reached the rank");
    }

    /// [`quantile_ns`](Self::quantile_ns) in fractional milliseconds.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.quantile_ns(q).map(|ns| ns as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), None);
    }

    #[test]
    fn quantiles_bound_the_recorded_values() {
        let mut h = LatencyHistogram::new();
        for ns in [100, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5).unwrap();
        assert!((200..=512).contains(&p50), "p50 bound {p50}");
        let p100 = h.quantile_ns(1.0).unwrap();
        assert!(
            p100 >= 100_000,
            "max bound {p100} must cover the largest sample"
        );
        // Every quantile bound is within 2x of a recorded value.
        assert!(p100 <= 2 * 131_072);
    }

    #[test]
    fn zero_and_huge_values_land_in_terminal_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert!(h.quantile_ns(1.0).unwrap() >= 1u64 << 39);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1_000);
        b.record(1_000);
        b.record(2_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile_ns(1.0).unwrap() >= 2_000_000);
    }

    #[test]
    fn quantile_ms_converts() {
        let mut h = LatencyHistogram::new();
        h.record(4_000_000); // 4 ms -> bucket bound 2^22 ns ≈ 4.19 ms
        let ms = h.quantile_ms(0.99).unwrap();
        assert!(ms > 3.9 && ms < 8.5, "{ms}");
    }
}
