//! Shared observability primitives for the join engine.
//!
//! Three pieces, each dependency-free and cheap enough to sit on hot
//! paths:
//!
//! * [`LatencyHistogram`] — the log2-bucket duration histogram every layer
//!   records latencies into (plus [`exact_quantile`] for exact sample-set
//!   percentiles in the bench harness);
//! * [`MetricsRegistry`] — counters, gauges and histograms registered once
//!   under static names, updated via relaxed atomics, rendered as a
//!   Prometheus text snapshot for wire exposition;
//! * [`TraceBuffer`] / [`JoinTrace`] — structured tracing: typed events in
//!   a bounded drop-oldest ring, and the per-join flight-recorder tree
//!   returned to callers that opt in.  The `trace-off` cargo feature
//!   compiles the ring's `push` to a no-op.
//! * [`TimeSeriesRing`] — bounded drop-oldest ring of timestamped registry
//!   snapshots pushed by the engine's sampler thread, with windowed rate
//!   derivation ([`WindowRates`]);
//! * [`HealthMonitor`] — classifies windowed rates into a typed
//!   [`HealthReport`] (`Healthy | Degraded | Saturated`) with hysteresis;
//! * [`SlowLog`] — bounded ring of joins that breached the engine's slow
//!   threshold, each retaining its full flight-recorder trace.

#![warn(missing_docs)]

mod health;
mod histogram;
mod registry;
mod timeseries;
mod trace;

pub use health::{HealthConfig, HealthMonitor, HealthObservation, HealthReport, HealthState};
pub use histogram::{exact_quantile, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use registry::{AtomicHistogram, Counter, Gauge, MetricSample, MetricValue, MetricsRegistry};
pub use timeseries::{family_histogram, family_total, TimePoint, TimeSeriesRing, WindowRates};
pub use trace::{
    FlightEvent, JoinTrace, SlowJoinRecord, SlowLog, TraceBuffer, TraceEvent, TraceEventKind,
    TraceSpan,
};
