//! Shared observability primitives for the join engine.
//!
//! Three pieces, each dependency-free and cheap enough to sit on hot
//! paths:
//!
//! * [`LatencyHistogram`] — the log2-bucket duration histogram every layer
//!   records latencies into (plus [`exact_quantile`] for exact sample-set
//!   percentiles in the bench harness);
//! * [`MetricsRegistry`] — counters, gauges and histograms registered once
//!   under static names, updated via relaxed atomics, rendered as a
//!   Prometheus text snapshot for wire exposition;
//! * [`TraceBuffer`] / [`JoinTrace`] — structured tracing: typed events in
//!   a bounded drop-oldest ring, and the per-join flight-recorder tree
//!   returned to callers that opt in.  The `trace-off` cargo feature
//!   compiles the ring's `push` to a no-op.

#![warn(missing_docs)]

mod histogram;
mod registry;
mod trace;

pub use histogram::{exact_quantile, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use registry::{AtomicHistogram, Counter, Gauge, MetricSample, MetricValue, MetricsRegistry};
pub use trace::{FlightEvent, JoinTrace, TraceBuffer, TraceEvent, TraceEventKind, TraceSpan};
