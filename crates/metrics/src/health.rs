//! Health assessment: a typed verdict derived from windowed rates, with
//! hysteresis so the reported state does not flap on a single noisy window.
//!
//! The engine's sampler feeds one [`HealthObservation`] per sample into
//! [`HealthMonitor::observe`]; the monitor classifies it as
//! `Healthy`/`Degraded`/`Saturated` and only *transitions* after several
//! consecutive windows agree — degrading needs
//! [`HealthConfig::degrade_after`] worse windows in a row, recovering needs
//! [`HealthConfig::recover_after`] better ones.  The `/health` HTTP
//! endpoint renders the latest [`HealthReport`] as JSON and maps
//! `Saturated` to 503.

use hj_analysis::sync::Mutex;

/// The engine's assessed health state.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthState {
    /// Every tracked signal is within budget.
    Healthy,
    /// The engine is serving, but one or more signals are over budget.
    Degraded {
        /// Human-readable over-budget signals, one per breach.
        reasons: Vec<String>,
    },
    /// The engine is shedding a dominant fraction of its traffic.
    Saturated,
}

impl HealthState {
    /// Severity rank: 0 healthy, 1 degraded, 2 saturated.
    pub fn level(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded { .. } => 1,
            HealthState::Saturated => 2,
        }
    }

    /// A stable lower-case name (used in JSON and metrics).
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded { .. } => "degraded",
            HealthState::Saturated => "saturated",
        }
    }

    /// The reasons behind a degraded verdict (empty otherwise).
    pub fn reasons(&self) -> &[String] {
        match self {
            HealthState::Degraded { reasons } => reasons,
            _ => &[],
        }
    }
}

/// One window's worth of signals, as the sampler derived them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthObservation {
    /// When the window closed (monotonic ns on the engine's timescale).
    pub at_ns: u64,
    /// Joins completed per second over the window.
    pub joins_per_sec: f64,
    /// Shed fraction of the window's admission decisions (0..1).
    pub shed_ratio: f64,
    /// Upper bound on the window's queue-wait p99, `None` when no
    /// acquisition waited in the window.
    pub queue_wait_p99_ns: Option<u64>,
    /// Bytes evicted under broker reclaim pressure per second.
    pub reclaim_bytes_per_sec: f64,
    /// Busy fraction of the worker pool (0..1), `None` while the pool is
    /// unspawned or reported no wall time.
    pub worker_utilization: Option<f64>,
}

/// Thresholds and hysteresis depths of one [`HealthMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Queue-wait p99 budget; a window above it is a degradation reason.
    pub queue_wait_p99_budget_ns: u64,
    /// Shed ratio at which a window counts as degraded.
    pub shed_ratio_degraded: f64,
    /// Shed ratio at which a window counts as saturated.
    pub shed_ratio_saturated: f64,
    /// Reclaim pressure (bytes/sec) at which a window counts as degraded.
    pub reclaim_bytes_per_sec_degraded: f64,
    /// Worker utilization at which a window counts as degraded (the pool
    /// has no headroom left).
    pub utilization_degraded: f64,
    /// Consecutive worse windows required before the state worsens.
    pub degrade_after: usize,
    /// Consecutive better windows required before the state improves
    /// (recovery is deliberately slower than degradation).
    pub recover_after: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            queue_wait_p99_budget_ns: 50_000_000, // 50 ms
            shed_ratio_degraded: 0.02,
            shed_ratio_saturated: 0.50,
            reclaim_bytes_per_sec_degraded: 64.0 * 1024.0 * 1024.0,
            utilization_degraded: 0.98,
            degrade_after: 2,
            recover_after: 3,
        }
    }
}

/// The monitor's verdict on one observation, plus the inputs it judged.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The assessed state after hysteresis.
    pub state: HealthState,
    /// When the judged window closed (0 before the first observation).
    pub at_ns: u64,
    /// The signals the verdict was derived from.
    pub observation: HealthObservation,
}

impl Default for HealthReport {
    fn default() -> Self {
        HealthReport {
            state: HealthState::Healthy,
            at_ns: 0,
            observation: HealthObservation::default(),
        }
    }
}

impl HealthReport {
    /// Whether a load balancer should keep routing traffic here
    /// (`Saturated` is the only "stop" verdict; `Degraded` still serves).
    pub fn is_serving(&self) -> bool {
        self.state.level() < 2
    }

    /// Renders the report as a compact JSON object — the `/health`
    /// endpoint's body.
    pub fn render_json(&self) -> String {
        let obs = &self.observation;
        let reasons: Vec<String> = self
            .state
            .reasons()
            .iter()
            .map(|r| format!("\"{}\"", escape_json(r)))
            .collect();
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.4}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"state\":\"{}\",\"reasons\":[{}],\"at_ns\":{},\
             \"joins_per_sec\":{:.3},\"shed_ratio\":{:.4},\
             \"queue_wait_p99_ms\":{},\"reclaim_bytes_per_sec\":{:.0},\
             \"worker_utilization\":{}}}",
            self.state.name(),
            reasons.join(","),
            self.at_ns,
            obs.joins_per_sec,
            obs.shed_ratio,
            fmt_opt(obs.queue_wait_p99_ns.map(|ns| ns as f64 / 1e6)),
            obs.reclaim_bytes_per_sec,
            fmt_opt(obs.worker_utilization),
        )
    }
}

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Classification state behind the `health.state` lock.
struct MonitorInner {
    current: HealthState,
    /// The level raw assessments have been pushing towards.
    pending_level: u8,
    /// How many consecutive raw assessments agreed on `pending_level`.
    pending_streak: usize,
    last: HealthReport,
}

/// Classifies observations into a [`HealthState`] with hysteresis (lock
/// class `health.state`).
pub struct HealthMonitor {
    config: HealthConfig,
    inner: Mutex<MonitorInner>,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("config", &self.config)
            .field("state", &self.inner.lock().current)
            .finish()
    }
}

impl HealthMonitor {
    /// A monitor starting `Healthy` under the given thresholds.
    pub fn new(config: HealthConfig) -> Self {
        HealthMonitor {
            config,
            inner: Mutex::new(
                "health.state",
                MonitorInner {
                    current: HealthState::Healthy,
                    pending_level: 0,
                    pending_streak: 0,
                    last: HealthReport::default(),
                },
            ),
        }
    }

    /// The monitor's thresholds.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Classifies one observation without hysteresis: the raw severity
    /// level and the reasons behind it.
    fn assess(&self, obs: &HealthObservation) -> (u8, Vec<String>) {
        let cfg = &self.config;
        if obs.shed_ratio >= cfg.shed_ratio_saturated {
            return (
                2,
                vec![format!(
                    "shed ratio {:.2} at or over the saturation threshold {:.2}",
                    obs.shed_ratio, cfg.shed_ratio_saturated
                )],
            );
        }
        let mut reasons = Vec::new();
        if obs.shed_ratio >= cfg.shed_ratio_degraded {
            reasons.push(format!(
                "shed ratio {:.3} over budget {:.3}",
                obs.shed_ratio, cfg.shed_ratio_degraded
            ));
        }
        if let Some(p99) = obs.queue_wait_p99_ns {
            if p99 > cfg.queue_wait_p99_budget_ns {
                reasons.push(format!(
                    "queue-wait p99 {:.1} ms over budget {:.1} ms",
                    p99 as f64 / 1e6,
                    cfg.queue_wait_p99_budget_ns as f64 / 1e6
                ));
            }
        }
        if obs.reclaim_bytes_per_sec >= cfg.reclaim_bytes_per_sec_degraded {
            reasons.push(format!(
                "broker reclaim pressure {:.0} B/s over budget {:.0} B/s",
                obs.reclaim_bytes_per_sec, cfg.reclaim_bytes_per_sec_degraded
            ));
        }
        if let Some(util) = obs.worker_utilization {
            if util >= cfg.utilization_degraded {
                reasons.push(format!(
                    "worker utilization {:.2} leaves no headroom (budget {:.2})",
                    util, cfg.utilization_degraded
                ));
            }
        }
        if reasons.is_empty() {
            (0, reasons)
        } else {
            (1, reasons)
        }
    }

    /// Feeds one observation through the hysteresis machine and returns
    /// the (possibly transitioned) report.
    pub fn observe(&self, obs: HealthObservation) -> HealthReport {
        let (raw_level, reasons) = self.assess(&obs);
        let mut inner = self.inner.lock();
        let current_level = inner.current.level();
        if raw_level == current_level {
            // Agreement cancels any pending transition; a degraded state
            // keeps its reasons fresh.
            inner.pending_streak = 0;
            if raw_level == 1 {
                inner.current = HealthState::Degraded { reasons };
            }
        } else {
            if inner.pending_level == raw_level {
                inner.pending_streak += 1;
            } else {
                inner.pending_level = raw_level;
                inner.pending_streak = 1;
            }
            let needed = if raw_level > current_level {
                self.config.degrade_after
            } else {
                self.config.recover_after
            };
            if inner.pending_streak >= needed.max(1) {
                inner.current = match raw_level {
                    0 => HealthState::Healthy,
                    1 => HealthState::Degraded { reasons },
                    _ => HealthState::Saturated,
                };
                inner.pending_streak = 0;
            }
        }
        let report = HealthReport {
            state: inner.current.clone(),
            at_ns: obs.at_ns,
            observation: obs,
        };
        inner.last = report.clone();
        report
    }

    /// The most recent report (a default `Healthy` one before the first
    /// observation).
    pub fn report(&self) -> HealthReport {
        self.inner.lock().last.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> HealthConfig {
        HealthConfig {
            degrade_after: 2,
            recover_after: 3,
            ..HealthConfig::default()
        }
    }

    fn shedding(ratio: f64) -> HealthObservation {
        HealthObservation {
            shed_ratio: ratio,
            ..HealthObservation::default()
        }
    }

    #[test]
    fn one_bad_window_does_not_degrade() {
        let monitor = HealthMonitor::new(quick_config());
        let report = monitor.observe(shedding(0.10));
        assert_eq!(report.state, HealthState::Healthy, "hysteresis holds");
        // A good window in between resets the streak.
        monitor.observe(shedding(0.0));
        monitor.observe(shedding(0.10));
        assert_eq!(monitor.report().state.level(), 0);
    }

    #[test]
    fn consecutive_bad_windows_degrade_and_recovery_is_slower() {
        let monitor = HealthMonitor::new(quick_config());
        monitor.observe(shedding(0.10));
        let report = monitor.observe(shedding(0.10));
        assert_eq!(report.state.level(), 1, "2 bad windows degrade");
        assert!(!report.state.reasons().is_empty());
        // Two good windows are not enough to recover (recover_after = 3)...
        monitor.observe(shedding(0.0));
        assert_eq!(monitor.observe(shedding(0.0)).state.level(), 1);
        // ...the third flips back.
        assert_eq!(monitor.observe(shedding(0.0)).state, HealthState::Healthy);
    }

    #[test]
    fn dominant_shedding_saturates() {
        let monitor = HealthMonitor::new(quick_config());
        monitor.observe(shedding(0.9));
        let report = monitor.observe(shedding(0.9));
        assert_eq!(report.state, HealthState::Saturated);
        assert!(!report.is_serving());
    }

    #[test]
    fn queue_wait_reclaim_and_utilization_are_reasons() {
        let monitor = HealthMonitor::new(quick_config());
        let obs = HealthObservation {
            queue_wait_p99_ns: Some(200_000_000),
            reclaim_bytes_per_sec: 1e9,
            worker_utilization: Some(1.0),
            ..HealthObservation::default()
        };
        let (level, reasons) = monitor.assess(&obs);
        assert_eq!(level, 1);
        assert_eq!(reasons.len(), 3, "{reasons:?}");
        assert!(reasons[0].contains("queue-wait p99"));
        assert!(reasons[1].contains("reclaim"));
        assert!(reasons[2].contains("utilization"));
    }

    #[test]
    fn flapping_assessments_never_transition() {
        let monitor = HealthMonitor::new(quick_config());
        for _ in 0..8 {
            monitor.observe(shedding(0.10));
            monitor.observe(shedding(0.0));
        }
        assert_eq!(monitor.report().state, HealthState::Healthy);
    }

    #[test]
    fn report_renders_valid_enough_json() {
        let monitor = HealthMonitor::new(quick_config());
        let json = monitor.report().render_json();
        assert!(json.starts_with("{\"state\":\"healthy\""));
        assert!(json.contains("\"reasons\":[]"));
        assert!(json.contains("\"queue_wait_p99_ms\":null"));
        monitor.observe(shedding(0.10));
        let degraded = monitor.observe(shedding(0.10));
        let json = degraded.render_json();
        assert!(json.contains("\"state\":\"degraded\""));
        assert!(json.contains("\"reasons\":[\"shed ratio"));
        // Hostile reason content stays inside its string literal.
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
