//! Micro-benchmarks of the core building blocks: hashing, hash-table
//! build/probe, radix partitioning, the software allocators and the
//! co-processing schemes end-to-end (wall-clock of the host execution; the
//! paper-shaped elapsed times come from the `experiments` binary, which
//! reports simulated device time).
//!
//! A minimal self-timed harness (`harness = false`) keeps the workspace
//! free of external dependencies:
//!
//! ```text
//! cargo bench -p hj-bench
//! ```

use datagen::DataGenConfig;
use hj_core::{
    hash::hash_key, run_build_phase, run_partition_pass, run_probe_phase, BuildTarget,
    EngineConfig, ExecContext, HashTable, JoinEngine, JoinRequest, Ratios, Scheme,
};
use mem_alloc::{AllocatorKind, BlockAllocator, BumpAllocator, KernelAllocator};
use std::time::Instant;

const BENCH_TUPLES: usize = 64 * 1024;

/// Times `iters` runs of `body` and prints mean wall-clock per iteration and
/// per element.
fn bench<F: FnMut() -> u64>(name: &str, elements: u64, iters: u32, mut body: F) {
    // One warm-up run; the checksum keeps the work observable.
    let mut checksum = body();
    let start = Instant::now();
    for _ in 0..iters {
        checksum = checksum.wrapping_add(body());
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed / iters;
    let per_elem_ns = elapsed.as_nanos() as f64 / (iters as f64 * elements as f64);
    println!(
        "{name:<28} {per_iter:>12.2?}/iter {per_elem_ns:>9.2} ns/elem   (checksum {checksum:x})"
    );
}

fn bench_hash() {
    let keys: Vec<u32> = (0..BENCH_TUPLES as u32).collect();
    bench("hash/murmur2_64k_keys", keys.len() as u64, 50, || {
        keys.iter().map(|&k| hash_key(k) as u64).sum::<u64>()
    });
}

fn bench_build_probe() {
    let sys = apu_sim::SystemSpec::coupled_a8_3870k();
    let (build, probe) = datagen::generate_pair(&DataGenConfig::small(BENCH_TUPLES, BENCH_TUPLES));
    bench("phases/build_shared_64k", BENCH_TUPLES as u64, 10, || {
        let mut ctx = ExecContext::new(
            &sys,
            AllocatorKind::tuned(),
            hj_core::arena_bytes_for(build.len(), probe.len()),
            false,
        );
        let mut table = HashTable::for_build_size(build.len());
        run_build_phase(
            &mut ctx,
            &build,
            BuildTarget::Shared(&mut table),
            &Ratios::uniform(0.3, 4),
            false,
        )
        .unwrap();
        table.tuple_count()
    });

    // The probe benchmark reuses one context (and its result arena) across
    // iterations, as a query executor reusing its output buffer would.
    let mut ctx = ExecContext::new(
        &sys,
        AllocatorKind::tuned(),
        hj_core::arena_bytes_for(build.len(), probe.len() * 2),
        false,
    );
    let mut table = HashTable::for_build_size(build.len());
    run_build_phase(
        &mut ctx,
        &build,
        BuildTarget::Shared(&mut table),
        &Ratios::uniform(0.3, 4),
        false,
    )
    .unwrap();
    bench("phases/probe_64k", BENCH_TUPLES as u64, 10, || {
        ctx.allocator.reset();
        let (out, _) = run_probe_phase(
            &mut ctx,
            &probe,
            &table,
            &Ratios::uniform(0.4, 4),
            false,
            false,
        )
        .unwrap();
        out.matches
    });
}

fn bench_partition() {
    let sys = apu_sim::SystemSpec::coupled_a8_3870k();
    let (rel, _) = datagen::generate_pair(&DataGenConfig::small(BENCH_TUPLES, 16));
    bench("partition/radix6_64k", BENCH_TUPLES as u64, 10, || {
        let mut ctx = ExecContext::new(
            &sys,
            AllocatorKind::tuned(),
            hj_core::arena_bytes_for(rel.len(), rel.len()),
            false,
        );
        let (parts, _) =
            run_partition_pass(&mut ctx, &rel, 6, 0, &Ratios::uniform(0.5, 3)).unwrap();
        parts.len() as u64
    });
}

fn bench_allocators() {
    const REQUESTS: usize = 100_000;
    bench("alloc/bump_100k_x12B", REQUESTS as u64, 20, || {
        let mut a = BumpAllocator::new(16 << 20);
        for i in 0..REQUESTS {
            a.alloc(i % 64, 12);
        }
        a.stats().allocations
    });
    bench("alloc/block_2k_100k_x12B", REQUESTS as u64, 20, || {
        let mut a = BlockAllocator::new(16 << 20, 2048, 64);
        for i in 0..REQUESTS {
            a.alloc(i % 64, 12);
        }
        a.stats().allocations
    });
}

fn bench_schemes_end_to_end() {
    let (build, probe) = datagen::generate_pair(&DataGenConfig::small(BENCH_TUPLES, BENCH_TUPLES));
    // One long-lived engine per variant — the arena is allocated once and
    // reused by every iteration, which is exactly the serving-path shape.
    for (name, scheme) in [
        ("engine/shj_cpu_only_64k", Scheme::CpuOnly),
        ("engine/shj_dd_64k", Scheme::data_dividing_paper()),
        ("engine/shj_pl_64k", Scheme::pipelined_paper()),
    ] {
        let mut engine =
            JoinEngine::coupled(EngineConfig::for_tuples(build.len(), probe.len())).unwrap();
        let request = JoinRequest::builder().scheme(scheme).build().unwrap();
        bench(name, BENCH_TUPLES as u64, 5, || {
            engine.execute(&request, &build, &probe).unwrap().matches
        });
    }
}

fn main() {
    println!("# hj-bench micro (host wall-clock, {BENCH_TUPLES} tuples)");
    bench_hash();
    bench_build_probe();
    bench_partition();
    bench_allocators();
    bench_schemes_end_to_end();
}
