//! Criterion micro-benchmarks of the core building blocks: hashing,
//! hash-table build/probe, radix partitioning, the software allocators and
//! the co-processing schemes end-to-end (wall-clock of the host execution;
//! the paper-shaped elapsed times come from the `experiments` binary, which
//! reports simulated device time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::DataGenConfig;
use hj_core::{
    hash::hash_key, run_build_phase, run_join, run_probe_phase, BuildTarget, ExecContext,
    HashTable, JoinConfig, Ratios, Scheme,
};
use mem_alloc::{AllocatorKind, BlockAllocator, BumpAllocator, KernelAllocator};

const BENCH_TUPLES: usize = 64 * 1024;

fn bench_hash(c: &mut Criterion) {
    let keys: Vec<u32> = (0..BENCH_TUPLES as u32).collect();
    let mut group = c.benchmark_group("hash");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("murmur2_64k_keys", |b| {
        b.iter(|| keys.iter().map(|&k| hash_key(k) as u64).sum::<u64>())
    });
    group.finish();
}

fn bench_build_probe(c: &mut Criterion) {
    let sys = apu_sim::SystemSpec::coupled_a8_3870k();
    let (build, probe) = datagen::generate_pair(&DataGenConfig::small(BENCH_TUPLES, BENCH_TUPLES));
    let mut group = c.benchmark_group("phases");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BENCH_TUPLES as u64));
    group.bench_function("build_shared_64k", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new(
                &sys,
                AllocatorKind::tuned(),
                hj_core::arena_bytes_for(build.len(), probe.len()),
                false,
            );
            let mut table = HashTable::for_build_size(build.len());
            run_build_phase(
                &mut ctx,
                &build,
                BuildTarget::Shared(&mut table),
                &Ratios::uniform(0.3, 4),
                false,
            );
            table.tuple_count()
        })
    });
    group.bench_function("probe_64k", |b| {
        let mut ctx = ExecContext::new(
            &sys,
            AllocatorKind::tuned(),
            hj_core::arena_bytes_for(build.len(), probe.len() * 64),
            false,
        );
        let mut table = HashTable::for_build_size(build.len());
        run_build_phase(
            &mut ctx,
            &build,
            BuildTarget::Shared(&mut table),
            &Ratios::uniform(0.3, 4),
            false,
        );
        b.iter(|| {
            // The result arena is reused across iterations, as a query
            // executor reusing its output buffer would.
            ctx.allocator.reset();
            let (out, _) =
                run_probe_phase(&mut ctx, &probe, &table, &Ratios::uniform(0.4, 4), false, false);
            out.matches
        })
    });
    group.finish();
}

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("bump_100k_allocs", |b| {
        b.iter(|| {
            let mut a = BumpAllocator::new(16 << 20);
            for i in 0..100_000usize {
                a.alloc(i % 64, 12);
            }
            a.stats().allocations
        })
    });
    group.bench_function("block_2k_100k_allocs", |b| {
        b.iter(|| {
            let mut a = BlockAllocator::new(16 << 20, 2048, 64);
            for i in 0..100_000usize {
                a.alloc(i % 64, 12);
            }
            a.stats().allocations
        })
    });
    group.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let sys = apu_sim::SystemSpec::coupled_a8_3870k();
    let (build, probe) = datagen::generate_pair(&DataGenConfig::small(BENCH_TUPLES, BENCH_TUPLES));
    let mut group = c.benchmark_group("schemes_end_to_end_64k");
    group.sample_size(10);
    for (name, scheme) in [
        ("cpu_only", Scheme::CpuOnly),
        ("dd", Scheme::data_dividing_paper()),
        ("pl", Scheme::pipelined_paper()),
    ] {
        group.bench_with_input(BenchmarkId::new("shj", name), &scheme, |b, scheme| {
            b.iter(|| run_join(&sys, &build, &probe, &JoinConfig::shj(scheme.clone())).matches)
        });
        group.bench_with_input(BenchmarkId::new("phj", name), &scheme, |b, scheme| {
            b.iter(|| run_join(&sys, &build, &probe, &JoinConfig::phj(scheme.clone())).matches)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash, bench_build_probe, bench_allocators, bench_schemes);
criterion_main!(benches);
