//! Cost-model accuracy experiments: Figures 7, 8 and 9.

use crate::common::{banner, ExpContext};
use apu_sim::Phase;
use costmodel::{
    calibrate_from_relations, cdf_points, monte_carlo_series, optimize_pl_ratios, JoinCostModel,
};
use hj_core::{Algorithm, JoinConfig, Ratios, Scheme};

/// Figure 7: estimated vs measured elapsed time of SHJ-DD while sweeping the
/// workload ratio of the build phase and of the probe phase.
pub fn fig07(ctx: &mut ExpContext) {
    banner("Figure 7: estimated and measured time for SHJ-DD with workload ratios varied");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let model = JoinCostModel::new(calibrate_from_relations(
        &sys,
        &build,
        &probe,
        Algorithm::Simple,
    ));

    let mut rows = Vec::new();
    println!(
        "{:<6} {:>6} {:>14} {:>14} {:>14} {:>14}",
        "ratio", "%", "est build(s)", "meas build(s)", "est probe(s)", "meas probe(s)"
    );
    for step in 0..=10 {
        let r = step as f64 / 10.0;
        let est_build = model.build.estimate(build.len(), &Ratios::uniform(r, 4));
        let est_probe = model.probe.estimate(probe.len(), &Ratios::uniform(r, 4));
        let cfg = JoinConfig::shj(Scheme::DataDividing {
            partition_ratio: r,
            build_ratio: r,
            probe_ratio: r,
        });
        let out = ctx.run_join(&sys, &cfg, &build, &probe);
        let meas_build = out.breakdown.get(Phase::Build);
        let meas_probe = out.breakdown.get(Phase::Probe);
        println!(
            "{:<6.2} {:>5.0}% {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            r,
            r * 100.0,
            est_build.as_secs(),
            meas_build.as_secs(),
            est_probe.as_secs(),
            meas_probe.as_secs()
        );
        rows.push(format!(
            "{r},{:.6},{:.6},{:.6},{:.6}",
            est_build.as_secs(),
            meas_build.as_secs(),
            est_probe.as_secs(),
            meas_probe.as_secs()
        ));
    }
    ctx.write_csv(
        "fig07.csv",
        "cpu_ratio,estimated_build_s,measured_build_s,estimated_probe_s,measured_probe_s",
        &rows,
    );
    println!(
        "(estimates sit slightly below measurements because the model ignores lock contention)"
    );
}

/// Figure 8: the PL special case — `b1`/`p1` entirely off-loaded to the GPU,
/// one common ratio `r` for every other step — estimated vs measured.
pub fn fig08(ctx: &mut ExpContext) {
    banner("Figure 8: estimated and measured time for the PL special case (hash steps on GPU)");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let model = JoinCostModel::new(calibrate_from_relations(
        &sys,
        &build,
        &probe,
        Algorithm::Simple,
    ));

    let mut rows = Vec::new();
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>14}",
        "r", "est build(s)", "meas build(s)", "est probe(s)", "meas probe(s)"
    );
    for step in 0..=10 {
        let r = step as f64 / 10.0;
        let build_ratios = Ratios::new(vec![0.0, r, r, r]);
        let probe_ratios = Ratios::new(vec![0.0, r, r, r]);
        let est_build = model.build.estimate(build.len(), &build_ratios);
        let est_probe = model.probe.estimate(probe.len(), &probe_ratios);
        let cfg = JoinConfig::shj(Scheme::Pipelined {
            partition: [0.0, r, r],
            build: [0.0, r, r, r],
            probe: [0.0, r, r, r],
        });
        let out = ctx.run_join(&sys, &cfg, &build, &probe);
        println!(
            "{:<6.2} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            r,
            est_build.as_secs(),
            out.breakdown.get(Phase::Build).as_secs(),
            est_probe.as_secs(),
            out.breakdown.get(Phase::Probe).as_secs()
        );
        rows.push(format!(
            "{r},{:.6},{:.6},{:.6},{:.6}",
            est_build.as_secs(),
            out.breakdown.get(Phase::Build).as_secs(),
            est_probe.as_secs(),
            out.breakdown.get(Phase::Probe).as_secs()
        ));
    }
    ctx.write_csv(
        "fig08.csv",
        "r,estimated_build_s,measured_build_s,estimated_probe_s,measured_probe_s",
        &rows,
    );
}

/// Figure 9: CDF of one thousand Monte-Carlo ratio settings versus the
/// cost-model-chosen setting, for the build phase of SHJ-PL and the probe
/// phase of PHJ-PL.
pub fn fig09(ctx: &mut ExpContext) {
    banner("Figure 9: Monte-Carlo CDF of random ratio settings vs the cost-model choice");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();

    let shj = JoinCostModel::new(calibrate_from_relations(
        &sys,
        &build,
        &probe,
        Algorithm::Simple,
    ));
    let phj = JoinCostModel::new(calibrate_from_relations(
        &sys,
        &build,
        &probe,
        Algorithm::partitioned_auto(),
    ));

    let mut rows = Vec::new();
    for (label, model, items) in [
        ("SHJ-PL build", &shj.build, build.len()),
        ("PHJ-PL probe", &phj.probe, probe.len()),
    ] {
        let samples = monte_carlo_series(model, items, 1000, 2013);
        let times: Vec<_> = samples.iter().map(|(_, t)| *t).collect();
        let (chosen_ratios, chosen) =
            optimize_pl_ratios(model, items, costmodel::optimizer::PAPER_DELTA);
        let beaten = times.iter().filter(|t| **t < chosen).count();
        let best = times
            .iter()
            .fold(chosen, |acc, t| if *t < acc { *t } else { acc });
        println!(
            "{label}: ours {:.3}s | best of 1000 runs {:.3}s | {:.1}% of random settings are slower | ratios {:?}",
            chosen.as_secs(),
            best.as_secs(),
            100.0 * (1.0 - beaten as f64 / times.len() as f64),
            chosen_ratios.as_slice(),
        );
        for (threshold, fraction) in cdf_points(&times, 25) {
            rows.push(format!(
                "{label},{threshold:.6},{fraction:.4},{:.6}",
                chosen.as_secs()
            ));
        }
    }
    ctx.write_csv("fig09.csv", "series,elapsed_s,cdf,ours_s", &rows);
}
