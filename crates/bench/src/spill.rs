//! Larger-than-memory joins under the memory governor (`BENCH_spill`).
//!
//! Measures the cost of graceful degradation: one native-backend join is
//! run unconstrained (everything resident), then under memory budgets of
//! 0.5x and 0.25x its resident footprint (the broker denies grows, build
//! partitions spill to run files and are restored or recursed), and
//! finally as a four-client burst sharing one 0.5x budget (the fair-share
//! contention case).  Every point verifies the match count against the
//! reference join, and the experiment asserts that *no* spill temp files
//! survive — leaked runs are a bug, not a slowdown.
//!
//! Emits `BENCH_spill.json` in the working directory and
//! `results/spill.csv`.
//!
//! CI gating knob (environment):
//!
//! * `HJ_SPILL_MAX_SLOWDOWN="25"` — fail (exit 1) when the 0.25x-budget
//!   point runs more than this many times slower than the unconstrained
//!   baseline.  Spilling is allowed to cost; collapsing by orders of
//!   magnitude (or deadlocking) is what the gate catches.

use crate::common::{banner, ExpContext};
use hj_core::spill::{SpillConfig, SpillReport};
use hj_core::{EngineConfig, JoinEngine, JoinRequest, NativeCpu, Scheme};
use std::sync::Arc;
use std::time::Instant;

/// Measured runs per point (the median is reported) after one warm-up.
const RUNS: usize = 5;

/// Clients of the contention point.
const CONTENTION_CLIENTS: usize = 4;

/// One measured configuration.
struct Point {
    name: &'static str,
    budget_bytes: Option<usize>,
    joins: usize,
    median_secs: f64,
    report: SpillReport,
}

fn median(mut xs: Vec<f64>) -> f64 {
    hj_metrics::exact_quantile(&mut xs, 0.5).expect("non-empty run samples")
}

/// The slowdown cap from `HJ_SPILL_MAX_SLOWDOWN`, when set; malformed
/// values are a hard error (a typo must not silently disable a CI gate).
fn max_slowdown() -> Option<f64> {
    crate::common::env_ratio_floor("HJ_SPILL_MAX_SLOWDOWN")
}

/// Asserts an engine's spill hygiene: nothing granted, no run files left.
fn assert_clean(engine: &JoinEngine, point: &str) {
    assert_eq!(
        engine.memory_broker().granted(),
        0,
        "{point}: leaked memory grants"
    );
    if let Some(dir) = engine.spill_dir() {
        let leaked: Vec<_> = std::fs::read_dir(dir)
            .map(|it| it.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert!(
            leaked.is_empty(),
            "{point}: {} spill temp files survived the run",
            leaked.len()
        );
    }
}

/// `spill`: in-memory vs 0.5x/0.25x-budget spilling, plus four clients
/// contending for one budget.
pub fn spill(ctx: &mut ExpContext) {
    banner("BENCH_spill: larger-than-memory joins under the memory governor");
    let (r, s) = ctx.relations(
        8 * 1024 * 1024,
        16 * 1024 * 1024,
        datagen::KeyDistribution::Uniform,
        1.0,
    );
    let expected = hj_core::reference_match_count(&r, &s);
    let footprint = (r.len() + s.len()) * datagen::TUPLE_BYTES;
    println!(
        "workload: {} x {} tuples (resident footprint {:.1} MiB), median of {RUNS} runs",
        r.len(),
        s.len(),
        footprint as f64 / (1024.0 * 1024.0)
    );

    let plain = JoinRequest::builder()
        .scheme(Scheme::pipelined_paper())
        .build()
        .expect("valid baseline request");
    let spilling = JoinRequest::builder()
        .scheme(Scheme::pipelined_paper())
        .spill(SpillConfig::default())
        .build()
        .expect("valid spill request");

    let mut points: Vec<Point> = Vec::new();

    // --- single-session points: unconstrained, 0.5x, 0.25x ---
    for (name, factor) in [
        ("in-memory", None),
        ("budget-0.5x", Some(0.5)),
        ("budget-0.25x", Some(0.25)),
    ] {
        let budget = factor.map(|f| ((footprint as f64 * f) as usize).max(1));
        let mut config = EngineConfig::for_tuples(r.len(), s.len());
        if let Some(budget) = budget {
            config = config.memory_budget(budget);
        }
        let engine =
            JoinEngine::new(Box::new(NativeCpu::new()), config).expect("valid engine config");
        let request = if budget.is_some() { &spilling } else { &plain };
        let mut elapsed = Vec::with_capacity(RUNS);
        let mut report = SpillReport::default();
        for run in 0..=RUNS {
            let start = Instant::now();
            let out = engine.submit(request, &r, &s).expect("spill point join");
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(out.matches, expected, "{name}: wrong join result");
            if budget.is_some() {
                report = out.spill.expect("budgeted points must report");
                assert!(
                    report.bytes_spilled > 0,
                    "{name}: a sub-footprint budget must spill"
                );
            } else {
                assert!(out.spill.is_none(), "{name}: baseline must not spill");
            }
            if run > 0 {
                elapsed.push(secs); // run 0 is warm-up
            }
        }
        assert_clean(&engine, name);
        points.push(Point {
            name,
            budget_bytes: budget,
            joins: RUNS,
            median_secs: median(elapsed),
            report,
        });
    }

    // --- contention point: four clients share one 0.5x budget ---
    let registry_metrics;
    {
        let budget = ((footprint as f64 * 0.5) as usize).max(1);
        let engine = Arc::new(
            JoinEngine::new(
                Box::new(NativeCpu::new()),
                EngineConfig::for_tuples(r.len(), s.len())
                    .sessions(CONTENTION_CLIENTS)
                    .memory_budget(budget),
            )
            .expect("valid contention engine"),
        );
        let mut elapsed = Vec::with_capacity(RUNS);
        let mut warm = None;
        for run in 0..=RUNS {
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..CONTENTION_CLIENTS {
                    let engine = Arc::clone(&engine);
                    let request = spilling.clone();
                    let (r, s) = (&r, &s);
                    scope.spawn(move || {
                        let out = engine.submit(&request, r, s).expect("contended spill join");
                        assert_eq!(out.matches, expected);
                    });
                }
            });
            if run == 0 {
                // Snapshot after the warm-up burst so the reported bytes
                // cover exactly the `joins` measured below.
                warm = Some(engine.stats());
            } else {
                elapsed.push(start.elapsed().as_secs_f64());
            }
        }
        let stats = engine.stats();
        let warm = warm.expect("warm-up ran");
        assert_clean(&engine, "contention-4x");
        // The contention engine saw the most spill traffic; its registry
        // snapshot is the one worth keeping next to the numbers.
        registry_metrics = crate::common::registry_json(engine.metrics_registry());
        points.push(Point {
            name: "contention-4x",
            budget_bytes: Some(budget),
            joins: CONTENTION_CLIENTS * RUNS,
            median_secs: median(elapsed),
            report: SpillReport {
                bytes_spilled: stats.spill_bytes_written - warm.spill_bytes_written,
                bytes_restored: stats.spill_bytes_restored - warm.spill_bytes_restored,
                partitions_spilled: stats.spill_partitions - warm.spill_partitions,
                ..SpillReport::default()
            },
        });
    }

    // --- report ---
    let base_secs = points[0].median_secs.max(1e-9);
    println!(
        "{:>14} {:>14} {:>12} {:>10} {:>14} {:>14} {:>10}",
        "point", "budget(B)", "median(s)", "slowdown", "spilled(B)", "restored(B)", "parts"
    );
    for p in &points {
        println!(
            "{:>14} {:>14} {:>12.4} {:>9.2}x {:>14} {:>14} {:>10}",
            p.name,
            p.budget_bytes
                .map_or_else(|| "unlimited".to_string(), |b| b.to_string()),
            p.median_secs,
            p.median_secs / base_secs,
            p.report.bytes_spilled,
            p.report.bytes_restored,
            p.report.partitions_spilled,
        );
    }

    let json = render_json(r.len(), s.len(), footprint, &points, &registry_metrics);
    let path = "BENCH_spill.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{},{},{},{:.6},{:.3},{},{},{},{},{}",
                p.name,
                p.budget_bytes.map_or(0, |b| b),
                p.joins,
                p.median_secs,
                p.median_secs / base_secs,
                p.report.bytes_spilled,
                p.report.bytes_restored,
                p.report.partitions_spilled,
                p.report.recursion_depth,
                p.report.fallback_joins,
            )
        })
        .collect();
    ctx.write_csv(
        "spill.csv",
        "point,budget_bytes,joins,median_secs,slowdown,bytes_spilled,bytes_restored,\
         partitions_spilled,recursion_depth,fallback_joins",
        &rows,
    );

    // CI gate: heavy spilling may cost, but must not collapse.
    if let Some(cap) = max_slowdown() {
        let quarter = points
            .iter()
            .find(|p| p.name == "budget-0.25x")
            .expect("0.25x point measured");
        let slowdown = quarter.median_secs / base_secs;
        println!("gate: budget-0.25x slowdown {slowdown:.2}x vs in-memory (cap {cap}x)");
        if slowdown > cap {
            eprintln!(
                "FAIL: spilling at 0.25x budget is {slowdown:.2}x slower than in-memory \
                 (HJ_SPILL_MAX_SLOWDOWN={cap})"
            );
            std::process::exit(1);
        }
    }
}

fn render_json(
    build_tuples: usize,
    probe_tuples: usize,
    footprint: usize,
    points: &[Point],
    registry_metrics: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"spill\",\n");
    out.push_str("  \"backend\": \"native-cpu\",\n");
    out.push_str(&format!("  \"build_tuples\": {build_tuples},\n"));
    out.push_str(&format!("  \"probe_tuples\": {probe_tuples},\n"));
    out.push_str(&format!("  \"resident_footprint_bytes\": {footprint},\n"));
    out.push_str(&format!("  \"runs\": {RUNS},\n"));
    out.push_str(&format!("  \"metrics\": {registry_metrics},\n"));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"point\": \"{}\", \"budget_bytes\": {}, \"joins\": {}, \
             \"median_secs\": {:.6}, \"bytes_spilled\": {}, \"bytes_restored\": {}, \
             \"partitions_spilled\": {}, \"recursion_depth\": {}, \"fallback_joins\": {}}}{}\n",
            p.name,
            p.budget_bytes.map_or(0, |b| b),
            p.joins,
            p.median_secs,
            p.report.bytes_spilled,
            p.report.bytes_restored,
            p.report.partitions_spilled,
            p.report.recursion_depth,
            p.report.fallback_joins,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough_to_diff() {
        let points = vec![
            Point {
                name: "in-memory",
                budget_bytes: None,
                joins: 5,
                median_secs: 0.1,
                report: SpillReport::default(),
            },
            Point {
                name: "budget-0.5x",
                budget_bytes: Some(1024),
                joins: 5,
                median_secs: 0.2,
                report: SpillReport {
                    bytes_spilled: 100,
                    ..SpillReport::default()
                },
            },
        ];
        let json = render_json(1000, 2000, 24_000, &points, "{\n  }");
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"point\"").count(), 2);
        assert!(json.contains("\"budget_bytes\": 0"));
        assert!(json.contains("\"bytes_spilled\": 100"));
        assert!(json.contains("\"metrics\": {\n  },"));
        assert_eq!(json.matches("},\n").count(), 2);
    }

    #[test]
    fn median_is_order_insensitive() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![5.0]), 5.0);
    }
}
