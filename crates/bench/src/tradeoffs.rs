//! Design-tradeoff experiments: Figure 10 (shared vs separate hash tables),
//! Figure 11 (allocation block size), Figure 12 (basic vs optimised
//! allocator) and Table 3 (fine vs coarse step definition).

use crate::common::{banner, secs, ExpContext};
use apu_sim::Phase;
use hj_core::{HashTableMode, JoinConfig, Scheme, StepGranularity};
use mem_alloc::AllocatorKind;

/// Figure 10: elapsed time of the build phase of DD with separate and shared
/// hash tables (SHJ and PHJ).
pub fn fig10(ctx: &mut ExpContext) {
    banner("Figure 10: build phase of DD with separate and shared hash tables");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let mut rows = Vec::new();
    for (algo_label, cfg) in [
        (
            "Simple hash join",
            JoinConfig::shj(Scheme::data_dividing_paper()),
        ),
        (
            "Partitioned hash join",
            JoinConfig::phj(Scheme::data_dividing_paper()),
        ),
    ] {
        let mut per_mode = Vec::new();
        for mode in [HashTableMode::Separate, HashTableMode::Shared] {
            let out = ctx.run_join(&sys, &cfg.clone().with_hash_table(mode), &build, &probe);
            // The separate-table bar includes the merge it necessitates.
            let build_time = out.breakdown.get(Phase::Build) + out.breakdown.get(Phase::Merge);
            per_mode.push(build_time);
            rows.push(format!("{algo_label},{mode:?},{:.6}", build_time.as_secs()));
        }
        let gain = 100.0 * (1.0 - per_mode[1].as_secs() / per_mode[0].as_secs());
        println!(
            "{algo_label:<22} separate {:>8}  shared {:>8}  (shared wins by {gain:.0}%)",
            secs(per_mode[0]),
            secs(per_mode[1]),
        );
    }
    ctx.write_csv("fig10.csv", "algorithm,hash_table,build_phase_s", &rows);
}

/// Figure 11: total elapsed time and lock overhead of PHJ while sweeping the
/// allocation block size from 8 B to 32 KB, for DD, OL and PL.
pub fn fig11(ctx: &mut ExpContext) {
    banner("Figure 11: elapsed time (a) and lock overhead (b) vs allocation block size (PHJ)");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let schemes = [
        ("PHJ-DD", Scheme::data_dividing_paper()),
        ("PHJ-OL", Scheme::offload_gpu()),
        ("PHJ-PL", Scheme::pipelined_paper()),
    ];
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>10} {:>12} {:>14}",
        "block", "variant", "elapsed(s)", "lock ovh(s)"
    );
    let mut size = 8usize;
    while size <= 32 * 1024 {
        for (label, scheme) in &schemes {
            let cfg = JoinConfig::phj(scheme.clone())
                .with_allocator(AllocatorKind::Block { block_size: size });
            let out = ctx.run_join(&sys, &cfg, &build, &probe);
            println!(
                "{:<10} {:>10} {:>12.3} {:>14.3}",
                format!("{size}B"),
                label,
                out.total_time().as_secs(),
                out.counters.lock_overhead.as_secs()
            );
            rows.push(format!(
                "{size},{label},{:.6},{:.6}",
                out.total_time().as_secs(),
                out.counters.lock_overhead.as_secs()
            ));
        }
        size *= 2;
    }
    ctx.write_csv(
        "fig11.csv",
        "block_bytes,variant,elapsed_s,lock_overhead_s",
        &rows,
    );
    println!("(the paper's sweet spot is 2 KB; beyond that the curves flatten)");
}

/// Figure 12: hash-join performance with the basic and the optimised memory
/// allocator, for SHJ and PHJ under DD, OL and PL.
pub fn fig12(ctx: &mut ExpContext) {
    banner("Figure 12: basic vs optimised memory allocator");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let mut rows = Vec::new();
    type MakeConfig = fn(Scheme) -> JoinConfig;
    let algos: [(&str, MakeConfig); 2] = [("SHJ", JoinConfig::shj), ("PHJ", JoinConfig::phj)];
    let schemes = [
        ("DD", Scheme::data_dividing_paper()),
        ("OL", Scheme::offload_gpu()),
        ("PL", Scheme::pipelined_paper()),
    ];
    // Run all Basic-allocator variants first, then all tuned ones, so the
    // pooled engine rebuilds its arena once per allocator design instead of
    // on every alternation.
    let mut timed = |allocator: AllocatorKind| -> Vec<f64> {
        let mut times = Vec::new();
        for (_, make) in algos {
            for (_, scheme) in &schemes {
                let out = ctx.run_join(
                    &sys,
                    &make(scheme.clone()).with_allocator(allocator),
                    &build,
                    &probe,
                );
                times.push(out.total_time().as_secs());
            }
        }
        times
    };
    let basic_times = timed(AllocatorKind::Basic);
    let ours_times = timed(AllocatorKind::tuned());
    for (i, (algo, _)) in algos.iter().enumerate() {
        for (j, (label, _)) in schemes.iter().enumerate() {
            let (basic, ours) = (
                basic_times[i * schemes.len() + j],
                ours_times[i * schemes.len() + j],
            );
            let gain = 100.0 * (1.0 - ours / basic);
            println!(
                "{algo}-{label:<3} Basic {:>8.3}  Ours {:>8.3}  (improvement {gain:.0}%)",
                basic, ours
            );
            rows.push(format!("{algo},{label},{basic:.6},{ours:.6},{gain:.1}"));
        }
    }
    ctx.write_csv(
        "fig12.csv",
        "algorithm,scheme,basic_s,ours_s,improvement_pct",
        &rows,
    );
}

/// Table 3: fine-grained (PHJ-PL) vs coarse-grained (PHJ-PL') step
/// definition — L2 misses, miss ratio and elapsed time.
pub fn table3(ctx: &mut ExpContext) {
    banner("Table 3: fine-grained vs coarse-grained step definitions in PL");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let fine = ctx.run_join(
        &sys,
        &JoinConfig::phj(Scheme::pipelined_paper()),
        &build,
        &probe,
    );
    let coarse = ctx.run_join(
        &sys,
        &JoinConfig::phj(Scheme::pipelined_paper()).with_granularity(StepGranularity::Coarse),
        &build,
        &probe,
    );
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>18} {:>16} {:>10}",
        "variant", "L2 misses (x1e6)", "miss ratio", "time (s)"
    );
    for (label, out) in [("PHJ-PL", &fine), ("PHJ-PL'", &coarse)] {
        let misses = out.counters.analytic_misses / 1e6;
        let ratio = out.counters.analytic_misses / out.counters.analytic_accesses.max(1.0);
        println!(
            "{:<10} {:>18.1} {:>15.1}% {:>10.3}",
            label,
            misses,
            ratio * 100.0,
            out.total_time().as_secs()
        );
        rows.push(format!(
            "{label},{misses:.2},{:.4},{:.6}",
            ratio,
            out.total_time().as_secs()
        ));
    }
    assert_eq!(
        fine.matches, coarse.matches,
        "both variants must agree on the result"
    );
    ctx.write_csv(
        "table3.csv",
        "variant,l2_misses_millions,miss_ratio,time_s",
        &rows,
    );
}
