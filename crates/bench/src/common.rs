//! Shared utilities of the experiment harness: scaling, workload caching,
//! CSV output and pretty-printing.

use apu_sim::SystemSpec;
use datagen::{DataGenConfig, KeyDistribution, Relation};
use hj_core::{arena_bytes_for, EngineConfig, JoinConfig, JoinEngine, JoinOutcome, JoinRequest};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// The paper's default cardinality (16 M tuples per relation).
pub const PAPER_TUPLES: usize = 16 * 1024 * 1024;

/// Reads the global scale divisor from `HJ_SCALE` (default 32).
///
/// Every cardinality in the experiments is divided by this factor; `1`
/// reproduces the paper's sizes, larger values shrink the workloads
/// proportionally so the whole suite finishes in minutes.
pub fn default_scale() -> usize {
    std::env::var("HJ_SCALE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(32)
}

/// Mutable state shared by all experiments of one invocation: the scale, the
/// output directory and a cache of generated relations (several experiments
/// reuse the default workload).
pub struct ExpContext {
    /// Scale divisor applied to all cardinalities.
    pub scale: usize,
    /// Directory receiving CSV output.
    pub out_dir: PathBuf,
    data_cache: HashMap<(usize, usize, u32, u32), (Relation, Relation)>,
    /// Long-lived engines keyed by system, reused (arena and all) across
    /// every run of an invocation; an engine is only rebuilt when a larger
    /// workload arrives.
    engines: Vec<(SystemSpec, JoinEngine)>,
}

impl ExpContext {
    /// Creates a context with the given scale, writing CSVs to `out_dir`.
    pub fn new(scale: usize, out_dir: impl Into<PathBuf>) -> Self {
        let out_dir = out_dir.into();
        let _ = fs::create_dir_all(&out_dir);
        ExpContext {
            scale: scale.max(1),
            out_dir,
            data_cache: HashMap::new(),
            engines: Vec::new(),
        }
    }

    /// A context using [`default_scale`] and the workspace `results/`
    /// directory.
    pub fn from_env() -> Self {
        ExpContext::new(default_scale(), "results")
    }

    /// The scaled equivalent of a paper-sized cardinality.
    pub fn scaled(&self, paper_tuples: usize) -> usize {
        (paper_tuples / self.scale).max(1)
    }

    /// The coupled APU system under test.
    pub fn coupled(&self) -> SystemSpec {
        SystemSpec::coupled_a8_3870k()
    }

    /// The emulated discrete system under test.
    pub fn discrete(&self) -> SystemSpec {
        SystemSpec::discrete_emulated()
    }

    /// Generates (and caches) a relation pair with the given *paper-scale*
    /// cardinalities, distribution and selectivity.
    pub fn relations(
        &mut self,
        paper_build: usize,
        paper_probe: usize,
        distribution: KeyDistribution,
        selectivity: f64,
    ) -> (Relation, Relation) {
        let build = self.scaled(paper_build);
        let probe = self.scaled(paper_probe);
        let key = (
            build,
            probe,
            (distribution.duplicate_fraction() * 1000.0) as u32,
            (selectivity * 1000.0) as u32,
        );
        self.data_cache
            .entry(key)
            .or_insert_with(|| {
                datagen::generate_pair(&DataGenConfig {
                    build_tuples: build,
                    probe_tuples: probe,
                    distribution,
                    selectivity,
                    seed: 42,
                })
            })
            .clone()
    }

    /// The paper's default workload (16 M ⨝ 16 M uniform, selectivity 1),
    /// scaled.
    pub fn default_relations(&mut self) -> (Relation, Relation) {
        self.relations(PAPER_TUPLES, PAPER_TUPLES, KeyDistribution::Uniform, 1.0)
    }

    /// Runs one join on `sys` through the pooled engine for that system.
    ///
    /// # Panics
    /// Panics on an invalid configuration or a failed execution — an
    /// experiment harness has no meaningful recovery.
    pub fn run_join(
        &mut self,
        sys: &SystemSpec,
        cfg: &JoinConfig,
        build: &Relation,
        probe: &Relation,
    ) -> JoinOutcome {
        let request =
            JoinRequest::from_config(cfg.clone()).expect("valid experiment configuration");
        self.run_request(sys, &request, build, probe)
    }

    /// Runs one join on `sys` through the pooled engine, taking the
    /// out-of-core path with the given chunk size.
    ///
    /// # Panics
    /// Panics on an invalid configuration or a failed execution.
    pub fn run_out_of_core(
        &mut self,
        sys: &SystemSpec,
        cfg: &JoinConfig,
        build: &Relation,
        probe: &Relation,
        chunk_tuples: usize,
    ) -> JoinOutcome {
        let request = JoinRequest::from_config(cfg.clone())
            .and_then(|r| r.with_out_of_core(chunk_tuples))
            .expect("valid experiment configuration");
        self.run_request(sys, &request, build, probe)
    }

    fn run_request(
        &mut self,
        sys: &SystemSpec,
        request: &JoinRequest,
        build: &Relation,
        probe: &Relation,
    ) -> JoinOutcome {
        let required = arena_bytes_for(build.len(), probe.len());
        let slot = self.engines.iter().position(|(s, _)| s == sys);
        let engine = match slot {
            Some(i) if self.engines[i].1.stats().arena_capacity >= required => {
                &mut self.engines[i].1
            }
            _ => {
                let config = EngineConfig::for_tuples(build.len(), probe.len())
                    .with_allocator(request.config().allocator);
                let engine = JoinEngine::for_system(sys.clone(), config)
                    .expect("experiment engine construction");
                match slot {
                    Some(i) => {
                        self.engines[i].1 = engine;
                        &mut self.engines[i].1
                    }
                    None => {
                        self.engines.push((sys.clone(), engine));
                        &mut self.engines.last_mut().expect("just pushed").1
                    }
                }
            }
        };
        engine
            .execute(request, build, probe)
            .expect("experiment join execution")
    }

    /// Writes `rows` as a CSV file named `name` (header first), returning
    /// the path.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) -> PathBuf {
        let path = self.out_dir.join(name);
        let mut content = String::with_capacity(rows.len() * 32 + header.len() + 1);
        content.push_str(header);
        content.push('\n');
        for row in rows {
            content.push_str(row);
            content.push('\n');
        }
        if let Ok(mut f) = fs::File::create(&path) {
            let _ = f.write_all(content.as_bytes());
        }
        path
    }
}

/// Renders a [`MetricsRegistry`] snapshot as one flat JSON object, the
/// `"metrics"` block every `BENCH_*.json` payload embeds so a perf
/// regression can be cross-read against the engine's own counters
/// without re-running the experiment.
///
/// Counters and gauges appear as `"name": value` (labels folded into the
/// key without quotes — `name{worker=0}` — so keys never need JSON
/// escaping); histograms contribute `_count`, `_p50_ms` and `_p99_ms`
/// entries.  The blob is indented to sit inside a top-level object.
///
/// [`MetricsRegistry`]: hj_metrics::MetricsRegistry
pub fn registry_json(registry: &hj_metrics::MetricsRegistry) -> String {
    use std::fmt::Write as _;
    let mut entries: Vec<String> = Vec::new();
    for sample in registry.snapshot() {
        let mut key = sample.name.to_string();
        if !sample.labels.is_empty() {
            key.push('{');
            for (i, (k, v)) in sample.labels.iter().enumerate() {
                if i > 0 {
                    key.push(',');
                }
                let _ = write!(key, "{k}={v}");
            }
            key.push('}');
        }
        match sample.value {
            hj_metrics::MetricValue::Counter(v) | hj_metrics::MetricValue::Gauge(v) => {
                entries.push(format!("\"{key}\": {v}"));
            }
            hj_metrics::MetricValue::Histogram(h) => {
                entries.push(format!("\"{key}_count\": {}", h.count()));
                entries.push(format!(
                    "\"{key}_p50_ms\": {:.6}",
                    h.quantile_ms(0.50).unwrap_or(0.0)
                ));
                entries.push(format!(
                    "\"{key}_p99_ms\": {:.6}",
                    h.quantile_ms(0.99).unwrap_or(0.0)
                ));
            }
        }
    }
    let mut out = String::from("{\n");
    for (i, entry) in entries.iter().enumerate() {
        out.push_str("    ");
        out.push_str(entry);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }");
    out
}

/// Reads a CI gate floor from environment variable `name`: a finite,
/// non-negative ratio, or `None` when unset.
///
/// Malformed values are a hard error rather than a silent fallback: these
/// knobs drive CI regression gates, and a typo that quietly disabled one
/// would neutralise the gate with exit code 0.
pub fn env_ratio_floor(name: &str) -> Option<f64> {
    let raw = std::env::var(name).ok()?;
    let floor: f64 = raw
        .parse()
        .unwrap_or_else(|_| panic!("{name}: {raw:?} is not a number"));
    assert!(
        floor.is_finite() && floor >= 0.0,
        "{name}: {floor} must be a finite, non-negative ratio"
    );
    Some(floor)
}

/// Prints a section header for an experiment.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats seconds with three decimals, the precision the paper's plots use.
pub fn secs(t: apu_sim::SimTime) -> String {
    format!("{:.3}", t.as_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_falls_back_to_default() {
        // Cannot reliably set env vars in parallel tests; just check the
        // default and the clamp path through a context.
        let ctx = ExpContext::new(0, std::env::temp_dir().join("hj-bench-test"));
        assert_eq!(ctx.scale, 1);
        assert!(default_scale() >= 1);
    }

    #[test]
    fn scaled_cardinalities_never_hit_zero() {
        let ctx = ExpContext::new(1_000_000, std::env::temp_dir().join("hj-bench-test"));
        assert_eq!(ctx.scaled(64), 1);
        assert_eq!(ctx.scaled(PAPER_TUPLES), 16);
    }

    #[test]
    fn relation_cache_returns_identical_data() {
        let mut ctx = ExpContext::new(4096, std::env::temp_dir().join("hj-bench-test"));
        let (r1, s1) = ctx.default_relations();
        let (r2, s2) = ctx.default_relations();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        assert_eq!(r1.len(), PAPER_TUPLES / 4096);
    }

    #[test]
    fn registry_json_is_flat_and_embedded_friendly() {
        let registry = hj_metrics::MetricsRegistry::new();
        registry.counter("bench_probe_total", "test counter").add(3);
        let labelled = registry.counter_with(
            "bench_labelled_total",
            &[("worker", "0".to_string())],
            "test labelled counter",
        );
        labelled.inc();
        registry
            .histogram("bench_probe_ns", "test histogram")
            .record(1_000_000);
        let json = registry_json(&registry);
        assert!(json.starts_with("{\n") && json.ends_with('}'));
        assert!(json.contains("\"bench_probe_total\": 3"));
        assert!(json.contains("\"bench_labelled_total{worker=0}\": 1"));
        assert!(json.contains("\"bench_probe_ns_count\": 1"));
        assert!(json.contains("\"bench_probe_ns_p50_ms\": "));
        // Embeddable: no trailing comma before the closing brace.
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn csv_is_written_with_header_and_rows() {
        let dir = std::env::temp_dir().join("hj-bench-test-csv");
        let ctx = ExpContext::new(64, &dir);
        let path = ctx.write_csv("probe.csv", "a,b", &["1,2".to_string(), "3,4".to_string()]);
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.starts_with("a,b\n"));
    }
}
