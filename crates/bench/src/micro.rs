//! Figure 20: the latch micro-benchmark on the CPU and the GPU.

use crate::common::{banner, ExpContext};
use apu_sim::{AtomicWorkload, DeviceSpec, LatchModel};

/// Figure 20: locking time of 16 M atomic increments over an array of `N`
/// integers, for uniform / low-skew / high-skew access on the CPU (256
/// concurrent work items) and the GPU (8192 work items).
pub fn fig20(ctx: &mut ExpContext) {
    banner("Figure 20: latch micro-benchmark (16M increments over an N-integer array)");
    let model = LatchModel::a8_3870k();
    let devices = [
        ("CPU", DeviceSpec::a8_3870k_cpu(), 256u64),
        ("GPU", DeviceSpec::a8_3870k_gpu(), 8192u64),
    ];
    let skews = [("uniform", 0.0), ("low-skew", 0.10), ("high-skew", 0.25)];

    let mut rows = Vec::new();
    for (dev_label, spec, threads) in &devices {
        println!("--- {dev_label} (K = {threads} work items) ---");
        println!(
            "{:>12} {:>12} {:>12} {:>12}",
            "N", "uniform(s)", "low-skew(s)", "high-skew(s)"
        );
        let mut n = 1u64;
        while n <= 16 * 1024 * 1024 {
            let mut cells = Vec::new();
            for (_, skew) in &skews {
                let workload = AtomicWorkload::paper(n, *threads, *skew);
                cells.push(model.locking_time(spec, &workload).as_secs());
            }
            println!(
                "{:>12} {:>12.3} {:>12.3} {:>12.3}",
                n, cells[0], cells[1], cells[2]
            );
            rows.push(format!(
                "{dev_label},{n},{:.6},{:.6},{:.6}",
                cells[0], cells[1], cells[2]
            ));
            n *= 4;
        }
    }
    println!("(contention dominates small arrays; cache misses dominate beyond 1M integers = 4MB,");
    println!(" where skewed access becomes slightly cheaper than uniform — as in the paper)");
    ctx.write_csv(
        "fig20.csv",
        "device,array_len,uniform_s,low_skew_s,high_skew_s",
        &rows,
    );
}
