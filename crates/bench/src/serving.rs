//! Open-loop tail latency of the TCP serving layer (`BENCH_serving`).
//!
//! Closed-loop harnesses (like [`crate::throughput`]) hide overload: a
//! slow reply delays the *next* request, so the measured latency flattens
//! exactly when a production system would be melting down.  This runner
//! does it the honest way — it first measures the closed-loop saturation
//! rate of one [`JoinServer`], then replays Poisson arrival schedules at
//! 0.5×, 0.9× and 1.2× of that rate where arrivals do **not** wait for
//! completions, and reports p50/p99/p99.9 latency measured from each
//! request's *scheduled* arrival time (so queueing counts against the
//! server, per the open-loop convention).
//!
//! At 1.2× the offered load exceeds what the engine can serve; the
//! admission controller's queue-time budget must convert the overflow
//! into typed `Overloaded` replies.  The runner hard-fails (exit 1) if
//! any request times out or dies on an untyped error, in any phase —
//! overload must surface as a shed, never as a hang.
//!
//! It emits `BENCH_serving.json` in the working directory so successive
//! PRs can track the trajectory.
//!
//! CI gating knobs (environment):
//!
//! * `HJ_SERVING_MAX_P99_MS="250"` — fail (exit 1) when the p99 of any
//!   *sub-saturation* phase (multiplier < 1) exceeds this many ms;
//! * `HJ_SERVING_REQUIRE_SHED=1` — fail when the overload phase
//!   (multiplier > 1) shed nothing, i.e. admission control never kicked
//!   in despite 1.2× offered load;
//! * `HJ_TRACE_MAX_OVERHEAD_PCT="5"` — fail when the closed-loop traced
//!   phase (every request opts into the flight recorder) runs more than
//!   this many percent slower than the identical untraced phase.  The
//!   traced phase must also add zero sheds — observability is not
//!   allowed to push the server into admission control.
//! * `HJ_SAMPLER_MAX_OVERHEAD_PCT="2"` — fail when the scrape-under-load
//!   phase (sampler thread on + `/metrics` and `/health` hammered over
//!   HTTP for the whole closed loop) runs more than this many percent
//!   slower than the identical phase with the sampler disabled and no
//!   scraping.

use crate::common::{banner, ExpContext};
use datagen::{Relation, SmallRng};
use hj_analysis::sync::Mutex;
use hj_core::server::{JoinClient, LatencyHistogram, RequestBuilder, SloConfig, WireRequest};
use hj_core::{EngineConfig, JoinEngine, JoinServer, NativeCpu, ServerConfig};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pooled sessions of the engine under test (also the closed-loop client
/// count used to find saturation).
const SESSIONS: usize = 4;

/// Queue-time budget handed to admission control: once the estimated wait
/// crosses this, new arrivals are shed instead of queued.
const QUEUE_BUDGET_MS: u32 = 100;

/// Requests per closed-loop client when measuring saturation.
const SATURATION_REQS_PER_CLIENT: usize = 48;

/// Offered-load multipliers of the open-loop phases, in run order.
const MULTIPLIERS: [f64; 3] = [0.5, 0.9, 1.2];

/// Wall-clock each open-loop phase aims to cover.
const PHASE_SECS: f64 = 2.0;

/// Requests per phase are clamped to this range so a very fast (or very
/// slow) host still measures something meaningful in bounded time.
const PHASE_REQS: (usize, usize) = (200, 1500);

/// Sender threads draining the arrival queue; bounds client-side
/// concurrency, while latency is still charged from the scheduled arrival.
const SENDERS: usize = 16;

/// Per-read client timeout — generous, because hitting it at all is a
/// hard failure (overload must shed, not hang).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Requests per client, per side, of the paired trace-overhead phase.
const TRACE_REQS_PER_CLIENT: usize = 16;

/// Requests per client, per side, of the paired sampler-overhead phase.
const SAMPLER_REQS_PER_CLIENT: usize = 16;

/// Sampler cadence of the sampled side of the sampler-overhead phase —
/// deliberately brisker than the engine default so the phase actually
/// exercises the snapshot path several times.
const SAMPLER_PHASE_INTERVAL: Duration = Duration::from_millis(50);

/// Pause between `/metrics` + `/health` scrape pairs on the sampled
/// side.  50 scrapes/sec is orders of magnitude hotter than any real
/// collector (Prometheus defaults to one per 15 s) while keeping the
/// scraper from degenerating into a busy-loop that measures CPU
/// contention instead of exposition cost.
const SCRAPE_INTERVAL: Duration = Duration::from_millis(20);

/// Outcome counters plus the latency histogram of one phase (or one
/// sender's share of it).
#[derive(Default)]
struct Tally {
    served: u64,
    shed: u64,
    timeouts: u64,
    errors: u64,
    latency: LatencyHistogram,
}

impl Tally {
    fn absorb(&mut self, other: &Tally) {
        self.served += other.served;
        self.shed += other.shed;
        self.timeouts += other.timeouts;
        self.errors += other.errors;
        self.latency.merge(&other.latency);
    }
}

/// One measured open-loop phase.
struct Phase {
    multiplier: f64,
    target_rps: f64,
    requests: usize,
    elapsed_secs: f64,
    tally: Tally,
}

impl Phase {
    fn p(&self, q: f64) -> f64 {
        self.tally.latency.quantile_ms(q).unwrap_or(0.0)
    }
}

fn request_for(build: &Relation, probe: &Relation) -> WireRequest {
    RequestBuilder::new(build.clone(), probe.clone()).build()
}

/// Sends one request, charging latency from `scheduled`; reconnects the
/// client after an I/O failure so one bad exchange cannot poison the rest
/// of the phase.
fn send_one(
    client: &mut JoinClient,
    addr: SocketAddr,
    request: WireRequest,
    scheduled: Instant,
    tally: &mut Tally,
) {
    use hj_core::server::ClientError;
    match client.join(request) {
        Ok(_) => {
            tally.served += 1;
            tally.latency.record(scheduled.elapsed().as_nanos() as u64);
        }
        Err(err) if err.is_overloaded() => tally.shed += 1,
        Err(ClientError::Io(io)) => {
            if matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                tally.timeouts += 1;
            } else {
                tally.errors += 1;
            }
            if let Ok(fresh) = JoinClient::connect_timeout(addr, CLIENT_TIMEOUT) {
                *client = fresh;
            }
        }
        Err(_) => tally.errors += 1,
    }
}

/// One `GET` against the server's HTTP exposition listener; true when a
/// complete `200` response came back.  Failures are tolerated (the server
/// may be mid-shutdown when the scrape loop winds down) — callers count
/// successes.
fn scrape_ok(addr: SocketAddr, target: &str) -> bool {
    use std::io::{Read, Write};
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return false;
    };
    if stream.set_read_timeout(Some(CLIENT_TIMEOUT)).is_err() {
        return false;
    }
    if stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .is_err()
    {
        return false;
    }
    let mut body = String::new();
    stream.read_to_string(&mut body).is_ok() && body.starts_with("HTTP/1.1 200")
}

/// Closed-loop saturation: [`SESSIONS`] clients back to back, each its own
/// connection.  This also warms the admission controller's service-time
/// estimate with real measurements before any open-loop phase runs.
fn measure_saturation(addr: SocketAddr, build: &Relation, probe: &Relation) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..SESSIONS {
            scope.spawn(|| {
                let mut client = JoinClient::connect_timeout(addr, CLIENT_TIMEOUT)
                    .expect("saturation client connect");
                for _ in 0..SATURATION_REQS_PER_CLIENT {
                    client
                        .join(request_for(build, probe))
                        .expect("saturation request failed");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    (SESSIONS * SATURATION_REQS_PER_CLIENT) as f64 / elapsed.max(1e-9)
}

/// Replays a Poisson arrival schedule at `target_rps` against `addr`.
fn run_phase(
    addr: SocketAddr,
    build: &Relation,
    probe: &Relation,
    multiplier: f64,
    target_rps: f64,
    rng: &mut SmallRng,
) -> Phase {
    let requests = ((target_rps * PHASE_SECS) as usize).clamp(PHASE_REQS.0, PHASE_REQS.1);
    // Exponential inter-arrival gaps, drawn up front so the dispatch loop
    // below only sleeps and sends.
    let mut offsets = Vec::with_capacity(requests);
    let mut t = 0.0f64;
    for _ in 0..requests {
        // -ln(1-U)/λ; 1-U avoids ln(0).
        t += -(1.0 - rng.random_unit()).ln() / target_rps;
        offsets.push(t);
    }

    let (tx, rx) = mpsc::channel::<Instant>();
    let rx = Arc::new(Mutex::new("bench.serving_rx", rx));
    let start = Instant::now();
    let tally = std::thread::scope(|scope| {
        let senders: Vec<_> = (0..SENDERS)
            .map(|_| {
                let rx = Arc::clone(&rx);
                scope.spawn(move || {
                    let mut client = JoinClient::connect_timeout(addr, CLIENT_TIMEOUT)
                        .expect("phase client connect");
                    let mut tally = Tally::default();
                    loop {
                        // Holding the lock while blocked on `recv` is fine:
                        // it releases the moment a job (or the hangup)
                        // arrives, so the queue drains one job at a time.
                        let job = { rx.lock().recv() };
                        let Ok(scheduled) = job else { break };
                        send_one(
                            &mut client,
                            addr,
                            request_for(build, probe),
                            scheduled,
                            &mut tally,
                        );
                    }
                    tally
                })
            })
            .collect();

        // Open-loop dispatch: sleep to each scheduled arrival and enqueue
        // it regardless of how far behind the senders are.
        for &offset in &offsets {
            let scheduled = start + Duration::from_secs_f64(offset);
            if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            tx.send(scheduled).expect("senders alive while dispatching");
        }
        drop(tx); // hang up: senders drain the queue and exit

        let mut total = Tally::default();
        for sender in senders {
            total.absorb(&sender.join().expect("sender thread panicked"));
        }
        total
    });

    Phase {
        multiplier,
        target_rps,
        requests,
        elapsed_secs: start.elapsed().as_secs_f64(),
        tally,
    }
}

/// `serving`: open-loop tail latency of the TCP serving layer at
/// 0.5×/0.9×/1.2× of measured saturation.
pub fn serving(ctx: &mut ExpContext) {
    banner("BENCH_serving: open-loop tail latency of the TCP serving layer");
    let (build, probe) = ctx.relations(
        256 * 1024,
        512 * 1024,
        datagen::KeyDistribution::Uniform,
        1.0,
    );
    let engine = Arc::new(
        JoinEngine::new(
            Box::new(NativeCpu::new()),
            // A deep engine queue lets Poisson bursts wait their turn; the
            // admission controller's *time* budget (not a fixed depth) is
            // what sheds sustained overload.
            EngineConfig::for_tuples(build.len(), probe.len())
                .sessions(SESSIONS)
                .queue_depth(256),
        )
        .expect("valid serving engine config"),
    );
    let server = JoinServer::start(
        Arc::clone(&engine),
        ServerConfig::default().slo(SloConfig::default().queue_budget_ms(QUEUE_BUDGET_MS)),
    )
    .expect("serving bench server start");
    let addr = server.local_addr();

    let sat_rps = measure_saturation(addr, &build, &probe);
    println!(
        "workload: {} x {} tuples, {} sessions, queue budget {} ms",
        build.len(),
        probe.len(),
        SESSIONS,
        QUEUE_BUDGET_MS
    );
    println!("closed-loop saturation: {sat_rps:.1} requests/sec");
    println!(
        "{:>6} {:>10} {:>6} {:>7} {:>6} {:>9} {:>9} {:>9}",
        "load", "target/s", "sent", "served", "shed", "p50(ms)", "p99(ms)", "p999(ms)"
    );

    let mut rng = SmallRng::seed_from_u64(0x5e41);
    let mut phases = Vec::new();
    for multiplier in MULTIPLIERS {
        let phase = run_phase(
            addr,
            &build,
            &probe,
            multiplier,
            multiplier * sat_rps,
            &mut rng,
        );
        println!(
            "{:>5.1}x {:>10.1} {:>6} {:>7} {:>6} {:>9.2} {:>9.2} {:>9.2}",
            phase.multiplier,
            phase.target_rps,
            phase.requests,
            phase.tally.served,
            phase.tally.shed,
            phase.p(0.50),
            phase.p(0.99),
            phase.p(0.999),
        );
        phases.push(phase);
        // Let the backlog drain so one phase's queue does not leak into
        // the next phase's latency.
        std::thread::sleep(Duration::from_millis(200));
    }

    // --- trace overhead phase: the same closed-loop stream, untraced vs
    // traced.  The flight recorder is assembled from data the join already
    // produced, so opting every request in must cost ≈ nothing and must
    // never tip the server into shedding.
    let shed_before = server.stats().requests_shed;
    let run_traced = |trace: bool| -> f64 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..SESSIONS {
                scope.spawn(|| {
                    let mut client = JoinClient::connect_timeout(addr, CLIENT_TIMEOUT)
                        .expect("trace-phase client connect");
                    for _ in 0..TRACE_REQS_PER_CLIENT {
                        let request = RequestBuilder::new(build.clone(), probe.clone())
                            .trace(trace)
                            .build();
                        let outcome = client.join(request).expect("trace-phase request");
                        assert_eq!(outcome.trace.is_some(), trace, "flight recorder is opt-in");
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    };
    // Interleaved rounds, best-of per side: a slow host period cannot
    // charge all its noise to one mode.
    let mut untraced_secs = f64::MAX;
    let mut traced_secs = f64::MAX;
    for _ in 0..2 {
        untraced_secs = untraced_secs.min(run_traced(false));
        traced_secs = traced_secs.min(run_traced(true));
    }
    let trace_overhead_pct = (traced_secs / untraced_secs.max(1e-9) - 1.0) * 100.0;
    let added_sheds = server.stats().requests_shed - shed_before;
    println!(
        "trace overhead: untraced {untraced_secs:.3}s vs traced {traced_secs:.3}s \
         ({trace_overhead_pct:+.2}%), {added_sheds} sheds added"
    );
    assert_eq!(
        added_sheds, 0,
        "the closed-loop trace phase must never push the server into shedding"
    );

    // --- sampler overhead phase: the same closed-loop stream on a fresh
    // engine+server pair per side — sampler off and unscraped vs sampler
    // on with `/metrics` + `/health` hammered over HTTP throughout.  The
    // sampler snapshots relaxed atomics off the hot path, so continuous
    // profiling must cost ≈ nothing.
    let run_sampled = |sampled: bool| -> f64 {
        let config = EngineConfig::for_tuples(build.len(), probe.len())
            .sessions(SESSIONS)
            .queue_depth(256)
            .sample_interval(if sampled {
                SAMPLER_PHASE_INTERVAL
            } else {
                Duration::ZERO
            });
        let engine = JoinEngine::new(Box::new(NativeCpu::new()), config)
            .expect("valid sampler-phase engine config");
        let server_config = if sampled {
            ServerConfig::default().http_addr("127.0.0.1:0")
        } else {
            ServerConfig::default()
        };
        let server =
            JoinServer::start(Arc::new(engine), server_config).expect("sampler-phase server");
        let addr = server.local_addr();
        let http_addr = server.http_local_addr();
        let stop = std::sync::atomic::AtomicBool::new(false);

        let elapsed = std::thread::scope(|scope| {
            if let Some(http_addr) = http_addr {
                let stop = &stop;
                scope.spawn(move || {
                    let mut good = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        for target in ["/metrics", "/health"] {
                            if scrape_ok(http_addr, target) {
                                good += 1;
                            }
                        }
                        std::thread::sleep(SCRAPE_INTERVAL);
                    }
                    assert!(good > 0, "the scrape loop must land at least one scrape");
                });
            }
            let start = Instant::now();
            std::thread::scope(|inner| {
                for _ in 0..SESSIONS {
                    inner.spawn(|| {
                        let mut client = JoinClient::connect_timeout(addr, CLIENT_TIMEOUT)
                            .expect("sampler-phase client connect");
                        for _ in 0..SAMPLER_REQS_PER_CLIENT {
                            client
                                .join(request_for(&build, &probe))
                                .expect("sampler-phase request");
                        }
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            stop.store(true, std::sync::atomic::Ordering::Release);
            elapsed
        });
        drop(server); // graceful shutdown before the next side starts
        elapsed
    };
    let mut unsampled_secs = f64::MAX;
    let mut sampled_secs = f64::MAX;
    for _ in 0..2 {
        unsampled_secs = unsampled_secs.min(run_sampled(false));
        sampled_secs = sampled_secs.min(run_sampled(true));
    }
    let sampler_overhead_pct = (sampled_secs / unsampled_secs.max(1e-9) - 1.0) * 100.0;
    println!(
        "sampler overhead: unsampled {unsampled_secs:.3}s vs sampled+scraped \
         {sampled_secs:.3}s ({sampler_overhead_pct:+.2}%)"
    );

    let stats = server.stats();
    println!(
        "server: {} served, {} shed (deadline {}, quota {}, queue {}, saturated {}), \
         {} failed, {} protocol errors",
        stats.requests_served,
        stats.requests_shed,
        stats.shed_deadline,
        stats.shed_quota,
        stats.shed_queue_budget,
        stats.shed_saturated,
        stats.requests_failed,
        stats.protocol_errors
    );

    let registry_metrics = crate::common::registry_json(engine.metrics_registry());
    let json = render_json(
        build.len(),
        probe.len(),
        sat_rps,
        trace_overhead_pct,
        sampler_overhead_pct,
        &phases,
        &registry_metrics,
    );
    let path = "BENCH_serving.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let rows: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "{},{:.1},{},{},{},{},{},{:.3},{:.3},{:.3}",
                p.multiplier,
                p.target_rps,
                p.requests,
                p.tally.served,
                p.tally.shed,
                p.tally.timeouts,
                p.tally.errors,
                p.p(0.50),
                p.p(0.99),
                p.p(0.999),
            )
        })
        .collect();
    ctx.write_csv(
        "serving.csv",
        "multiplier,target_rps,requests,served,shed,timeouts,errors,p50_ms,p99_ms,p999_ms",
        &rows,
    );

    // Unconditional correctness gates: every request in every phase got a
    // typed answer — served or shed — never a timeout or an untyped error,
    // and nothing fell through the accounting.
    for p in &phases {
        if p.tally.timeouts > 0 || p.tally.errors > 0 {
            eprintln!(
                "FAIL: {:.1}x phase had {} timeouts and {} untyped errors — overload must \
                 surface as typed Overloaded replies",
                p.multiplier, p.tally.timeouts, p.tally.errors
            );
            std::process::exit(1);
        }
        let answered = p.tally.served + p.tally.shed;
        if answered != p.requests as u64 {
            eprintln!(
                "FAIL: {:.1}x phase sent {} requests but accounted for {answered}",
                p.multiplier, p.requests
            );
            std::process::exit(1);
        }
    }

    // Optional CI gates.
    if let Some(ceiling) = crate::common::env_ratio_floor("HJ_SERVING_MAX_P99_MS") {
        for p in phases.iter().filter(|p| p.multiplier < 1.0) {
            let p99 = p.p(0.99);
            println!(
                "gate: {:.1}x p99 {p99:.2} ms vs ceiling {ceiling} ms",
                p.multiplier
            );
            if p99 > ceiling {
                eprintln!(
                    "FAIL: p99 at {:.1}x load is {p99:.2} ms, above HJ_SERVING_MAX_P99_MS={ceiling}",
                    p.multiplier
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(cap) = crate::common::env_ratio_floor("HJ_TRACE_MAX_OVERHEAD_PCT") {
        println!("gate: trace overhead {trace_overhead_pct:+.2}% vs cap {cap}%");
        if trace_overhead_pct > cap {
            eprintln!(
                "FAIL: traced joins are {trace_overhead_pct:.2}% slower than untraced \
                 (HJ_TRACE_MAX_OVERHEAD_PCT={cap})"
            );
            std::process::exit(1);
        }
    }
    if let Some(cap) = crate::common::env_ratio_floor("HJ_SAMPLER_MAX_OVERHEAD_PCT") {
        println!("gate: sampler overhead {sampler_overhead_pct:+.2}% vs cap {cap}%");
        if sampler_overhead_pct > cap {
            eprintln!(
                "FAIL: the sampled+scraped closed loop is {sampler_overhead_pct:.2}% slower \
                 than the unsampled one (HJ_SAMPLER_MAX_OVERHEAD_PCT={cap})"
            );
            std::process::exit(1);
        }
    }
    if std::env::var("HJ_SERVING_REQUIRE_SHED").is_ok_and(|v| v == "1") {
        let overload_shed: u64 = phases
            .iter()
            .filter(|p| p.multiplier > 1.0)
            .map(|p| p.tally.shed)
            .sum();
        if overload_shed == 0 {
            eprintln!(
                "FAIL: the overload phase shed nothing — admission control never engaged \
                 despite {}x offered load",
                MULTIPLIERS[MULTIPLIERS.len() - 1]
            );
            std::process::exit(1);
        }
        println!("gate: overload phase shed {overload_shed} requests (> 0)");
    }
}

fn render_json(
    build_tuples: usize,
    probe_tuples: usize,
    sat_rps: f64,
    trace_overhead_pct: f64,
    sampler_overhead_pct: f64,
    phases: &[Phase],
    registry_metrics: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"serving-tail-latency\",\n");
    out.push_str("  \"backend\": \"native-cpu\",\n");
    out.push_str(&format!("  \"sessions\": {SESSIONS},\n"));
    out.push_str(&format!("  \"queue_budget_ms\": {QUEUE_BUDGET_MS},\n"));
    out.push_str(&format!("  \"build_tuples\": {build_tuples},\n"));
    out.push_str(&format!("  \"probe_tuples\": {probe_tuples},\n"));
    out.push_str(&format!("  \"saturation_rps\": {sat_rps:.1},\n"));
    out.push_str(&format!(
        "  \"trace_overhead_pct\": {trace_overhead_pct:.2},\n"
    ));
    out.push_str(&format!(
        "  \"sampler_overhead_pct\": {sampler_overhead_pct:.2},\n"
    ));
    out.push_str(&format!("  \"metrics\": {registry_metrics},\n"));
    out.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"multiplier\": {}, \"target_rps\": {:.1}, \"requests\": {}, \
             \"served\": {}, \"shed\": {}, \"timeouts\": {}, \"errors\": {}, \
             \"elapsed_secs\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"p999_ms\": {:.3}}}{}\n",
            p.multiplier,
            p.target_rps,
            p.requests,
            p.tally.served,
            p.tally.shed,
            p.tally.timeouts,
            p.tally.errors,
            p.elapsed_secs,
            p.p(0.50),
            p.p(0.99),
            p.p(0.999),
            if i + 1 < phases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough_to_diff() {
        let mut warm = Tally {
            served: 10,
            ..Tally::default()
        };
        warm.latency.record(1_000_000);
        let phases = vec![
            Phase {
                multiplier: 0.5,
                target_rps: 100.0,
                requests: 10,
                elapsed_secs: 0.1,
                tally: warm,
            },
            Phase {
                multiplier: 1.2,
                target_rps: 240.0,
                requests: 12,
                elapsed_secs: 0.1,
                tally: Tally::default(),
            },
        ];
        let json = render_json(1000, 2000, 200.0, 1.25, 0.75, &phases, "{\n  }");
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"multiplier\"").count(), 2);
        assert!(json.contains("\"saturation_rps\": 200.0"));
        assert!(json.contains("\"trace_overhead_pct\": 1.25"));
        assert!(json.contains("\"sampler_overhead_pct\": 0.75"));
        assert!(json.contains("\"metrics\": {\n  },"));
        // One comma between the two phase rows, one after the metrics blob.
        assert_eq!(json.matches("},\n").count(), 2);
    }

    #[test]
    fn tallies_merge_across_senders() {
        let mut a = Tally {
            served: 3,
            ..Tally::default()
        };
        a.latency.record(500);
        let mut b = Tally {
            shed: 2,
            timeouts: 1,
            ..Tally::default()
        };
        b.latency.record(1500);
        a.absorb(&b);
        assert_eq!(a.served, 3);
        assert_eq!(a.shed, 2);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.latency.count(), 2);
    }

    #[test]
    fn phase_sizes_stay_bounded() {
        for rps in [1.0, 50.0, 1e6] {
            let n = ((rps * PHASE_SECS) as usize).clamp(PHASE_REQS.0, PHASE_REQS.1);
            assert!((PHASE_REQS.0..=PHASE_REQS.1).contains(&n));
        }
    }
}
