//! Time-breakdown experiments: Figure 3 (discrete vs coupled), Figure 15
//! (join selectivity) and Figure 19 (out-of-core joins).

use crate::common::{banner, secs, ExpContext, PAPER_TUPLES};
use apu_sim::{Phase, SystemSpec, Topology};
use datagen::KeyDistribution;
use hj_core::{JoinConfig, JoinOutcome, Scheme};

fn breakdown_row(label: &str, arch: &str, out: &JoinOutcome) -> (String, String) {
    let printable = format!(
        "{:<10} {:<9} transfer {:>7} merge {:>7} partition {:>7} build {:>7} probe {:>7} | total {:>7}",
        label,
        arch,
        secs(out.breakdown.get(Phase::DataTransfer)),
        secs(out.breakdown.get(Phase::Merge)),
        secs(out.breakdown.get(Phase::Partition)),
        secs(out.breakdown.get(Phase::Build)),
        secs(out.breakdown.get(Phase::Probe)),
        secs(out.total_time()),
    );
    let csv = format!(
        "{label},{arch},{},{:.6}",
        out.breakdown.csv_row(),
        out.total_time().as_secs()
    );
    (printable, csv)
}

/// Figure 3: time breakdown of SHJ-DD / SHJ-OL / PHJ-DD / PHJ-OL on the
/// emulated discrete architecture and on the coupled architecture.
pub fn fig03(ctx: &mut ExpContext) {
    banner("Figure 3: time breakdown on discrete and coupled architectures");
    let (build, probe) = ctx.default_relations();
    // The workload ratios the paper reports for the discrete architecture.
    let dd_discrete = Scheme::DataDividing {
        partition_ratio: 0.11,
        build_ratio: 0.25,
        probe_ratio: 0.42,
    };
    let variants: Vec<(&str, JoinConfig)> = vec![
        ("SHJ-DD", JoinConfig::shj(dd_discrete.clone())),
        ("SHJ-OL", JoinConfig::shj(Scheme::offload_gpu())),
        ("PHJ-DD", JoinConfig::phj(dd_discrete)),
        ("PHJ-OL", JoinConfig::phj(Scheme::offload_gpu())),
    ];
    let mut rows = Vec::new();
    for (label, cfg) in &variants {
        for (arch, sys) in [("discrete", ctx.discrete()), ("coupled", ctx.coupled())] {
            let out = ctx.run_join(&sys, cfg, &build, &probe);
            let (line, csv) = breakdown_row(label, arch, &out);
            println!("{line}");
            rows.push(csv);
        }
    }
    let header = format!(
        "variant,architecture,{},total",
        apu_sim::PhaseBreakdown::csv_header()
    );
    ctx.write_csv("fig03.csv", &header, &rows);
    println!("(transfer and merge exist only on the discrete architecture, as in the paper)");
}

/// Figure 15: PHJ time breakdown with join selectivity 12.5 %, 50 % and
/// 100 % for DD, OL and PL.
pub fn fig15(ctx: &mut ExpContext) {
    banner("Figure 15: PHJ with join selectivity varied");
    let sys = ctx.coupled();
    let mut rows = Vec::new();
    for selectivity in [0.125, 0.5, 1.0] {
        let (build, probe) = ctx.relations(
            PAPER_TUPLES,
            PAPER_TUPLES,
            KeyDistribution::Uniform,
            selectivity,
        );
        for (label, scheme) in [
            ("DD", Scheme::data_dividing_paper()),
            ("OL", Scheme::offload_gpu()),
            ("PL", Scheme::pipelined_paper()),
        ] {
            let out = ctx.run_join(&sys, &JoinConfig::phj(scheme), &build, &probe);
            println!(
                "selectivity {:>5.1}% {:<3} partition {:>7} build {:>7} probe {:>7} | total {:>7} ({} matches)",
                selectivity * 100.0,
                label,
                secs(out.breakdown.get(Phase::Partition)),
                secs(out.breakdown.get(Phase::Build)),
                secs(out.breakdown.get(Phase::Probe)),
                secs(out.total_time()),
                out.matches,
            );
            rows.push(format!(
                "{selectivity},{label},{:.6},{:.6},{:.6},{:.6},{}",
                out.breakdown.get(Phase::Partition).as_secs(),
                out.breakdown.get(Phase::Build).as_secs(),
                out.breakdown.get(Phase::Probe).as_secs(),
                out.total_time().as_secs(),
                out.matches
            ));
        }
    }
    ctx.write_csv(
        "fig15.csv",
        "selectivity,scheme,partition_s,build_s,probe_s,total_s,matches",
        &rows,
    );
}

/// Figure 19: joins on data sets larger than the zero-copy buffer
/// (16 M – 128 M tuples per relation at paper scale), SHJ-PL vs PHJ-PL on
/// each partition pair.
pub fn fig19(ctx: &mut ExpContext) {
    banner("Figure 19: large data sets beyond the zero-copy buffer (|R| = |S|)");
    // Shrink the zero-copy buffer with the scale so the spill behaviour is
    // identical to the paper's at any HJ_SCALE.
    let mut sys: SystemSpec = ctx.coupled();
    let buffer = (512 * 1024 * 1024) / ctx.scale;
    sys.topology = Topology::Coupled {
        shared_cache_bytes: 4 * 1024 * 1024,
        zero_copy_bytes: buffer,
    };
    let chunk = ctx.scaled(PAPER_TUPLES);
    let mut rows = Vec::new();
    for paper_tuples in [16, 32, 64, 128] {
        let n = paper_tuples * 1024 * 1024;
        let (build, probe) = ctx.relations(n, n, KeyDistribution::Uniform, 1.0);
        for (label, cfg) in [
            ("SHJ-PL", JoinConfig::shj(Scheme::pipelined_paper())),
            ("PHJ-PL", JoinConfig::phj(Scheme::pipelined_paper())),
        ] {
            let out = ctx.run_out_of_core(&sys, &cfg, &build, &probe, chunk);
            let join_time = out.breakdown.get(Phase::Build)
                + out.breakdown.get(Phase::Probe)
                + out.breakdown.get(Phase::Merge);
            println!(
                "|R|=|S|={:>4}M {:<7} partition {:>8} join {:>8} copy {:>8} | total {:>8}",
                paper_tuples,
                label,
                secs(out.breakdown.get(Phase::Partition)),
                secs(join_time),
                secs(out.breakdown.get(Phase::DataCopy)),
                secs(out.total_time()),
            );
            rows.push(format!(
                "{paper_tuples},{label},{:.6},{:.6},{:.6},{:.6}",
                out.breakdown.get(Phase::Partition).as_secs(),
                join_time.as_secs(),
                out.breakdown.get(Phase::DataCopy).as_secs(),
                out.total_time().as_secs()
            ));
        }
    }
    ctx.write_csv(
        "fig19.csv",
        "tuples_millions_paper_scale,variant,partition_s,join_s,copy_s,total_s",
        &rows,
    );
}
