//! End-to-end comparisons: Figures 13, 14 (size sweeps on uniform and
//! high-skew data), Figure 16 (BasicUnit vs fine-grained co-processing) and
//! Figures 17–18 (observed BasicUnit ratios).

use crate::common::{banner, ExpContext, PAPER_TUPLES};
use costmodel::{calibrate_from_relations, tune_scheme, JoinCostModel};
use datagen::KeyDistribution;
use hj_core::{Algorithm, JoinConfig, Scheme};

/// The build-relation sizes of Figures 13/14, expressed at paper scale.
fn build_sizes() -> Vec<usize> {
    vec![
        64 * 1024,
        128 * 1024,
        256 * 1024,
        512 * 1024,
        1024 * 1024,
        2 * 1024 * 1024,
        4 * 1024 * 1024,
        6 * 1024 * 1024,
        8 * 1024 * 1024,
        10 * 1024 * 1024,
        12 * 1024 * 1024,
        14 * 1024 * 1024,
        16 * 1024 * 1024,
    ]
}

fn size_sweep(ctx: &mut ExpContext, distribution: KeyDistribution, csv_name: &str, title: &str) {
    banner(title);
    let sys = ctx.coupled();
    let variants = [
        ("CPU-only", Scheme::CpuOnly),
        ("DD", Scheme::data_dividing_paper()),
        ("OL", Scheme::offload_gpu()),
        ("PL", Scheme::pipelined_paper()),
    ];
    let mut rows = Vec::new();
    for (algo_label, phj) in [("SHJ", false), ("PHJ", true)] {
        println!("--- {algo_label} ---");
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12}",
            "|R|", "CPU-only(s)", "DD(s)", "OL(s)", "PL(s)"
        );
        for &paper_build in &build_sizes() {
            let (build, probe) = ctx.relations(paper_build, PAPER_TUPLES, distribution, 1.0);
            let mut cells = Vec::new();
            for (_, scheme) in &variants {
                let cfg = if phj {
                    JoinConfig::phj(scheme.clone())
                } else {
                    JoinConfig::shj(scheme.clone())
                };
                let out = ctx.run_join(&sys, &cfg, &build, &probe);
                cells.push(out.total_time().as_secs());
            }
            println!(
                "{:>10} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                format_size(paper_build),
                cells[0],
                cells[1],
                cells[2],
                cells[3]
            );
            rows.push(format!(
                "{algo_label},{paper_build},{:.6},{:.6},{:.6},{:.6}",
                cells[0], cells[1], cells[2], cells[3]
            ));
        }
    }
    ctx.write_csv(
        csv_name,
        "algorithm,build_tuples_paper_scale,cpu_only_s,dd_s,ol_s,pl_s",
        &rows,
    );
}

fn format_size(n: usize) -> String {
    if n >= 1024 * 1024 {
        format!("{}M", n / (1024 * 1024))
    } else {
        format!("{}K", n / 1024)
    }
}

/// Figure 13: elapsed time vs build-relation size on the uniform data set.
pub fn fig13(ctx: &mut ExpContext) {
    size_sweep(
        ctx,
        KeyDistribution::Uniform,
        "fig13.csv",
        "Figure 13: elapsed time comparison on the uniform data set (probe fixed at 16M)",
    );
}

/// Figure 14: elapsed time vs build-relation size on the high-skew data set.
pub fn fig14(ctx: &mut ExpContext) {
    size_sweep(
        ctx,
        KeyDistribution::high_skew(),
        "fig14.csv",
        "Figure 14: elapsed time comparison on the high-skew data set (probe fixed at 16M)",
    );
}

/// Figure 16: BasicUnit vs the fine-grained co-processing variants, plus the
/// paper's headline improvement percentages (PL vs CPU-only / GPU-only / DD).
pub fn fig16(ctx: &mut ExpContext) {
    banner("Figure 16: BasicUnit vs fine-grained co-processing (and headline improvements)");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();

    // Tune PL and DD ratios with the cost model, as the paper does.
    let shj_model = JoinCostModel::new(calibrate_from_relations(
        &sys,
        &build,
        &probe,
        Algorithm::Simple,
    ));
    let shj_tuned = tune_scheme(
        &shj_model,
        build.len(),
        probe.len(),
        Algorithm::Simple,
        0.02,
    );
    let phj_model = JoinCostModel::new(calibrate_from_relations(
        &sys,
        &build,
        &probe,
        Algorithm::partitioned_auto(),
    ));
    let phj_tuned = tune_scheme(
        &phj_model,
        build.len(),
        probe.len(),
        Algorithm::partitioned_auto(),
        0.02,
    );

    // Scale the BasicUnit chunk with the workload so the scheduler still
    // dispatches many chunks at reduced HJ_SCALE.
    let basic_unit = Scheme::BasicUnit {
        chunk_tuples: ctx.scaled(256 * 1024).max(1024),
    };
    let mut rows = Vec::new();
    let mut summary: Vec<(String, f64)> = Vec::new();
    for (algo, tuned, make) in [
        (
            "SHJ",
            &shj_tuned,
            JoinConfig::shj as fn(Scheme) -> JoinConfig,
        ),
        (
            "PHJ",
            &phj_tuned,
            JoinConfig::phj as fn(Scheme) -> JoinConfig,
        ),
    ] {
        let basic_unit = ctx.run_join(&sys, &make(basic_unit.clone()), &build, &probe);
        let dd = ctx.run_join(&sys, &make(tuned.data_dividing.clone()), &build, &probe);
        let pl = ctx.run_join(&sys, &make(tuned.pipelined.clone()), &build, &probe);
        let cpu = ctx.run_join(&sys, &make(Scheme::CpuOnly), &build, &probe);
        let gpu = ctx.run_join(&sys, &make(Scheme::GpuOnly), &build, &probe);
        println!(
            "{algo}: BasicUnit {:.3}s  DD {:.3}s  PL {:.3}s  (CPU-only {:.3}s, GPU-only {:.3}s)",
            basic_unit.total_time().as_secs(),
            dd.total_time().as_secs(),
            pl.total_time().as_secs(),
            cpu.total_time().as_secs(),
            gpu.total_time().as_secs()
        );
        let pct = |slow: f64, fast: f64| 100.0 * (1.0 - fast / slow);
        let vs_cpu = pct(cpu.total_time().as_secs(), pl.total_time().as_secs());
        let vs_gpu = pct(gpu.total_time().as_secs(), pl.total_time().as_secs());
        let vs_dd = pct(dd.total_time().as_secs(), pl.total_time().as_secs());
        let vs_basic = pct(basic_unit.total_time().as_secs(), pl.total_time().as_secs());
        println!(
            "  {algo}-PL improvement: {vs_cpu:.0}% over CPU-only, {vs_gpu:.0}% over GPU-only, {vs_dd:.0}% over DD, {vs_basic:.0}% over BasicUnit"
        );
        summary.push((format!("{algo} PL vs CPU-only"), vs_cpu));
        summary.push((format!("{algo} PL vs GPU-only"), vs_gpu));
        summary.push((format!("{algo} PL vs DD"), vs_dd));
        rows.push(format!(
            "{algo},{:.6},{:.6},{:.6},{:.6},{:.6},{vs_cpu:.1},{vs_gpu:.1},{vs_dd:.1},{vs_basic:.1}",
            basic_unit.total_time().as_secs(),
            dd.total_time().as_secs(),
            pl.total_time().as_secs(),
            cpu.total_time().as_secs(),
            gpu.total_time().as_secs()
        ));
    }
    println!("(paper headline: up to 53% over CPU-only, 35% over GPU-only, 28% over conventional co-processing)");
    ctx.write_csv(
        "fig16.csv",
        "algorithm,basicunit_s,dd_s,pl_s,cpu_only_s,gpu_only_s,pl_vs_cpu_pct,pl_vs_gpu_pct,pl_vs_dd_pct,pl_vs_basicunit_pct",
        &rows,
    );
}

/// Figures 17 and 18: the per-phase CPU shares that the BasicUnit scheduler
/// converges to for SHJ and PHJ.
pub fn fig17_18(ctx: &mut ExpContext) {
    banner("Figures 17-18: workload ratios of different steps under BasicUnit");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let scheme = Scheme::BasicUnit {
        chunk_tuples: ctx.scaled(256 * 1024).max(1024),
    };
    let mut rows = Vec::new();
    for (algo, cfg) in [
        ("SHJ", JoinConfig::shj(scheme.clone())),
        ("PHJ", JoinConfig::phj(scheme)),
    ] {
        let out = ctx.run_join(&sys, &cfg, &build, &probe);
        let ratios = out.basic_unit_ratios.expect("BasicUnit reports its ratios");
        if algo == "PHJ" {
            println!(
                "{algo}: partition CPU {:.0}% / GPU {:.0}%",
                ratios.partition * 100.0,
                (1.0 - ratios.partition) * 100.0
            );
        }
        println!(
            "{algo}: build CPU {:.0}% / GPU {:.0}%   probe CPU {:.0}% / GPU {:.0}%",
            ratios.build * 100.0,
            (1.0 - ratios.build) * 100.0,
            ratios.probe * 100.0,
            (1.0 - ratios.probe) * 100.0
        );
        rows.push(format!(
            "{algo},{:.4},{:.4},{:.4}",
            ratios.partition, ratios.build, ratios.probe
        ));
    }
    println!("(BasicUnit forces the same ratio on every step of a phase — the deficiency Figure 16 quantifies)");
    ctx.write_csv(
        "fig17_18.csv",
        "algorithm,partition_cpu,build_cpu,probe_cpu",
        &rows,
    );
}
