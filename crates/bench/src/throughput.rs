//! Engine throughput under concurrent multi-client load (`BENCH_throughput`).
//!
//! Unlike the paper-reproduction experiments, this runner measures the
//! *system* quality the ROADMAP pushes toward: joins per second of one
//! shared [`JoinEngine`] (native backend, `sessions` pooled arenas, one
//! persistent engine-wide worker pool) as the number of concurrent client
//! threads grows.  It emits `BENCH_throughput.json` in the working
//! directory so successive PRs can track the trajectory.
//!
//! Every client count runs against an identically-configured engine — the
//! pool defaults to one worker per hardware thread, so a single client
//! still uses the whole machine and extra clients only add admission
//! concurrency.  (The previous runner divided the cores across sessions by
//! hand with `NativeCpu::with_threads(cores / clients)` to compensate for
//! per-step thread spawning; the shared pool makes that workaround
//! obsolete.)
//!
//! CI gating knobs (environment):
//!
//! * `HJ_THROUGHPUT_CLIENTS="1,8"` — comma-separated client counts to
//!   measure (default `1,4,8`);
//! * `HJ_MIN_SCALING="0.9"` — fail (exit 1) when the highest-client
//!   joins/sec falls below this fraction of the lowest-client joins/sec.

use crate::common::{banner, ExpContext};
use hj_core::{EngineConfig, JoinEngine, JoinRequest, NativeCpu, Scheme};
use std::sync::Arc;
use std::time::Instant;

/// Sessions the shared engine pools (and the largest client count tried).
pub const SESSIONS: usize = 8;

/// Joins in one measured batch, in total, split evenly among the clients.
///
/// Constant *total* work per batch — not constant work per client — so
/// every load point's batch runs for the same wall-clock ballpark and
/// integrates the same amount of scheduler/frequency noise; otherwise the
/// 1-client point (the scaling gate's denominator) is measured over a
/// window several times shorter than the 8-client point and its estimate
/// rides whatever burst it happens to land on.
const JOINS_PER_BATCH: usize = 128;

/// Unmeasured joins run before each load point (warms the arenas, the page
/// tables and the parked worker pool so the measurement starts steady).
const WARMUP_JOINS: usize = 4;

/// Measured batches per load point (interleaved round-robin across the
/// points); the median batch is reported.
const BATCHES: usize = 7;

/// Client counts to measure: `HJ_THROUGHPUT_CLIENTS` (comma-separated), or
/// 1/4/[`SESSIONS`].
///
/// A malformed value is a hard error: this knob drives a CI regression
/// gate, and a typo that silently fell back to defaults (or dropped the
/// high-client point) would neutralise the gate with exit code 0.
fn client_counts() -> Vec<usize> {
    let Ok(raw) = std::env::var("HJ_THROUGHPUT_CLIENTS") else {
        return vec![1, 4, SESSIONS];
    };
    let counts: Vec<usize> = raw
        .split(',')
        .map(|part| {
            let clients: usize = part.trim().parse().unwrap_or_else(|_| {
                panic!("HJ_THROUGHPUT_CLIENTS: {part:?} is not a client count (in {raw:?})")
            });
            assert!(
                (1..=SESSIONS).contains(&clients),
                "HJ_THROUGHPUT_CLIENTS: {clients} is outside 1..={SESSIONS} (the session pool)"
            );
            clients
        })
        .collect();
    assert!(
        !counts.is_empty(),
        "HJ_THROUGHPUT_CLIENTS is set but names no client counts"
    );
    counts
}

/// The scaling floor from `HJ_MIN_SCALING`, when set; malformed values are
/// a hard error for the same reason as [`client_counts`].
fn min_scaling() -> Option<f64> {
    crate::common::env_ratio_floor("HJ_MIN_SCALING")
}

/// One measured load point.
struct Point {
    clients: usize,
    joins: usize,
    elapsed_secs: f64,
    joins_per_sec: f64,
    peak_in_flight: usize,
}

/// `throughput`: joins/sec of one shared native engine at 1, 4 and
/// [`SESSIONS`] concurrent clients.
pub fn throughput(ctx: &mut ExpContext) {
    banner("BENCH_throughput: concurrent clients against one shared NativeCpu engine");
    let (r, s) = ctx.relations(
        1024 * 1024,
        2 * 1024 * 1024,
        datagen::KeyDistribution::Uniform,
        1.0,
    );
    let request = JoinRequest::builder()
        .scheme(Scheme::pipelined_paper())
        .build()
        .expect("valid throughput request");

    println!(
        "workload: {} x {} tuples, {} joins per batch (median of {}), {} sessions",
        r.len(),
        s.len(),
        JOINS_PER_BATCH,
        BATCHES,
        SESSIONS
    );
    println!(
        "{:>8} {:>8} {:>12} {:>14} {:>14}",
        "clients", "joins", "elapsed(s)", "joins/sec", "peak in-flight"
    );

    // One identically-configured engine per load point: the persistent
    // pool (one worker per hardware thread by default) serves every
    // session, so no per-client thread budgeting is needed — a single
    // client still uses every core, and more clients only deepen the
    // admission concurrency.
    let counts = client_counts();
    let engines: Vec<Arc<JoinEngine>> = counts
        .iter()
        .map(|_| {
            let engine = Arc::new(
                JoinEngine::new(
                    Box::new(NativeCpu::new()),
                    EngineConfig::for_tuples(r.len(), s.len()).sessions(SESSIONS),
                )
                .expect("valid engine config"),
            );
            for _ in 0..WARMUP_JOINS {
                engine
                    .submit(&request, &r, &s)
                    .expect("warmup submission failed");
            }
            engine
        })
        .collect();

    // Batches are interleaved round-robin across the load points (batch 0
    // of every point, then batch 1 of every point, …) so slow host periods
    // — the dominant noise on shared machines — hit all points alike
    // instead of skewing whichever point happened to run through them.
    // The per-point median then compares like with like.
    let mut batch_elapsed: Vec<Vec<f64>> = vec![Vec::with_capacity(BATCHES); counts.len()];
    for _ in 0..BATCHES {
        for (slot, &clients) in counts.iter().enumerate() {
            let engine = &engines[slot];
            let per_client = JOINS_PER_BATCH.div_ceil(clients);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    let engine = Arc::clone(engine);
                    let request = request.clone();
                    let (r, s) = (&r, &s);
                    scope.spawn(move || {
                        for _ in 0..per_client {
                            engine
                                .submit(&request, r, s)
                                .expect("throughput submission failed");
                        }
                    });
                }
            });
            batch_elapsed[slot].push(start.elapsed().as_secs_f64());
        }
    }

    let mut points = Vec::new();
    let mut worker_threads = 0usize;
    for (slot, &clients) in counts.iter().enumerate() {
        let per_client = JOINS_PER_BATCH.div_ceil(clients);
        let joins = clients * per_client;
        let median_elapsed = hj_metrics::exact_quantile(&mut batch_elapsed[slot], 0.5)
            .expect("BATCHES > 0 elapsed samples");
        let stats = engines[slot].stats();
        assert_eq!(
            stats.requests_served,
            (BATCHES * joins + WARMUP_JOINS) as u64
        );
        // Report the pool size the engines actually ran with, not a
        // re-derivation of the default.
        worker_threads = stats.worker_threads;
        let point = Point {
            clients,
            joins,
            elapsed_secs: median_elapsed,
            joins_per_sec: joins as f64 / median_elapsed.max(1e-9),
            peak_in_flight: stats.peak_in_flight,
        };
        println!(
            "{:>8} {:>8} {:>12.3} {:>14.1} {:>14}",
            point.clients,
            point.joins,
            point.elapsed_secs,
            point.joins_per_sec,
            point.peak_in_flight
        );
        points.push(point);
    }

    // Snapshot the highest-load engine: its counters cover the deepest
    // concurrency this run exercised.
    let registry_metrics = crate::common::registry_json(
        engines
            .last()
            .expect("at least one load point")
            .metrics_registry(),
    );
    let json = render_json(r.len(), s.len(), worker_threads, &points, &registry_metrics);
    let path = "BENCH_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{},{},{:.6},{:.1},{}",
                p.clients, p.joins, p.elapsed_secs, p.joins_per_sec, p.peak_in_flight
            )
        })
        .collect();
    ctx.write_csv(
        "throughput.csv",
        "clients,joins,elapsed_s,joins_per_sec,peak_in_flight",
        &rows,
    );

    // CI gate: multi-client throughput must not collapse below the
    // single-client baseline (within the configured tolerance).
    if let Some(floor) = min_scaling() {
        let low = points
            .iter()
            .min_by_key(|p| p.clients)
            .expect("at least one load point");
        let high = points
            .iter()
            .max_by_key(|p| p.clients)
            .expect("at least one load point");
        // A floor without two distinct client counts cannot gate anything;
        // refuse instead of silently passing.
        assert!(
            high.clients > low.clients,
            "HJ_MIN_SCALING is set but the measured client counts ({:?}) contain no \
             low/high pair to compare — fix HJ_THROUGHPUT_CLIENTS",
            points.iter().map(|p| p.clients).collect::<Vec<_>>()
        );
        let ratio = high.joins_per_sec / low.joins_per_sec.max(1e-9);
        println!(
            "scaling: {} clients at {:.1} joins/sec vs {} client(s) at {:.1} joins/sec \
             (ratio {ratio:.3}, floor {floor})",
            high.clients, high.joins_per_sec, low.clients, low.joins_per_sec
        );
        if ratio < floor {
            eprintln!(
                "FAIL: {}-client throughput is {ratio:.3}x the {}-client baseline \
                 (HJ_MIN_SCALING={floor}) — multi-client throughput collapsed",
                high.clients, low.clients
            );
            std::process::exit(1);
        }
    }
}

fn render_json(
    build_tuples: usize,
    probe_tuples: usize,
    worker_threads: usize,
    points: &[Point],
    registry_metrics: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"engine-throughput\",\n");
    out.push_str("  \"backend\": \"native-cpu\",\n");
    out.push_str(&format!("  \"sessions\": {SESSIONS},\n"));
    out.push_str(&format!("  \"worker_threads\": {worker_threads},\n"));
    out.push_str(&format!("  \"build_tuples\": {build_tuples},\n"));
    out.push_str(&format!("  \"probe_tuples\": {probe_tuples},\n"));
    out.push_str(&format!("  \"joins_per_batch\": {JOINS_PER_BATCH},\n"));
    out.push_str(&format!("  \"batches\": {BATCHES},\n"));
    out.push_str(&format!("  \"metrics\": {registry_metrics},\n"));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"joins\": {}, \"elapsed_secs\": {:.6}, \
             \"joins_per_sec\": {:.1}, \"peak_in_flight\": {}}}{}\n",
            p.clients,
            p.joins,
            p.elapsed_secs,
            p.joins_per_sec,
            p.peak_in_flight,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough_to_diff() {
        let points = vec![
            Point {
                clients: 1,
                joins: 16,
                elapsed_secs: 0.5,
                joins_per_sec: 32.0,
                peak_in_flight: 1,
            },
            Point {
                clients: 4,
                joins: 64,
                elapsed_secs: 1.0,
                joins_per_sec: 64.0,
                peak_in_flight: 4,
            },
        ];
        let metrics = "{\n    \"hj_engine_requests_served_total\": 80\n  }";
        let json = render_json(1000, 2000, 4, &points, metrics);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"clients\"").count(), 2);
        assert!(json.contains("\"sessions\": 8"));
        assert!(json.contains("\"worker_threads\": 4"));
        assert!(json.contains("\"metrics\": {\n    \"hj_engine_requests_served_total\": 80\n  },"));
        // One comma between the two result rows, one after the metrics blob.
        assert_eq!(json.matches("},\n").count(), 2);
    }

    #[test]
    fn client_counts_env_parsing_is_robust() {
        // No env manipulation here (tests run in parallel); exercise the
        // default path shape instead.
        let counts = client_counts();
        assert!(!counts.is_empty());
        assert!(counts.iter().all(|&c| (1..=SESSIONS).contains(&c)));
    }
}
