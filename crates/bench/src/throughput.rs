//! Engine throughput under concurrent multi-client load (`BENCH_throughput`).
//!
//! Unlike the paper-reproduction experiments, this runner measures the
//! *system* quality the ROADMAP pushes toward: joins per second of one
//! shared [`JoinEngine`] (native backend, `sessions` pooled arenas) as the
//! number of concurrent client threads grows.  It emits
//! `BENCH_throughput.json` in the working directory so successive PRs can
//! track the trajectory.

use crate::common::{banner, ExpContext};
use hj_core::{EngineConfig, JoinEngine, JoinRequest, NativeCpu, Scheme};
use std::sync::Arc;
use std::time::Instant;

/// Sessions the shared engine pools (and the largest client count tried).
pub const SESSIONS: usize = 8;

/// Joins each client submits per measurement.
const JOINS_PER_CLIENT: usize = 16;

/// One measured load point.
struct Point {
    clients: usize,
    joins: usize,
    elapsed_secs: f64,
    joins_per_sec: f64,
    peak_in_flight: usize,
}

/// `throughput`: joins/sec of one shared native engine at 1, 4 and
/// [`SESSIONS`] concurrent clients.
pub fn throughput(ctx: &mut ExpContext) {
    banner("BENCH_throughput: concurrent clients against one shared NativeCpu engine");
    let (r, s) = ctx.relations(
        1024 * 1024,
        2 * 1024 * 1024,
        datagen::KeyDistribution::Uniform,
        1.0,
    );
    let request = JoinRequest::builder()
        .scheme(Scheme::pipelined_paper())
        .build()
        .expect("valid throughput request");

    println!(
        "workload: {} x {} tuples, {} joins per client, {} sessions",
        r.len(),
        s.len(),
        JOINS_PER_CLIENT,
        SESSIONS
    );
    println!(
        "{:>8} {:>8} {:>12} {:>14} {:>14}",
        "clients", "joins", "elapsed(s)", "joins/sec", "peak in-flight"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut points = Vec::new();
    for clients in [1usize, 4, SESSIONS] {
        // Keep the whole machine busy at every load point: with `clients`
        // joins in flight, each join gets its share of the cores.  This
        // isolates engine concurrency from static thread partitioning — a
        // single client still uses every core.
        let threads_per_join = (cores / clients).max(1);
        let engine = Arc::new(
            JoinEngine::new(
                Box::new(NativeCpu::with_threads(threads_per_join)),
                EngineConfig::for_tuples(r.len(), s.len()).sessions(SESSIONS),
            )
            .expect("valid engine config"),
        );
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let engine = Arc::clone(&engine);
                let request = request.clone();
                let (r, s) = (&r, &s);
                scope.spawn(move || {
                    for _ in 0..JOINS_PER_CLIENT {
                        engine
                            .submit(&request, r, s)
                            .expect("throughput submission failed");
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let joins = clients * JOINS_PER_CLIENT;
        let stats = engine.stats();
        assert_eq!(stats.requests_served, joins as u64);
        let point = Point {
            clients,
            joins,
            elapsed_secs: elapsed,
            joins_per_sec: joins as f64 / elapsed.max(1e-9),
            peak_in_flight: stats.peak_in_flight,
        };
        println!(
            "{:>8} {:>8} {:>12.3} {:>14.1} {:>14}",
            point.clients,
            point.joins,
            point.elapsed_secs,
            point.joins_per_sec,
            point.peak_in_flight
        );
        points.push(point);
    }

    let json = render_json(r.len(), s.len(), &points);
    let path = "BENCH_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{},{},{:.6},{:.1},{}",
                p.clients, p.joins, p.elapsed_secs, p.joins_per_sec, p.peak_in_flight
            )
        })
        .collect();
    ctx.write_csv(
        "throughput.csv",
        "clients,joins,elapsed_s,joins_per_sec,peak_in_flight",
        &rows,
    );
}

fn render_json(build_tuples: usize, probe_tuples: usize, points: &[Point]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"engine-throughput\",\n");
    out.push_str("  \"backend\": \"native-cpu\",\n");
    out.push_str(&format!("  \"sessions\": {SESSIONS},\n"));
    out.push_str(&format!("  \"build_tuples\": {build_tuples},\n"));
    out.push_str(&format!("  \"probe_tuples\": {probe_tuples},\n"));
    out.push_str(&format!("  \"joins_per_client\": {JOINS_PER_CLIENT},\n"));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"joins\": {}, \"elapsed_secs\": {:.6}, \
             \"joins_per_sec\": {:.1}, \"peak_in_flight\": {}}}{}\n",
            p.clients,
            p.joins,
            p.elapsed_secs,
            p.joins_per_sec,
            p.peak_in_flight,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough_to_diff() {
        let points = vec![
            Point {
                clients: 1,
                joins: 16,
                elapsed_secs: 0.5,
                joins_per_sec: 32.0,
                peak_in_flight: 1,
            },
            Point {
                clients: 4,
                joins: 64,
                elapsed_secs: 1.0,
                joins_per_sec: 64.0,
                peak_in_flight: 4,
            },
        ];
        let json = render_json(1000, 2000, &points);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"clients\"").count(), 2);
        assert!(json.contains("\"sessions\": 8"));
        // Exactly one trailing comma between the two result rows.
        assert_eq!(json.matches("},\n").count(), 1);
    }
}
