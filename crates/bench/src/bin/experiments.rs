//! Experiment runner: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! cargo run --release -p hj-bench --bin experiments -- all
//! cargo run --release -p hj-bench --bin experiments -- fig13 fig16
//! HJ_SCALE=1 cargo run --release -p hj-bench --bin experiments -- fig03   # paper-sized
//! ```
//!
//! Results are printed to stdout and written as CSV files under `results/`.

use hj_bench::{registry, ExpContext};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = registry();

    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("Usage: experiments [all | <name>...]\n");
        println!(
            "Available experiments (HJ_SCALE={} by default):",
            hj_bench::default_scale()
        );
        for e in &experiments {
            println!("  {:<9} {}", e.name, e.description);
        }
        return;
    }

    let mut ctx = ExpContext::from_env();
    println!(
        "# Running at scale 1/{} (set HJ_SCALE=1 for the paper's 16M-tuple workloads)",
        ctx.scale
    );

    let run_all = args.iter().any(|a| a == "all");
    let mut ran = 0;
    for exp in &experiments {
        if run_all || args.iter().any(|a| a == exp.name) {
            let start = std::time::Instant::now();
            (exp.run)(&mut ctx);
            println!(
                "[{} finished in {:.1}s wall time]",
                exp.name,
                start.elapsed().as_secs_f64()
            );
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("No matching experiment. Run with --help to list the available names.");
        std::process::exit(1);
    }
    println!(
        "\n# {ran} experiment(s) complete; CSV output in {}",
        ctx.out_dir.display()
    );
}
