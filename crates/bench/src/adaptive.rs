//! Adaptive-tuner recovery benchmark (`BENCH_adaptive`).
//!
//! The scenario the adaptive subsystem exists for: the offline cost model
//! was calibrated wrong (here: CPU and GPU unit costs swapped — the worst
//! case, every step pinned to its *slow* device), and the probe stream is
//! Zipf-skewed, which a uniform calibration mispredicts anyway.  The
//! experiment measures three runs of the same join on the coupled
//! simulator's virtual clock:
//!
//! * **static-oracle** — tuned from a truthful calibration (the best the
//!   offline model can do);
//! * **static-bad** — tuned from the swapped calibration, run as-is;
//! * **adaptive-bad** — the same bad plan *and* the same bad prior, but
//!   with `Tuning::Adaptive`: the tuner must claw back the gap at runtime.
//!
//! A native-backend leg re-runs static vs adaptive on real threads and
//! asserts result identity (ratios are placement hints there; the tuner
//! only collects wall-clock telemetry).
//!
//! CI gating knobs (environment, hard parse errors like the throughput
//! gate):
//!
//! * `HJ_ADAPTIVE_MIN_VS_BAD` — fail (exit 1) when adaptive-bad throughput
//!   falls below this multiple of static-bad (CI sets 1.15);
//! * `HJ_ADAPTIVE_MIN_VS_ORACLE` — fail when adaptive-bad falls below this
//!   fraction of static-oracle (CI sets 0.9).

use crate::common::{banner, env_ratio_floor, ExpContext};
use costmodel::{calibrate_from_relations, tune_scheme, JoinCostModel};
use hj_core::adaptive::{AdaptiveConfig, SeriesKind};
use hj_core::{
    Algorithm, EngineConfig, JoinEngine, JoinOutcome, JoinRequest, NativeCpu, Scheme, Tuning,
};

/// Morsel size of the runs: small enough that every step yields dozens of
/// re-plan points at the default experiment scale.
const MORSEL_TUPLES: usize = 256;

struct SimLeg {
    label: &'static str,
    secs: f64,
    joins_per_sec: f64,
    replans: u64,
}

fn ratio_row(label: &str, ratios: &[f64]) -> String {
    let cells: Vec<String> = ratios.iter().map(|r| format!("{r:.2}")).collect();
    format!("{label:>10}: [{}]", cells.join(", "))
}

/// `adaptive`: runtime ratio re-planning recovering from a mis-calibrated
/// prior on a Zipf-skewed workload.
pub fn adaptive(ctx: &mut ExpContext) {
    banner("BENCH_adaptive: tuner recovery from a mis-calibrated cost model");
    let sys = ctx.coupled();
    let (r, s) = ctx.relations(
        512 * 1024,
        2 * 1024 * 1024,
        datagen::KeyDistribution::zipf(1.1),
        1.0,
    );
    println!(
        "workload: {} x {} tuples, zipf(1.1) probe skew, morsels of {} tuples",
        r.len(),
        s.len(),
        MORSEL_TUPLES
    );

    // Truthful calibration → the oracle plan; swapped calibration → the
    // bad plan and the bad prior that seeds the tuner.
    let good_costs = calibrate_from_relations(&sys, &r, &s, Algorithm::Simple);
    let bad_costs = good_costs.swapped_devices();
    let oracle = tune_scheme(
        &JoinCostModel::new(good_costs),
        r.len(),
        s.len(),
        Algorithm::Simple,
        0.02,
    );
    let bad = tune_scheme(
        &JoinCostModel::new(bad_costs.clone()),
        r.len(),
        s.len(),
        Algorithm::Simple,
        0.02,
    );
    let oracle_scheme = oracle.pipelined.clone();
    let bad_scheme = bad.pipelined.clone();

    let engine = JoinEngine::for_system(sys, EngineConfig::for_tuples(r.len(), s.len()))
        .expect("adaptive experiment engine");
    // Grouping is off for all three legs: its divergence-reducing reorder
    // sorts tuples by per-tuple work, which makes the work stream
    // non-stationary along a step — a scalar online estimate (and equally
    // the offline calibration average) then mispredicts whichever end of
    // the sorted order a device ends up with.  Isolating the tuner from
    // that interaction keeps the comparison about *adaptivity*.
    let run = |scheme: Scheme, tuning: Option<Tuning>| -> JoinOutcome {
        let mut builder = JoinRequest::builder()
            .scheme(scheme)
            .grouping(false)
            .morsel_tuples(MORSEL_TUPLES);
        if let Some(tuning) = tuning {
            builder = builder.tuning(tuning);
        }
        let request = builder.build().expect("valid adaptive experiment request");
        engine
            .submit(&request, &r, &s)
            .expect("adaptive experiment join")
    };

    let static_oracle = run(oracle_scheme.clone(), None);
    let static_bad = run(bad_scheme.clone(), None);
    let adaptive_bad = run(
        bad_scheme.clone(),
        Some(Tuning::Adaptive(
            AdaptiveConfig::default()
                .with_prior(bad_costs.adaptive_prior())
                .with_replan_every_morsels(1),
        )),
    );
    let reference = static_oracle.matches;
    assert_eq!(static_bad.matches, reference, "static runs must agree");
    assert_eq!(
        adaptive_bad.matches, reference,
        "adaptive run changed the join result"
    );

    let report = adaptive_bad
        .adaptive
        .clone()
        .expect("adaptive run must carry a report");
    let leg = |label: &'static str, out: &JoinOutcome, replans: u64| SimLeg {
        label,
        secs: out.total_time().as_secs(),
        joins_per_sec: 1.0 / out.total_time().as_secs().max(1e-12),
        replans,
    };
    let legs = [
        leg("static-oracle", &static_oracle, 0),
        leg("static-bad", &static_bad, 0),
        leg("adaptive-bad", &adaptive_bad, report.replans),
    ];
    println!(
        "{:>16} {:>12} {:>14} {:>9}",
        "run", "sim secs", "joins/sim-sec", "replans"
    );
    for leg in &legs {
        println!(
            "{:>16} {:>12.4} {:>14.2} {:>9}",
            leg.label, leg.secs, leg.joins_per_sec, leg.replans
        );
    }

    println!("\nprior vs converged ratios (adaptive-bad):");
    for kind in SeriesKind::ALL {
        let series = report.series(kind);
        if kind == SeriesKind::Partition {
            continue; // SHJ: no partition pass ran
        }
        println!("  {}", kind.label());
        println!("  {}", ratio_row("prior", &series.initial));
        println!("  {}", ratio_row("converged", &series.converged));
        println!("  confidence {:.2}", series.confidence);
    }

    // Native leg: result identity on real threads + wall-clock telemetry.
    let native = JoinEngine::new(
        Box::new(NativeCpu::new()),
        EngineConfig::for_tuples(r.len(), s.len()),
    )
    .expect("native adaptive engine");
    let native_run = |tuning: Option<Tuning>| {
        let mut builder = JoinRequest::builder().scheme(bad_scheme.clone());
        if let Some(tuning) = tuning {
            builder = builder.tuning(tuning);
        }
        native
            .submit(&builder.build().expect("native request"), &r, &s)
            .expect("native adaptive join")
    };
    let native_static = native_run(None);
    let native_adaptive = native_run(Some(Tuning::adaptive()));
    assert_eq!(native_static.matches, reference);
    assert_eq!(native_adaptive.matches, reference);
    let native_report = native_adaptive
        .adaptive
        .clone()
        .expect("native adaptive report");
    println!(
        "\nnative leg: {} matches on both paths, {} wall-clock samples, probe {} ns/tuple",
        reference,
        native_report.samples,
        native_report
            .series(SeriesKind::Probe)
            .wall_ns_per_tuple
            .map_or_else(|| "?".to_string(), |ns| format!("{ns:.1}")),
    );

    let vs_bad = legs[2].joins_per_sec / legs[1].joins_per_sec.max(1e-12);
    let vs_oracle = legs[2].joins_per_sec / legs[0].joins_per_sec.max(1e-12);
    println!(
        "\nadaptive-bad reaches {vs_bad:.3}x static-bad and {vs_oracle:.3}x static-oracle \
         ({} replans, max ratio shift {:.2})",
        report.replans,
        report.max_ratio_shift()
    );

    // The native engine is the only one with a wall-clock registry worth
    // keeping (the sim legs run on simulated time).
    let registry_metrics = crate::common::registry_json(native.metrics_registry());
    let json = render_json(
        r.len(),
        s.len(),
        &legs,
        vs_bad,
        vs_oracle,
        native_report.samples,
        &registry_metrics,
    );
    let path = "BENCH_adaptive.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let rows: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "{},{:.6},{:.2},{}",
                l.label, l.secs, l.joins_per_sec, l.replans
            )
        })
        .collect();
    ctx.write_csv(
        "adaptive.csv",
        "run,sim_secs,joins_per_sim_sec,replans",
        &rows,
    );

    // CI gates.
    let mut failed = false;
    if let Some(floor) = env_ratio_floor("HJ_ADAPTIVE_MIN_VS_BAD") {
        println!("gate: adaptive-bad vs static-bad ratio {vs_bad:.3} (floor {floor})");
        if vs_bad < floor {
            eprintln!(
                "FAIL: adaptive-from-bad-prior reached only {vs_bad:.3}x the static-bad \
                 throughput (HJ_ADAPTIVE_MIN_VS_BAD={floor})"
            );
            failed = true;
        }
    }
    if let Some(floor) = env_ratio_floor("HJ_ADAPTIVE_MIN_VS_ORACLE") {
        println!("gate: adaptive-bad vs static-oracle ratio {vs_oracle:.3} (floor {floor})");
        if vs_oracle < floor {
            eprintln!(
                "FAIL: adaptive-from-bad-prior reached only {vs_oracle:.3}x the oracle \
                 throughput (HJ_ADAPTIVE_MIN_VS_ORACLE={floor})"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    build_tuples: usize,
    probe_tuples: usize,
    legs: &[SimLeg],
    vs_bad: f64,
    vs_oracle: f64,
    native_samples: u64,
    registry_metrics: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"adaptive-tuner-recovery\",\n");
    out.push_str("  \"backend\": \"coupled-sim\",\n");
    out.push_str("  \"workload\": \"zipf-1.1\",\n");
    out.push_str(&format!("  \"build_tuples\": {build_tuples},\n"));
    out.push_str(&format!("  \"probe_tuples\": {probe_tuples},\n"));
    out.push_str(&format!("  \"morsel_tuples\": {MORSEL_TUPLES},\n"));
    out.push_str(&format!("  \"metrics\": {registry_metrics},\n"));
    out.push_str("  \"results\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"run\": \"{}\", \"sim_secs\": {:.6}, \"joins_per_sim_sec\": {:.2}, \
             \"replans\": {}}}{}\n",
            leg.label,
            leg.secs,
            leg.joins_per_sec,
            leg.replans,
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"adaptive_vs_static_bad\": {vs_bad:.3},\n  \"adaptive_vs_static_oracle\": {vs_oracle:.3},\n"
    ));
    out.push_str(&format!("  \"native_wall_samples\": {native_samples}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_carries_all_three_legs_and_the_gate_ratios() {
        let legs = [
            SimLeg {
                label: "static-oracle",
                secs: 0.1,
                joins_per_sec: 10.0,
                replans: 0,
            },
            SimLeg {
                label: "static-bad",
                secs: 0.5,
                joins_per_sec: 2.0,
                replans: 0,
            },
            SimLeg {
                label: "adaptive-bad",
                secs: 0.12,
                joins_per_sec: 8.3,
                replans: 40,
            },
        ];
        let json = render_json(1000, 4000, &legs, 4.15, 0.83, 128, "{\n  }");
        assert_eq!(json.matches("\"run\"").count(), 3);
        assert!(json.contains("\"metrics\": {\n  },"));
        assert!(json.contains("\"adaptive_vs_static_bad\": 4.150"));
        assert!(json.contains("\"adaptive_vs_static_oracle\": 0.830"));
        assert!(json.contains("\"native_wall_samples\": 128"));
        assert!(json.trim_end().ends_with('}'));
    }
}
