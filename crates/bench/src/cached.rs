//! Build-side hash-table cache: rebuild-per-request vs probe-only (`BENCH_cached`).
//!
//! Serving traffic joins the same base table over and over; the engine's
//! table registry ([`JoinEngine::register_table`] + `submit_cached`) builds
//! the hash table once and serves every later request from a probe-only
//! pipeline.  This runner measures what that is worth on a build-dominated
//! workload (build 16× the probe):
//!
//! 1. **cold** — every request re-ships and re-builds the build side
//!    (`submit`, the pre-registry behaviour);
//! 2. **hot** — the table is registered once, requests are probe-only
//!    (`submit_cached` after the first build);
//! 3. **wire** — the same comparison across `WIRE_CLIENTS` concurrent TCP
//!    clients of one [`JoinServer`]: inline requests (build shipped and
//!    rebuilt per request) vs `table_ref` requests against a table
//!    registered over the wire.
//!
//! Cold and hot batches are interleaved and the per-path median is
//! reported, the same noise discipline as [`crate::throughput`].  The
//! runner also asserts — unconditionally, not behind a gate — that every
//! cached byte charged to the engine's [`MemoryBroker`] is returned when
//! the engine drops: a leak here would silently shrink the budget of every
//! later spill join.
//!
//! It emits `BENCH_cached.json` in the working directory so successive PRs
//! can track the trajectory.
//!
//! CI gating knobs (environment):
//!
//! * `HJ_CACHED_MIN_SPEEDUP="3"` — fail (exit 1) when hot (probe-only)
//!   joins/sec is less than this multiple of cold (rebuild-per-request)
//!   joins/sec.
//!
//! [`JoinEngine::register_table`]: hj_core::engine::JoinEngine::register_table
//! [`MemoryBroker`]: hj_core::spill::MemoryBroker

use crate::common::{banner, env_ratio_floor, ExpContext};
use hj_core::server::{JoinClient, RefRequestBuilder, RequestBuilder};
use hj_core::{EngineConfig, JoinEngine, JoinRequest, JoinServer, NativeCpu, Scheme, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pooled sessions of the engine under test.
const SESSIONS: usize = 4;

/// Joins per measured batch, per path.
const JOINS_PER_BATCH: usize = 16;

/// Measured batches per path (interleaved cold/hot; the median batch is
/// reported).
const BATCHES: usize = 5;

/// Unmeasured joins before the measured batches (warms the arenas and the
/// worker pool; the hot warmup also takes the one cache miss).
const WARMUP_JOINS: usize = 2;

/// Concurrent TCP clients of the wire phase.
const WIRE_CLIENTS: usize = 4;

/// Requests per wire client, per path.
const WIRE_JOINS_PER_CLIENT: usize = 12;

/// Per-read client timeout; hitting it is a hard failure.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// One measured path.
struct Point {
    path: &'static str,
    joins: usize,
    elapsed_secs: f64,
    joins_per_sec: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    hj_metrics::exact_quantile(samples, 0.5).expect("non-empty batch samples")
}

/// `cached`: rebuild-per-request vs register-once probe-only joins, in
/// process and across concurrent TCP clients.
pub fn cached(ctx: &mut ExpContext) {
    banner("BENCH_cached: build-side hash-table cache, cold rebuilds vs probe-only hot path");

    // Build-dominated workload: the build side is 16x the probe, so the
    // hot path (which skips the build entirely) has real headroom to show.
    let (r, s) = ctx.relations(
        8 * 1024 * 1024,
        512 * 1024,
        datagen::KeyDistribution::Uniform,
        1.0,
    );
    let request = JoinRequest::builder()
        .scheme(Scheme::pipelined_paper())
        .build()
        .expect("valid cached-bench request");

    let engine = Arc::new(
        JoinEngine::new(
            Box::new(NativeCpu::new()),
            EngineConfig::for_tuples(r.len(), s.len()).sessions(SESSIONS),
        )
        .expect("valid engine config"),
    );
    println!(
        "workload: {} (build) x {} (probe) tuples, {} joins per batch (median of {}), \
         {} sessions",
        r.len(),
        s.len(),
        JOINS_PER_BATCH,
        BATCHES,
        SESSIONS
    );

    // Warm both paths: the cold warmup spins up the worker pool and the
    // arenas, the hot warmup registers the table and takes the single
    // cache-miss build so the measured hot batches are pure hits.
    for _ in 0..WARMUP_JOINS {
        engine
            .submit(&request, &r, &s)
            .expect("cold warmup submission failed");
    }
    let table = engine.register_table("bench_build", r.clone());
    let cold_reference = engine
        .submit_cached(&request, &table, &s)
        .expect("hot warmup submission failed");

    // Interleave cold and hot batches so slow host periods hit both paths
    // alike; compare medians.
    let mut cold_elapsed = Vec::with_capacity(BATCHES);
    let mut hot_elapsed = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..JOINS_PER_BATCH {
            let out = engine
                .submit(&request, &r, &s)
                .expect("cold submission failed");
            assert_eq!(out.matches, cold_reference.matches);
        }
        cold_elapsed.push(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for _ in 0..JOINS_PER_BATCH {
            let out = engine
                .submit_cached(&request, &table, &s)
                .expect("hot submission failed");
            assert_eq!(out.matches, cold_reference.matches);
        }
        hot_elapsed.push(start.elapsed().as_secs_f64());
    }

    let cache = engine.cache_stats();
    assert_eq!(cache.misses, 1, "measured hot batches must be pure hits");
    assert!(cache.bytes > 0, "a resident cached table must be charged");

    let mut points = vec![
        point("cold", JOINS_PER_BATCH, median(&mut cold_elapsed)),
        point("hot", JOINS_PER_BATCH, median(&mut hot_elapsed)),
    ];
    let speedup = points[1].joins_per_sec / points[0].joins_per_sec.max(1e-9);
    println!(
        "{:>16} {:>8} {:>12} {:>14}",
        "path", "joins", "elapsed(s)", "joins/sec"
    );
    for p in &points {
        println!(
            "{:>16} {:>8} {:>12.3} {:>14.1}",
            p.path, p.joins, p.elapsed_secs, p.joins_per_sec
        );
    }
    println!(
        "hot vs cold: {speedup:.2}x | cache: {} hits / {} misses, {} resident bytes, \
         {:.1} ms of builds skipped",
        cache.hits,
        cache.misses,
        cache.bytes,
        cache.build_ns_saved as f64 / 1e6,
    );

    // Wire phase: the same table served hot to concurrent TCP clients.
    let (wire_inline, wire_ref) = wire_phase(&engine, &r, &s);
    let wire_speedup = wire_ref.joins_per_sec / wire_inline.joins_per_sec.max(1e-9);
    for p in [&wire_inline, &wire_ref] {
        println!(
            "{:>16} {:>8} {:>12.3} {:>14.1}",
            p.path, p.joins, p.elapsed_secs, p.joins_per_sec
        );
    }
    println!("table_ref vs inline over TCP ({WIRE_CLIENTS} clients): {wire_speedup:.2}x");
    points.push(wire_inline);
    points.push(wire_ref);

    let registry_metrics = crate::common::registry_json(engine.metrics_registry());
    let json = render_json(
        r.len(),
        s.len(),
        speedup,
        wire_speedup,
        &cache,
        &points,
        &registry_metrics,
    );
    let path = "BENCH_cached.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{},{},{:.6},{:.1}",
                p.path, p.joins, p.elapsed_secs, p.joins_per_sec
            )
        })
        .collect();
    ctx.write_csv("cached.csv", "path,joins,elapsed_s,joins_per_sec", &rows);

    // Unconditional leak check: dropping the engine must return every byte
    // the cache charged to the shared broker — a leak here would shrink
    // the budget of every later spill join on a long-lived process.
    let broker = engine.memory_broker().clone();
    drop(table);
    drop(engine);
    assert_eq!(
        broker.granted(),
        0,
        "cached bytes must return to the memory broker when the engine drops"
    );
    println!("engine dropped: 0 bytes still granted (cache fully released)");

    // CI gate: the probe-only hot path must actually pay for itself.
    if let Some(floor) = env_ratio_floor("HJ_CACHED_MIN_SPEEDUP") {
        if speedup < floor {
            eprintln!(
                "FAIL: hot (probe-only) joins/sec is {speedup:.2}x cold \
                 (HJ_CACHED_MIN_SPEEDUP={floor}) — the cache is not paying for itself"
            );
            std::process::exit(1);
        }
        println!("gate: {speedup:.2}x >= {floor} (HJ_CACHED_MIN_SPEEDUP) — ok");
    }
}

fn point(path: &'static str, joins: usize, elapsed_secs: f64) -> Point {
    Point {
        path,
        joins,
        elapsed_secs,
        joins_per_sec: joins as f64 / elapsed_secs.max(1e-9),
    }
}

/// Serves the engine over TCP and measures inline vs `table_ref` requests
/// from [`WIRE_CLIENTS`] concurrent clients (count-only, closed loop).
fn wire_phase(
    engine: &Arc<JoinEngine>,
    r: &datagen::Relation,
    s: &datagen::Relation,
) -> (Point, Point) {
    let server = JoinServer::start(Arc::clone(engine), ServerConfig::default())
        .expect("cached-bench server start");
    let addr = server.local_addr();

    let mut registrar =
        JoinClient::connect_timeout(addr, CLIENT_TIMEOUT).expect("registrar connect");
    let ack = registrar
        .register_table("wire_build", r.clone())
        .expect("wire table registration");
    assert_eq!(ack.tuples as usize, r.len());
    // Take the one wire-table cache miss outside the measured window.
    registrar
        .join_ref(RefRequestBuilder::new("wire_build", s.clone()).build())
        .expect("wire warmup join");

    let run = |table_ref: bool| -> f64 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..WIRE_CLIENTS {
                scope.spawn(move || {
                    let mut client = JoinClient::connect_timeout(addr, CLIENT_TIMEOUT)
                        .expect("wire client connect");
                    for _ in 0..WIRE_JOINS_PER_CLIENT {
                        let outcome = if table_ref {
                            client.join_ref(RefRequestBuilder::new("wire_build", s.clone()).build())
                        } else {
                            client.join(RequestBuilder::new(r.clone(), s.clone()).build())
                        };
                        outcome.expect("wire join failed");
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    };

    let joins = WIRE_CLIENTS * WIRE_JOINS_PER_CLIENT;
    let inline = point("wire_inline", joins, run(false));
    let by_ref = point("wire_table_ref", joins, run(true));

    let stats = server.stats();
    assert!(
        stats.ref_requests >= (joins + 1) as u64,
        "every table_ref request must be counted"
    );
    (inline, by_ref)
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    build_tuples: usize,
    probe_tuples: usize,
    speedup: f64,
    wire_speedup: f64,
    cache: &hj_core::CacheStats,
    points: &[Point],
    registry_metrics: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"hash-table-cache\",\n");
    out.push_str("  \"backend\": \"native-cpu\",\n");
    out.push_str(&format!("  \"sessions\": {SESSIONS},\n"));
    out.push_str(&format!("  \"build_tuples\": {build_tuples},\n"));
    out.push_str(&format!("  \"probe_tuples\": {probe_tuples},\n"));
    out.push_str(&format!("  \"joins_per_batch\": {JOINS_PER_BATCH},\n"));
    out.push_str(&format!("  \"batches\": {BATCHES},\n"));
    out.push_str(&format!("  \"wire_clients\": {WIRE_CLIENTS},\n"));
    out.push_str(&format!("  \"hot_vs_cold_speedup\": {speedup:.3},\n"));
    out.push_str(&format!(
        "  \"wire_ref_vs_inline_speedup\": {wire_speedup:.3},\n"
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"resident_bytes\": {}, \
         \"build_ms_saved\": {:.3}}},\n",
        cache.hits,
        cache.misses,
        cache.bytes,
        cache.build_ns_saved as f64 / 1e6,
    ));
    out.push_str(&format!("  \"metrics\": {registry_metrics},\n"));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"joins\": {}, \"elapsed_secs\": {:.6}, \
             \"joins_per_sec\": {:.1}}}{}\n",
            p.path,
            p.joins,
            p.elapsed_secs,
            p.joins_per_sec,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough_to_diff() {
        let cache = hj_core::CacheStats {
            hits: 80,
            misses: 1,
            bytes: 123_456,
            ..Default::default()
        };
        let points = vec![
            point("cold", 16, 2.0),
            point("hot", 16, 0.25),
            point("wire_inline", 48, 3.0),
            point("wire_table_ref", 48, 1.0),
        ];
        let metrics = "{\n    \"hj_cache_hits_total\": 80\n  }";
        let json = render_json(1_000_000, 62_500, 8.0, 3.0, &cache, &points, metrics);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"path\"").count(), 4);
        assert!(json.contains("\"hot_vs_cold_speedup\": 8.000"));
        assert!(json.contains("\"misses\": 1"));
        assert!(json.contains("\"metrics\": {\n    \"hj_cache_hits_total\": 80\n  },"));
        // Exactly three trailing commas between the four result rows.
        assert_eq!(json.matches("},\n").count(), 5); // 3 rows + cache + metrics
    }

    #[test]
    fn medians_pick_the_middle_batch() {
        let mut samples = [3.0, 1.0, 2.0, 9.0, 0.5];
        assert_eq!(median(&mut samples), 2.0);
    }
}
