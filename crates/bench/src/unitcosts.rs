//! Experiments around per-step unit costs and optimal ratios:
//! Table 1, Figure 4, Figure 5 and Figure 6.

use crate::common::{banner, ExpContext};
use apu_sim::DeviceSpec;
use costmodel::{calibrate_from_relations, optimize_pl_ratios, JoinCostModel};
use hj_core::Algorithm;

/// Table 1: the hardware configuration of the devices under test.
pub fn table1(ctx: &mut ExpContext) {
    banner("Table 1: configuration of AMD Fusion A8-3870K (and Radeon HD 7970 for reference)");
    let specs = [
        DeviceSpec::a8_3870k_cpu(),
        DeviceSpec::a8_3870k_gpu(),
        DeviceSpec::radeon_hd7970(),
    ];
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>14} {:>12}",
        "device", "cores", "freq(GHz)", "wavefront", "local mem(KB)", "Ginstr/s"
    );
    let mut rows = Vec::new();
    for s in &specs {
        println!(
            "{:<18} {:>8} {:>10.2} {:>12} {:>14} {:>12.1}",
            s.name,
            s.total_lanes(),
            s.frequency_ghz,
            s.wavefront_size,
            s.local_mem_bytes / 1024,
            s.instr_throughput_per_ns()
        );
        rows.push(format!(
            "{},{},{},{},{},{:.1}",
            s.name,
            s.total_lanes(),
            s.frequency_ghz,
            s.wavefront_size,
            s.local_mem_bytes / 1024,
            s.instr_throughput_per_ns()
        ));
    }
    println!("zero-copy buffer: 512 MB (shared), cache: 4 MB (shared)");
    ctx.write_csv(
        "table1.csv",
        "device,cores,freq_ghz,wavefront,local_mem_kb,ginstr_per_s",
        &rows,
    );
}

/// Figure 4: unit costs (ns/tuple) of every PHJ step on the CPU and the GPU.
pub fn fig04(ctx: &mut ExpContext) {
    banner("Figure 4: unit costs for different steps on the CPU and the GPU (PHJ)");
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let costs = calibrate_from_relations(&sys, &build, &probe, Algorithm::partitioned_auto());
    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "step", "CPU (ns)", "GPU (ns)", "speedup"
    );
    let mut rows = Vec::new();
    for (step, cpu, gpu) in costs.figure4_rows() {
        let speedup = if gpu > 0.0 { cpu / gpu } else { f64::NAN };
        println!(
            "{:<6} {:>12.2} {:>12.2} {:>9.1}x",
            step.label(),
            cpu,
            gpu,
            speedup
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.2}",
            step.label(),
            cpu,
            gpu,
            speedup
        ));
    }
    ctx.write_csv(
        "fig04.csv",
        "step,cpu_ns_per_tuple,gpu_ns_per_tuple,gpu_speedup",
        &rows,
    );
}

fn print_ratio_figure(
    ctx: &mut ExpContext,
    name: &str,
    title: &str,
    series: &[(&str, Vec<&str>, hj_core::Ratios)],
) {
    banner(title);
    let mut rows = Vec::new();
    for (phase, labels, ratios) in series {
        for (i, label) in labels.iter().enumerate() {
            let cpu = ratios.get(i) * 100.0;
            println!(
                "{phase:<10} {label:<4} CPU {cpu:>5.1}%   GPU {:>5.1}%",
                100.0 - cpu
            );
            rows.push(format!(
                "{phase},{label},{:.3},{:.3}",
                ratios.get(i),
                1.0 - ratios.get(i)
            ));
        }
    }
    ctx.write_csv(name, "phase,step,cpu_ratio,gpu_ratio", &rows);
}

/// Figure 5: cost-model-optimal workload ratios of the SHJ-PL steps.
pub fn fig05(ctx: &mut ExpContext) {
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let costs = calibrate_from_relations(&sys, &build, &probe, Algorithm::Simple);
    let model = JoinCostModel::new(costs);
    let (build_r, _) =
        optimize_pl_ratios(&model.build, build.len(), costmodel::optimizer::PAPER_DELTA);
    let (probe_r, _) =
        optimize_pl_ratios(&model.probe, probe.len(), costmodel::optimizer::PAPER_DELTA);
    print_ratio_figure(
        ctx,
        "fig05.csv",
        "Figure 5: optimal workload ratios of different steps for SHJ-PL",
        &[
            ("build", vec!["b1", "b2", "b3", "b4"], build_r),
            ("probe", vec!["p1", "p2", "p3", "p4"], probe_r),
        ],
    );
}

/// Figure 6: cost-model-optimal workload ratios of the PHJ-PL steps.
pub fn fig06(ctx: &mut ExpContext) {
    let sys = ctx.coupled();
    let (build, probe) = ctx.default_relations();
    let costs = calibrate_from_relations(&sys, &build, &probe, Algorithm::partitioned_auto());
    let model = JoinCostModel::new(costs);
    let delta = costmodel::optimizer::PAPER_DELTA;
    let (part_r, _) = optimize_pl_ratios(&model.partition, build.len() + probe.len(), delta);
    let (build_r, _) = optimize_pl_ratios(&model.build, build.len(), delta);
    let (probe_r, _) = optimize_pl_ratios(&model.probe, probe.len(), delta);
    print_ratio_figure(
        ctx,
        "fig06.csv",
        "Figure 6: optimal workload ratios of different steps for PHJ-PL",
        &[
            ("partition", vec!["n1", "n2", "n3"], part_r),
            ("build", vec!["b1", "b2", "b3", "b4"], build_r),
            ("probe", vec!["p1", "p2", "p3", "p4"], probe_r),
        ],
    );
}
