//! # hj-bench — experiment harness reproducing the paper's evaluation
//!
//! Every table and figure of the paper's evaluation section (and appendix)
//! has a corresponding experiment here; the `experiments` binary dispatches
//! them by name (`cargo run --release -p hj-bench --bin experiments -- fig13`)
//! and `-- all` runs the full suite.  Each experiment prints the same
//! rows/series the paper reports and writes a CSV next to it under
//! `results/`.
//!
//! | Experiment | Paper reference | Module |
//! |---|---|---|
//! | `table1` | Table 1 (hardware configuration) | [`unitcosts`] |
//! | `fig03` | Figure 3 (time breakdown, discrete vs coupled) | [`breakdown`] |
//! | `fig04` | Figure 4 (per-step unit costs) | [`unitcosts`] |
//! | `fig05`, `fig06` | Figures 5–6 (optimal PL ratios) | [`unitcosts`] |
//! | `fig07`, `fig08`, `fig09` | Figures 7–9 (cost-model accuracy) | [`model_eval`] |
//! | `fig10`–`fig12`, `table3` | Figures 10–12, Table 3 (design tradeoffs) | [`tradeoffs`] |
//! | `fig13`–`fig16`, `fig17_18` | Figures 13–18 (end-to-end comparison) | [`endtoend`] |
//! | `fig19` | Figure 19 (out-of-core joins) | [`breakdown`] |
//! | `fig20` | Figure 20 (latch micro-benchmark) | [`micro`] |
//! | `throughput` | joins/sec under concurrent clients (not in the paper) | [`throughput`] |
//! | `adaptive` | runtime tuner recovering from a bad prior (not in the paper) | [`adaptive`] |
//! | `spill` | larger-than-memory joins under the memory governor (not in the paper) | [`spill`] |
//! | `serving` | open-loop tail latency of the TCP serving layer (not in the paper) | [`serving`] |
//! | `cached` | build-side hash-table cache, cold vs probe-only hot path (not in the paper) | [`cached`] |
//!
//! The global `HJ_SCALE` environment variable divides every cardinality
//! (default 32, i.e. 512 K instead of 16 M tuples) so the whole suite runs in
//! minutes on a laptop while preserving the relative behaviour; set
//! `HJ_SCALE=1` to reproduce at the paper's sizes.

#![warn(missing_docs)]

pub mod adaptive;
pub mod breakdown;
pub mod cached;
pub mod common;
pub mod endtoend;
pub mod micro;
pub mod model_eval;
pub mod serving;
pub mod spill;
pub mod throughput;
pub mod tradeoffs;
pub mod unitcosts;

pub use common::{default_scale, ExpContext};

/// Name and entry point of one experiment.
pub struct Experiment {
    /// Identifier used on the command line (e.g. `fig13`).
    pub name: &'static str,
    /// What the experiment reproduces.
    pub description: &'static str,
    /// Entry point.
    pub run: fn(&mut common::ExpContext),
}

/// The full registry of experiments, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table1",
            description: "Table 1: hardware configuration of the coupled architecture",
            run: unitcosts::table1,
        },
        Experiment {
            name: "fig03",
            description: "Figure 3: time breakdown on discrete vs coupled architectures",
            run: breakdown::fig03,
        },
        Experiment {
            name: "fig04",
            description: "Figure 4: per-step unit costs on the CPU and the GPU (PHJ)",
            run: unitcosts::fig04,
        },
        Experiment {
            name: "fig05",
            description: "Figure 5: optimal workload ratios of SHJ-PL steps",
            run: unitcosts::fig05,
        },
        Experiment {
            name: "fig06",
            description: "Figure 6: optimal workload ratios of PHJ-PL steps",
            run: unitcosts::fig06,
        },
        Experiment {
            name: "fig07",
            description: "Figure 7: estimated vs measured time for SHJ-DD, ratio sweep",
            run: model_eval::fig07,
        },
        Experiment {
            name: "fig08",
            description: "Figure 8: estimated vs measured time for the PL special case",
            run: model_eval::fig08,
        },
        Experiment {
            name: "fig09",
            description: "Figure 9: Monte-Carlo CDF of ratio settings vs the cost-model choice",
            run: model_eval::fig09,
        },
        Experiment {
            name: "fig10",
            description: "Figure 10: shared vs separate hash tables (build phase of DD)",
            run: tradeoffs::fig10,
        },
        Experiment {
            name: "fig11",
            description: "Figure 11: elapsed time and lock overhead vs allocation block size",
            run: tradeoffs::fig11,
        },
        Experiment {
            name: "fig12",
            description: "Figure 12: basic vs optimised memory allocator",
            run: tradeoffs::fig12,
        },
        Experiment {
            name: "table3",
            description: "Table 3: fine-grained vs coarse-grained step definition",
            run: tradeoffs::table3,
        },
        Experiment {
            name: "fig13",
            description: "Figure 13: elapsed time vs build size (uniform data)",
            run: endtoend::fig13,
        },
        Experiment {
            name: "fig14",
            description: "Figure 14: elapsed time vs build size (high-skew data)",
            run: endtoend::fig14,
        },
        Experiment {
            name: "fig15",
            description: "Figure 15: PHJ time breakdown with join selectivity varied",
            run: breakdown::fig15,
        },
        Experiment {
            name: "fig16",
            description: "Figure 16: BasicUnit vs fine-grained co-processing",
            run: endtoend::fig16,
        },
        Experiment {
            name: "fig17_18",
            description: "Figures 17-18: per-phase CPU shares under BasicUnit",
            run: endtoend::fig17_18,
        },
        Experiment {
            name: "fig19",
            description: "Figure 19: joins larger than the zero-copy buffer",
            run: breakdown::fig19,
        },
        Experiment {
            name: "fig20",
            description: "Figure 20: latch micro-benchmark on the CPU and the GPU",
            run: micro::fig20,
        },
        Experiment {
            name: "throughput",
            description: "BENCH_throughput: joins/sec of one shared engine at 1/4/8 clients",
            run: throughput::throughput,
        },
        Experiment {
            name: "adaptive",
            description: "BENCH_adaptive: runtime tuner recovery from a mis-calibrated prior",
            run: adaptive::adaptive,
        },
        Experiment {
            name: "spill",
            description: "BENCH_spill: larger-than-memory joins under the memory governor",
            run: spill::spill,
        },
        Experiment {
            name: "serving",
            description: "BENCH_serving: open-loop tail latency of the TCP serving layer \
                          at 0.5/0.9/1.2x saturation",
            run: serving::serving,
        },
        Experiment {
            name: "cached",
            description: "BENCH_cached: hash-table cache, rebuild-per-request vs probe-only \
                          hot path (in-process and over TCP)",
            run: cached::cached,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let names: Vec<_> = registry().iter().map(|e| e.name).collect();
        for expected in [
            "table1",
            "fig03",
            "fig04",
            "fig05",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "table3",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17_18",
            "fig19",
            "fig20",
            "throughput",
            "adaptive",
            "spill",
            "serving",
            "cached",
        ] {
            assert!(names.contains(&expected), "missing experiment {expected}");
        }
    }

    #[test]
    fn experiment_names_are_unique() {
        let mut names: Vec<_> = registry().iter().map(|e| e.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
