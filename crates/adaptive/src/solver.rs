//! Re-solving the ratio optimisation at runtime.
//!
//! Given per-step, per-device unit costs (ns per tuple) this module picks
//! the per-step CPU ratios minimising the series' elapsed time under the
//! paper's pipelined-execution composition (Eqs. 1, 2, 4, 5) — the same
//! optimisation the offline `costmodel` crate performs, re-implemented here
//! on plain `f64` nanoseconds so the adaptive layer stays below `hj-core`
//! in the dependency graph.  `hj-core`'s test suite cross-checks this
//! composition against its own `compose_pipeline`.
//!
//! Elapsed time is linear in the item count for fixed ratios, so the solver
//! works per tuple: `cpu_unit_ns[i] · r_i` vs `gpu_unit_ns[i] · (1 − r_i)`.

/// Elapsed time per tuple of one step series under pipelined co-processing:
/// each device's total is the sum of its step times plus the pipeline
/// delays charged when consecutive steps shift work between the devices,
/// and the series costs the slower device (Eqs. 1, 2, 4, 5).
///
/// `cpu_ns[i]` / `gpu_ns[i]` are the devices' *unit* costs of step `i`;
/// `ratios[i]` is the CPU share.  All three slices must have equal length.
pub fn pipeline_elapsed_ns(cpu_ns: &[f64], gpu_ns: &[f64], ratios: &[f64]) -> f64 {
    assert_eq!(cpu_ns.len(), gpu_ns.len(), "per-device step counts differ");
    assert_eq!(cpu_ns.len(), ratios.len(), "ratio count differs");
    let n = ratios.len();
    let step_time = |i: usize| {
        let r = ratios[i].clamp(0.0, 1.0);
        (cpu_ns[i] * r, gpu_ns[i] * (1.0 - r))
    };

    let mut cpu_total = 0.0f64;
    let mut gpu_total = 0.0f64;
    for i in 0..n {
        let (t_cpu, t_gpu) = step_time(i);
        let mut d_cpu = 0.0;
        let mut d_gpu = 0.0;
        if i > 0 {
            let r_i = ratios[i].clamp(0.0, 1.0);
            let r_prev = ratios[i - 1].clamp(0.0, 1.0);
            let (_, t_gpu_prev) = step_time(i - 1);
            if r_i > r_prev + 1e-12 {
                // Eq. 4: the CPU takes on more work than in the previous
                // step and may stall on GPU output of step i-1.
                let frac = if (1.0 - r_prev) > 1e-12 {
                    (1.0 - r_i) / (1.0 - r_prev)
                } else {
                    0.0
                };
                let gpu_pipelined_end = (gpu_total - t_gpu_prev * frac).max(0.0);
                d_cpu = (gpu_pipelined_end - (cpu_total + t_cpu)).max(0.0);
            } else if r_i + 1e-12 < r_prev {
                // Eq. 5: the GPU takes on more work and may stall on CPU
                // output of step i-1.
                let frac = if (1.0 - r_i) > 1e-12 {
                    (1.0 - r_prev) / (1.0 - r_i)
                } else {
                    0.0
                };
                let gpu_after_step = gpu_total + t_gpu;
                d_gpu = (cpu_total - (gpu_after_step - t_gpu * frac).max(0.0)).max(0.0);
            }
        }
        cpu_total += t_cpu + d_cpu;
        gpu_total += t_gpu + d_gpu;
    }
    cpu_total.max(gpu_total)
}

/// Chooses per-step CPU ratios minimising [`pipeline_elapsed_ns`]: a coarse
/// full grid seeds per-step coordinate descent at granularity `delta` —
/// the same scheme as the offline optimiser, cheap enough to run at every
/// re-plan point.
pub fn solve_ratios(cpu_ns: &[f64], gpu_ns: &[f64], delta: f64) -> Vec<f64> {
    assert_eq!(cpu_ns.len(), gpu_ns.len(), "per-device step counts differ");
    let n = cpu_ns.len();
    if n == 0 {
        return Vec::new();
    }
    let delta = if delta.is_finite() {
        delta.clamp(1e-3, 0.5)
    } else {
        0.02
    };

    // Coarse grid: 5 levels per step (5^4 = 625 evaluations at most).
    let coarse = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut best = vec![0.0; n];
    let mut best_time = f64::MAX;
    let mut odometer = vec![0usize; n];
    'grid: loop {
        let candidate: Vec<f64> = odometer.iter().map(|&i| coarse[i]).collect();
        let t = pipeline_elapsed_ns(cpu_ns, gpu_ns, &candidate);
        if t < best_time {
            best_time = t;
            best = candidate;
        }
        let mut pos = 0;
        loop {
            if pos == n {
                break 'grid;
            }
            odometer[pos] += 1;
            if odometer[pos] < coarse.len() {
                break;
            }
            odometer[pos] = 0;
            pos += 1;
        }
    }

    // Per-step coordinate descent at the fine δ.
    let mut levels = Vec::new();
    let mut x = 0.0f64;
    while x < 1.0 + 1e-9 {
        levels.push(x.min(1.0));
        x += delta;
    }
    if (levels.last().copied().unwrap_or(0.0) - 1.0).abs() > 1e-9 {
        levels.push(1.0);
    }
    for _round in 0..4 {
        let mut improved = false;
        for step in 0..n {
            let mut local = (best[step], best_time);
            for &candidate in &levels {
                let mut trial = best.clone();
                trial[step] = candidate;
                let t = pipeline_elapsed_ns(cpu_ns, gpu_ns, &trial);
                if t < local.1 {
                    local = (candidate, t);
                }
            }
            if local.1 < best_time {
                best[step] = local.0;
                best_time = local.1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_series_is_a_plain_sum() {
        let cpu = [10.0, 20.0, 5.0];
        let gpu = [0.0; 3];
        assert!((pipeline_elapsed_ns(&cpu, &gpu, &[1.0; 3]) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn equal_ratios_have_no_pipeline_delay() {
        let cpu = [20.0, 24.0];
        let gpu = [18.0, 16.0];
        // r = 0.5 → each device does half of each step, no shifts.
        let t = pipeline_elapsed_ns(&cpu, &gpu, &[0.5, 0.5]);
        assert!((t - f64::max(10.0 + 12.0, 9.0 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn full_shift_charges_the_stall() {
        // Step 1 entirely on the GPU (1000 ns), step 2 entirely on the CPU
        // (300 ns): the CPU finishes with the GPU's last tuple (Eq. 4).
        let cpu = [0.0, 300.0];
        let gpu = [1000.0, 0.0];
        let t = pipeline_elapsed_ns(&cpu, &gpu, &[0.0, 1.0]);
        assert!((t - 1000.0).abs() < 1e-6, "elapsed {t}");
    }

    #[test]
    fn solver_puts_a_gpu_friendly_step_on_the_gpu() {
        // Figure-4 shape: the hash step is ~15x faster on the GPU, the
        // pointer-chasing steps roughly at parity.
        let cpu = [22.0, 5.0, 10.0, 6.0];
        let gpu = [1.5, 4.0, 9.0, 5.0];
        let ratios = solve_ratios(&cpu, &gpu, 0.02);
        assert!(ratios[0] <= 0.1, "hash step ratio {:?}", ratios);
        let t = pipeline_elapsed_ns(&cpu, &gpu, &ratios);
        let cpu_only = pipeline_elapsed_ns(&cpu, &gpu, &[1.0; 4]);
        let gpu_only = pipeline_elapsed_ns(&cpu, &gpu, &[0.0; 4]);
        assert!(t <= cpu_only && t <= gpu_only);
    }

    #[test]
    fn solver_matches_brute_force_on_a_small_grid() {
        let cpu = [22.0, 5.0, 10.0, 6.0];
        let gpu = [1.5, 4.0, 9.0, 5.0];
        let levels = [0.0, 0.25, 0.5, 0.75, 1.0];
        let mut brute = f64::MAX;
        for a in levels {
            for b in levels {
                for c in levels {
                    for d in levels {
                        brute = brute.min(pipeline_elapsed_ns(&cpu, &gpu, &[a, b, c, d]));
                    }
                }
            }
        }
        let solved = pipeline_elapsed_ns(&cpu, &gpu, &solve_ratios(&cpu, &gpu, 0.25));
        assert!(solved <= brute * 1.001, "solved {solved} vs brute {brute}");
    }

    #[test]
    fn empty_series_solves_to_nothing() {
        assert!(solve_ratios(&[], &[], 0.02).is_empty());
        assert_eq!(pipeline_elapsed_ns(&[], &[], &[]), 0.0);
    }

    #[test]
    fn balanced_costs_split_the_work_evenly_in_time() {
        // With identical unit costs the optimum is 20 ns/tuple (half the
        // 40 ns total on each device); many ratio vectors tie, so assert
        // the achieved time rather than one particular vector.
        let cpu = [10.0; 4];
        let gpu = [10.0; 4];
        let ratios = solve_ratios(&cpu, &gpu, 0.02);
        let t = pipeline_elapsed_ns(&cpu, &gpu, &ratios);
        assert!((t - 20.0).abs() < 0.5, "elapsed {t} with {ratios:?}");
    }
}
