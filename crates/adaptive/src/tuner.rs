//! The feedback controller: telemetry in, re-planned ratios out.

use crate::estimator::EwmaEstimator;
use crate::solver::solve_ratios;
use crate::{AdaptiveConfig, Lane, SeriesKind};

/// Per-series controller state.
#[derive(Debug, Clone)]
struct SeriesState {
    initial: Vec<f64>,
    current: Vec<f64>,
    cpu: Vec<EwmaEstimator>,
    gpu: Vec<EwmaEstimator>,
    /// Wall-clock ns/tuple of native (real-thread) execution of this
    /// series; telemetry only, never re-planned against.
    wall: EwmaEstimator,
    morsels_since_replan: usize,
    /// New samples arrived since the last re-plan (a re-plan without fresh
    /// evidence would be a no-op and is skipped).
    dirty: bool,
}

/// Online controller closing the loop between execution telemetry and the
/// per-step workload ratios.
///
/// Seeded with the offline plan's ratios (and optionally a calibrated
/// unit-cost prior), it ingests per-morsel, per-lane timings via
/// [`observe`](Self::observe), and re-solves the remaining work's ratios
/// at step boundaries ([`step_boundary`](Self::step_boundary)) and every
/// [`AdaptiveConfig::replan_every_morsels`] morsels within a step
/// ([`morsel_tick`](Self::morsel_tick)).  Lanes the current ratios starve
/// are forced a small exploration share so a bad prior cannot lock the
/// controller out of ever measuring the faster device.
///
/// The tuner only ever chooses *ratios*; it never alters which tuples are
/// processed or in what order, so adaptive and static runs produce
/// identical join results by construction.
#[derive(Debug, Clone)]
pub struct RatioTuner {
    config: AdaptiveConfig,
    series: [SeriesState; 3],
    samples: u64,
    replans: u64,
}

/// How one series' ratios evolved over a run (part of [`AdaptiveReport`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesAdaptation {
    /// Which series.
    pub kind: SeriesKind,
    /// The ratios the run started with (the offline plan).
    pub initial: Vec<f64>,
    /// The ratios in effect when the run finished.
    pub converged: Vec<f64>,
    /// Mean estimator confidence over the series' (step, lane) pairs —
    /// how much of the final plan rests on real observations (0 = prior
    /// only, → 1 = fully measured).
    pub confidence: f64,
    /// Final per-step `(CPU, GPU)` unit-cost estimates, ns per tuple
    /// (`None` for lanes neither seeded nor sampled).
    pub unit_costs_ns: Vec<(Option<f64>, Option<f64>)>,
    /// Native wall-clock unit cost of this series, when the run executed
    /// on real threads (ns per tuple).
    pub wall_ns_per_tuple: Option<f64>,
}

/// Summary of one adaptive run, surfaced through the engine's
/// `JoinOutcome` and aggregated into its stats.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// Re-plans performed (step boundaries + intra-step ticks that had
    /// fresh telemetry).
    pub replans: u64,
    /// Telemetry observations ingested across all series and lanes.
    pub samples: u64,
    /// Per-series initial vs converged ratios and confidence.
    pub series: Vec<SeriesAdaptation>,
}

impl AdaptiveReport {
    /// The adaptation record of one series.
    pub fn series(&self, kind: SeriesKind) -> &SeriesAdaptation {
        &self.series[kind.index()]
    }

    /// Largest absolute per-step ratio shift between the initial and the
    /// converged plan, across all series — 0 when nothing was re-planned.
    pub fn max_ratio_shift(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.initial.iter().zip(&s.converged))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl RatioTuner {
    /// A controller seeded with the offline plan's per-series ratios.
    ///
    /// # Panics
    /// Panics when a ratio vector's length does not match its series' step
    /// count (3 for partition, 4 for build/probe) — an internal invariant
    /// of the callers, which derive the vectors from a validated scheme.
    pub fn new(
        config: AdaptiveConfig,
        partition: Vec<f64>,
        build: Vec<f64>,
        probe: Vec<f64>,
    ) -> Self {
        let make = |kind: SeriesKind, initial: Vec<f64>| {
            assert_eq!(
                initial.len(),
                kind.steps(),
                "{} series needs {} ratios",
                kind.label(),
                kind.steps()
            );
            let n = initial.len();
            let mut cpu: Vec<EwmaEstimator> = (0..n)
                .map(|_| EwmaEstimator::new(config.ewma_alpha))
                .collect();
            let mut gpu: Vec<EwmaEstimator> = (0..n)
                .map(|_| EwmaEstimator::new(config.ewma_alpha))
                .collect();
            if let Some(prior) = &config.prior {
                let series = prior.series(kind);
                for i in 0..n {
                    cpu[i].seed(series.cpu_ns[i]);
                    gpu[i].seed(series.gpu_ns[i]);
                }
            }
            SeriesState {
                current: initial.clone(),
                initial,
                cpu,
                gpu,
                wall: EwmaEstimator::new(config.ewma_alpha),
                morsels_since_replan: 0,
                dirty: false,
            }
        };
        RatioTuner {
            series: [
                make(SeriesKind::Partition, partition),
                make(SeriesKind::Build, build),
                make(SeriesKind::Probe, probe),
            ],
            samples: 0,
            replans: 0,
            config,
        }
    }

    /// The intra-step re-plan cadence in morsels (0 = boundaries only).
    pub fn replan_every_morsels(&self) -> usize {
        self.config.replan_every_morsels
    }

    /// The CPU ratio currently planned for one step.
    pub fn ratio(&self, kind: SeriesKind, step: usize) -> f64 {
        self.series[kind.index()].current[step]
    }

    /// The ratios currently planned for one series.
    pub fn ratios(&self, kind: SeriesKind) -> &[f64] {
        &self.series[kind.index()].current
    }

    /// Feeds one lane timing: `items` tuples of step `step` took `ns`
    /// nanoseconds on `lane`.  Empty lanes are ignored.
    pub fn observe(&mut self, kind: SeriesKind, step: usize, lane: Lane, items: usize, ns: f64) {
        if items == 0 {
            return;
        }
        let state = &mut self.series[kind.index()];
        let estimator = match lane {
            Lane::Cpu => &mut state.cpu[step],
            Lane::Gpu => &mut state.gpu[step],
        };
        let before = estimator.samples();
        estimator.observe(items, ns);
        if estimator.samples() > before {
            state.dirty = true;
            self.samples += 1;
        }
    }

    /// Feeds native wall-clock telemetry: `items` tuples of the series took
    /// `ns` nanoseconds on real threads.  Surfaced in the report; never
    /// re-planned against (native execution has no CPU/GPU lanes).
    pub fn observe_wall(&mut self, kind: SeriesKind, items: usize, ns: f64) {
        if items == 0 {
            return;
        }
        let state = &mut self.series[kind.index()];
        let before = state.wall.samples();
        state.wall.observe(items, ns);
        if state.wall.samples() > before {
            self.samples += 1;
        }
    }

    /// Accounts `morsels` processed morsels of one series and re-plans when
    /// the intra-step cadence is reached (and fresh telemetry arrived).
    /// Returns whether a re-plan happened.
    pub fn morsel_tick(&mut self, kind: SeriesKind, morsels: usize) -> bool {
        let every = self.config.replan_every_morsels;
        let state = &mut self.series[kind.index()];
        state.morsels_since_replan += morsels;
        if every == 0 || state.morsels_since_replan < every {
            return false;
        }
        self.replan(kind)
    }

    /// Re-plans one series at a step boundary (skipped without fresh
    /// telemetry).  Returns whether a re-plan happened.
    pub fn step_boundary(&mut self, kind: SeriesKind) -> bool {
        self.replan(kind)
    }

    /// Re-solves one series' ratios from the current estimates: solver over
    /// fully-estimated series, per-step balance where only single steps are
    /// known, and an exploration clamp granting unsampled lanes
    /// [`AdaptiveConfig::explore_share`] of their step so the controller
    /// can measure devices the current plan starves.
    fn replan(&mut self, kind: SeriesKind) -> bool {
        let explore = self.config.explore_share;
        let delta = self.config.delta;
        let state = &mut self.series[kind.index()];
        state.morsels_since_replan = 0;
        if !state.dirty {
            return false;
        }
        state.dirty = false;

        let n = state.current.len();
        let estimates: Vec<(Option<f64>, Option<f64>)> = (0..n)
            .map(|i| (state.cpu[i].estimate_ns(), state.gpu[i].estimate_ns()))
            .collect();
        let mut next = if estimates.iter().all(|(c, g)| c.is_some() && g.is_some()) {
            let cpu_ns: Vec<f64> = estimates.iter().map(|(c, _)| c.unwrap()).collect();
            let gpu_ns: Vec<f64> = estimates.iter().map(|(_, g)| g.unwrap()).collect();
            solve_ratios(&cpu_ns, &gpu_ns, delta)
        } else {
            // Partial knowledge: balance the steps whose both lanes are
            // estimated, keep the plan elsewhere.
            (0..n)
                .map(|i| match estimates[i] {
                    (Some(c), Some(g)) if c + g > 0.0 => g / (c + g),
                    _ => state.current[i],
                })
                .collect()
        };
        for (i, r) in next.iter_mut().enumerate() {
            if !state.cpu[i].sampled() {
                *r = r.max(explore);
            }
            if !state.gpu[i].sampled() {
                *r = r.min(1.0 - explore);
            }
            *r = r.clamp(0.0, 1.0);
        }
        state.current = next;
        self.replans += 1;
        true
    }

    /// The current per-step `(CPU, GPU)` unit-cost estimates of one series
    /// (ns per tuple; `None` while a lane is neither seeded nor sampled).
    pub fn estimates_ns(&self, kind: SeriesKind) -> Vec<(Option<f64>, Option<f64>)> {
        let state = &self.series[kind.index()];
        (0..state.current.len())
            .map(|i| (state.cpu[i].estimate_ns(), state.gpu[i].estimate_ns()))
            .collect()
    }

    /// Re-plans performed so far.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Telemetry observations ingested so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Summarises the run: initial vs converged ratios, confidence and
    /// native unit costs per series, plus the global counters.
    pub fn report(&self) -> AdaptiveReport {
        let series = SeriesKind::ALL
            .iter()
            .map(|&kind| {
                let state = &self.series[kind.index()];
                let estimators = state.cpu.iter().chain(&state.gpu);
                let confidence = estimators
                    .clone()
                    .map(EwmaEstimator::confidence)
                    .sum::<f64>()
                    / (2 * state.current.len()) as f64;
                SeriesAdaptation {
                    kind,
                    initial: state.initial.clone(),
                    converged: state.current.clone(),
                    confidence,
                    unit_costs_ns: self.estimates_ns(kind),
                    wall_ns_per_tuple: state.wall.estimate_ns(),
                }
            })
            .collect();
        AdaptiveReport {
            replans: self.replans,
            samples: self.samples,
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JoinPrior, SeriesPrior};

    fn tuner(config: AdaptiveConfig) -> RatioTuner {
        RatioTuner::new(config, vec![0.0; 3], vec![1.0; 4], vec![0.5; 4])
    }

    fn figure4_prior() -> JoinPrior {
        JoinPrior {
            partition: SeriesPrior {
                cpu_ns: vec![20.0, 4.0, 8.0],
                gpu_ns: vec![1.5, 3.0, 7.0],
            },
            build: SeriesPrior {
                cpu_ns: vec![22.0, 5.0, 10.0, 6.0],
                gpu_ns: vec![1.5, 4.0, 9.0, 5.0],
            },
            probe: SeriesPrior {
                cpu_ns: vec![23.0, 5.0, 9.0, 6.0],
                gpu_ns: vec![1.4, 4.0, 8.5, 5.0],
            },
        }
    }

    #[test]
    fn unsampled_tuner_keeps_the_static_plan() {
        let mut t = tuner(AdaptiveConfig::default());
        assert_eq!(t.ratios(SeriesKind::Build), &[1.0; 4]);
        // A boundary without telemetry must not re-plan (adaptive == static
        // until evidence arrives).
        assert!(!t.step_boundary(SeriesKind::Build));
        assert_eq!(t.replans(), 0);
        assert_eq!(t.ratio(SeriesKind::Build, 0), 1.0);
    }

    #[test]
    fn observation_plus_boundary_moves_work_toward_the_unsampled_device() {
        let mut t = tuner(AdaptiveConfig::default());
        // b1 measured slow on the CPU; the GPU is unsampled, so exploration
        // must grant it a share even though no GPU estimate exists.
        t.observe(SeriesKind::Build, 0, Lane::Cpu, 1000, 22_000.0);
        assert!(t.step_boundary(SeriesKind::Build));
        assert!(t.ratio(SeriesKind::Build, 0) <= 0.9);
        assert_eq!(t.replans(), 1);
        assert_eq!(t.samples(), 1);
    }

    #[test]
    fn fully_sampled_series_converges_to_the_solver_optimum() {
        let mut t = tuner(AdaptiveConfig::default().with_explore_share(0.0));
        // Feed the Figure-4 build costs on both lanes of every step.
        let cpu = [22.0, 5.0, 10.0, 6.0];
        let gpu = [1.5, 4.0, 9.0, 5.0];
        for step in 0..4 {
            t.observe(SeriesKind::Build, step, Lane::Cpu, 1000, cpu[step] * 1000.0);
            t.observe(SeriesKind::Build, step, Lane::Gpu, 1000, gpu[step] * 1000.0);
        }
        t.step_boundary(SeriesKind::Build);
        let expected = crate::solver::solve_ratios(&cpu, &gpu, 0.02);
        assert_eq!(t.ratios(SeriesKind::Build), expected.as_slice());
        // The hash step lands on the GPU.
        assert!(t.ratio(SeriesKind::Build, 0) <= 0.1);
    }

    #[test]
    fn bad_prior_is_overridden_by_observations() {
        // Prior with CPU and GPU deliberately swapped: it claims the hash
        // step is CPU-friendly.
        let good = figure4_prior();
        let bad = JoinPrior {
            partition: SeriesPrior {
                cpu_ns: good.partition.gpu_ns.clone(),
                gpu_ns: good.partition.cpu_ns.clone(),
            },
            build: SeriesPrior {
                cpu_ns: good.build.gpu_ns.clone(),
                gpu_ns: good.build.cpu_ns.clone(),
            },
            probe: SeriesPrior {
                cpu_ns: good.probe.gpu_ns.clone(),
                gpu_ns: good.probe.cpu_ns.clone(),
            },
        };
        let mut t = RatioTuner::new(
            AdaptiveConfig::default().with_prior(bad),
            vec![0.0; 3],
            vec![1.0; 4],
            vec![0.5; 4],
        );
        // True measurements arrive for every lane (several rounds so the
        // EWMA washes the seed out).
        for _ in 0..6 {
            for step in 0..4 {
                t.observe(
                    SeriesKind::Build,
                    step,
                    Lane::Cpu,
                    1000,
                    good.build.cpu_ns[step] * 1000.0,
                );
                t.observe(
                    SeriesKind::Build,
                    step,
                    Lane::Gpu,
                    1000,
                    good.build.gpu_ns[step] * 1000.0,
                );
            }
            t.step_boundary(SeriesKind::Build);
        }
        // Despite the inverted prior, b1 converged onto the GPU.
        assert!(
            t.ratio(SeriesKind::Build, 0) <= 0.1,
            "b1 ratio {} did not recover from the bad prior",
            t.ratio(SeriesKind::Build, 0)
        );
        let report = t.report();
        assert!(report.series(SeriesKind::Build).confidence > 0.8);
        assert!(report.max_ratio_shift() > 0.5);
    }

    #[test]
    fn morsel_tick_honours_the_cadence() {
        let mut t = tuner(AdaptiveConfig::default().with_replan_every_morsels(3));
        t.observe(SeriesKind::Probe, 0, Lane::Cpu, 10, 100.0);
        assert!(!t.morsel_tick(SeriesKind::Probe, 2));
        assert!(t.morsel_tick(SeriesKind::Probe, 1));
        // Cadence 0 disables intra-step re-planning entirely.
        let mut t0 = tuner(AdaptiveConfig::default().with_replan_every_morsels(0));
        t0.observe(SeriesKind::Probe, 0, Lane::Cpu, 10, 100.0);
        assert!(!t0.morsel_tick(SeriesKind::Probe, 1_000));
        assert!(t0.step_boundary(SeriesKind::Probe));
    }

    #[test]
    fn wall_telemetry_reaches_the_report_without_replanning() {
        let mut t = tuner(AdaptiveConfig::default());
        t.observe_wall(SeriesKind::Build, 1000, 5_000.0);
        t.observe_wall(SeriesKind::Build, 1000, 7_000.0);
        assert!(
            !t.step_boundary(SeriesKind::Build),
            "wall data never re-plans"
        );
        let report = t.report();
        assert_eq!(report.replans, 0);
        assert_eq!(report.samples, 2);
        let wall = report.series(SeriesKind::Build).wall_ns_per_tuple.unwrap();
        assert!(wall > 5.0 && wall < 7.0);
        assert_eq!(report.series(SeriesKind::Probe).wall_ns_per_tuple, None);
    }

    #[test]
    fn report_reflects_initial_and_converged_plans() {
        let mut t = tuner(AdaptiveConfig::default());
        t.observe(SeriesKind::Partition, 0, Lane::Cpu, 100, 2000.0);
        t.observe(SeriesKind::Partition, 0, Lane::Gpu, 100, 150.0);
        t.step_boundary(SeriesKind::Partition);
        let report = t.report();
        assert_eq!(report.series(SeriesKind::Partition).initial, vec![0.0; 3]);
        assert_ne!(
            report.series(SeriesKind::Partition).converged,
            report.series(SeriesKind::Partition).initial
        );
        assert_eq!(report.replans, 1);
        assert_eq!(report.series.len(), 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_seed_lengths_panic() {
        let _ = RatioTuner::new(
            AdaptiveConfig::default(),
            vec![0.0; 2],
            vec![0.0; 4],
            vec![0.0; 4],
        );
    }
}
