//! Exponentially-weighted unit-cost estimation.
//!
//! Each (step, lane) pair owns one [`EwmaEstimator`] tracking ns-per-tuple.
//! An estimator can be *seeded* with an offline prior — the seed makes the
//! estimate available before the first sample, but carries zero
//! [`confidence`](EwmaEstimator::confidence) and is progressively replaced
//! by real observations, so a wrong prior cannot survive contact with
//! telemetry.

/// EWMA estimate of one lane's unit cost (ns per tuple).
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaEstimator {
    alpha: f64,
    mean_ns: f64,
    samples: u64,
    seeded: bool,
}

impl EwmaEstimator {
    /// An empty estimator with the given EWMA weight for new samples
    /// (clamped into `(0, 1]`).
    pub fn new(alpha: f64) -> Self {
        EwmaEstimator {
            alpha: if alpha.is_finite() {
                alpha.clamp(f64::MIN_POSITIVE, 1.0)
            } else {
                1.0
            },
            mean_ns: 0.0,
            samples: 0,
            seeded: false,
        }
    }

    /// Seeds the estimate with a prior unit cost (ignored if non-positive
    /// or non-finite).  A seed never counts as a sample.
    pub fn seed(&mut self, prior_ns: f64) {
        if prior_ns.is_finite() && prior_ns > 0.0 && self.samples == 0 {
            self.mean_ns = prior_ns;
            self.seeded = true;
        }
    }

    /// Feeds one observation: `items` tuples took `total_ns` nanoseconds.
    /// Zero-item or non-finite observations are ignored.
    ///
    /// The first real sample *replaces* a seeded prior rather than blending
    /// with it: a wrong prior would otherwise keep the estimate biased for
    /// several samples, and — because the re-planner shrinks the lanes of
    /// devices it believes slow — biased lanes produce few samples, so the
    /// lie could sustain itself for a whole run.
    pub fn observe(&mut self, items: usize, total_ns: f64) {
        if items == 0 || !total_ns.is_finite() || total_ns < 0.0 {
            return;
        }
        let sample = total_ns / items as f64;
        if self.samples == 0 {
            self.mean_ns = sample;
        } else {
            self.mean_ns += self.alpha * (sample - self.mean_ns);
        }
        self.samples += 1;
    }

    /// The current unit-cost estimate, `None` while neither seeded nor
    /// sampled.
    pub fn estimate_ns(&self) -> Option<f64> {
        if self.samples > 0 || self.seeded {
            Some(self.mean_ns)
        } else {
            None
        }
    }

    /// Number of real observations folded in (seeds excluded).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// True once at least one real observation arrived.
    pub fn sampled(&self) -> bool {
        self.samples > 0
    }

    /// How much of the current estimate comes from real observations rather
    /// than the seed: `1 − (1 − α)^samples`, in `[0, 1)` — 0 for a purely
    /// seeded (or empty) estimator, approaching 1 as samples accumulate.
    pub fn confidence(&self) -> f64 {
        1.0 - (1.0 - self.alpha).powi(self.samples.min(i32::MAX as u64) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_replaces_the_empty_mean() {
        let mut e = EwmaEstimator::new(0.3);
        assert_eq!(e.estimate_ns(), None);
        e.observe(10, 50.0);
        assert_eq!(e.estimate_ns(), Some(5.0));
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn ewma_moves_toward_new_samples() {
        let mut e = EwmaEstimator::new(0.5);
        e.observe(1, 10.0);
        e.observe(1, 20.0);
        assert_eq!(e.estimate_ns(), Some(15.0));
        e.observe(1, 20.0);
        assert_eq!(e.estimate_ns(), Some(17.5));
    }

    #[test]
    fn seed_is_available_but_yields_to_the_first_sample() {
        let mut e = EwmaEstimator::new(0.4);
        e.seed(100.0);
        assert_eq!(e.estimate_ns(), Some(100.0));
        assert_eq!(e.confidence(), 0.0);
        assert!(!e.sampled());
        // The first real sample replaces the seed outright — a wrong prior
        // must not outlive contact with evidence.
        e.observe(1, 10.0);
        assert_eq!(e.estimate_ns(), Some(10.0));
        assert!(e.confidence() > 0.0);
        // Later samples blend as usual.
        e.observe(1, 20.0);
        assert_eq!(e.estimate_ns(), Some(14.0));
    }

    #[test]
    fn confidence_grows_with_samples() {
        let mut e = EwmaEstimator::new(0.4);
        let mut last = e.confidence();
        for _ in 0..8 {
            e.observe(1, 1.0);
            let c = e.confidence();
            assert!(c > last);
            last = c;
        }
        assert!(last > 0.9);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut e = EwmaEstimator::new(0.5);
        e.observe(0, 100.0);
        e.observe(10, f64::NAN);
        e.observe(10, -5.0);
        assert_eq!(e.estimate_ns(), None);
        e.seed(-3.0);
        e.seed(f64::INFINITY);
        assert_eq!(e.estimate_ns(), None);
    }
}
