//! # hj-adaptive — online cost-model feedback for per-step CPU/GPU ratios
//!
//! The offline cost model of the `costmodel` crate picks workload ratios
//! *once*, before execution.  A mis-calibrated prior or a skewed input then
//! wastes one device for the whole join.  This crate closes the loop: it
//! turns per-morsel, per-lane timing telemetry collected *during* execution
//! into exponentially-weighted unit-cost estimates
//! ([`estimator::EwmaEstimator`]), re-solves the paper's ratio optimisation
//! (Eqs. 1–5) against those estimates ([`solver`]), and a feedback
//! controller ([`tuner::RatioTuner`]) re-plans the remaining morsels'
//! ratios at step boundaries and, optionally, every K morsels.
//!
//! The crate is deliberately *below* `hj-core` in the dependency graph —
//! it knows nothing about relations, schemes or engines, only about step
//! series, lanes, tuples and nanoseconds — so `hj_core` can re-export it
//! (as `hj_core::adaptive`) and feed it from the step pipeline, and
//! `costmodel` can seed it with a calibrated prior ([`JoinPrior`]).
//!
//! ```
//! use hj_adaptive::{AdaptiveConfig, Lane, RatioTuner, SeriesKind};
//!
//! // Seed with the offline plan: build steps b1..b4 all on the CPU.
//! let mut tuner = RatioTuner::new(
//!     AdaptiveConfig::default(),
//!     vec![0.0; 3],
//!     vec![1.0; 4],
//!     vec![0.0; 4],
//! );
//! // Telemetry: the CPU needed 2200 ns for 100 tuples of b1...
//! tuner.observe(SeriesKind::Build, 0, Lane::Cpu, 100, 2200.0);
//! // ...so the next re-plan moves b1 work toward the (unsampled) GPU.
//! tuner.step_boundary(SeriesKind::Build);
//! assert!(tuner.ratio(SeriesKind::Build, 0) < 1.0);
//! ```

#![warn(missing_docs)]

pub mod estimator;
pub mod solver;
pub mod tuner;

pub use estimator::EwmaEstimator;
pub use tuner::{AdaptiveReport, RatioTuner, SeriesAdaptation};

/// Which step series an observation or ratio belongs to — the adaptive
/// layer's view of `hj_core`'s partition / build / probe series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeriesKind {
    /// A radix-partition pass (`n1..n3`).
    Partition,
    /// The build phase (`b1..b4`).
    Build,
    /// The probe phase (`p1..p4`).
    Probe,
}

impl SeriesKind {
    /// Every series, in execution order.
    pub const ALL: [SeriesKind; 3] = [SeriesKind::Partition, SeriesKind::Build, SeriesKind::Probe];

    /// Number of fine-grained steps in this series.
    pub fn steps(self) -> usize {
        match self {
            SeriesKind::Partition => 3,
            SeriesKind::Build | SeriesKind::Probe => 4,
        }
    }

    /// Short label ("partition", "build", "probe").
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Partition => "partition",
            SeriesKind::Build => "build",
            SeriesKind::Probe => "probe",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            SeriesKind::Partition => 0,
            SeriesKind::Build => 1,
            SeriesKind::Probe => 2,
        }
    }
}

/// Which device lane of a morsel an observation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The CPU lane (the morsel prefix).
    Cpu,
    /// The GPU lane (the morsel suffix).
    Gpu,
}

/// Per-step, per-device unit-cost prior (ns per tuple) for one step series —
/// typically extracted from a calibrated offline cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPrior {
    /// Prior CPU unit cost of each step, ns per tuple.
    pub cpu_ns: Vec<f64>,
    /// Prior GPU unit cost of each step, ns per tuple.
    pub gpu_ns: Vec<f64>,
}

/// Unit-cost priors for all three step series of a hash join.
///
/// Seeds the tuner's estimators so the very first re-plan can already solve
/// every step; observations then *override* the prior through the EWMA (a
/// sampled lane trusts its measurements, not the seed), which is what lets
/// the tuner recover from a deliberately mis-calibrated prior.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPrior {
    /// Prior for one partition pass (`n1..n3`).
    pub partition: SeriesPrior,
    /// Prior for the build phase (`b1..b4`).
    pub build: SeriesPrior,
    /// Prior for the probe phase (`p1..p4`).
    pub probe: SeriesPrior,
}

impl JoinPrior {
    /// The prior of one series.
    pub fn series(&self, kind: SeriesKind) -> &SeriesPrior {
        match kind {
            SeriesKind::Partition => &self.partition,
            SeriesKind::Build => &self.build,
            SeriesKind::Probe => &self.probe,
        }
    }
}

/// Knobs of the feedback controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// EWMA weight of a new unit-cost sample, in `(0, 1]`.  Larger values
    /// react faster; smaller values smooth noisy telemetry harder.
    pub ewma_alpha: f64,
    /// Re-plan the remaining morsels of a step after every this many
    /// observed morsels; `0` re-plans at step boundaries only.
    pub replan_every_morsels: usize,
    /// Ratio granularity δ of the re-solver's coordinate refinement (the
    /// paper uses 0.02).
    pub delta: f64,
    /// Smallest workload share forced onto a lane that has produced no
    /// samples yet, so the controller can measure a device the current
    /// ratios would starve (escapes 0/1 ratios born from a bad prior).
    pub explore_share: f64,
    /// Optional calibrated unit-cost prior seeding the estimators.
    pub prior: Option<JoinPrior>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            ewma_alpha: 0.4,
            replan_every_morsels: 4,
            delta: 0.02,
            explore_share: 0.10,
            prior: None,
        }
    }
}

impl AdaptiveConfig {
    /// Sets the EWMA weight of a new sample.
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Self {
        self.ewma_alpha = alpha;
        self
    }

    /// Sets the intra-step re-plan cadence (0 = step boundaries only).
    pub fn with_replan_every_morsels(mut self, morsels: usize) -> Self {
        self.replan_every_morsels = morsels;
        self
    }

    /// Sets the re-solver's ratio granularity δ.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the exploration share forced onto unsampled lanes.
    pub fn with_explore_share(mut self, share: f64) -> Self {
        self.explore_share = share;
        self
    }

    /// Seeds the estimators with a calibrated unit-cost prior.
    pub fn with_prior(mut self, prior: JoinPrior) -> Self {
        self.prior = Some(prior);
        self
    }

    /// Validates the knobs.
    ///
    /// # Errors
    /// Returns a human-readable description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if !self.ewma_alpha.is_finite() || self.ewma_alpha <= 0.0 || self.ewma_alpha > 1.0 {
            return Err(format!(
                "adaptive ewma_alpha {} must be in (0, 1]",
                self.ewma_alpha
            ));
        }
        if !self.delta.is_finite() || self.delta <= 0.0 || self.delta > 0.5 {
            return Err(format!("adaptive delta {} must be in (0, 0.5]", self.delta));
        }
        if !self.explore_share.is_finite() || !(0.0..=0.5).contains(&self.explore_share) {
            return Err(format!(
                "adaptive explore_share {} must be in [0, 0.5]",
                self.explore_share
            ));
        }
        if let Some(prior) = &self.prior {
            for kind in SeriesKind::ALL {
                let series = prior.series(kind);
                if series.cpu_ns.len() != kind.steps() || series.gpu_ns.len() != kind.steps() {
                    return Err(format!(
                        "adaptive prior for the {} series must carry {} per-step costs",
                        kind.label(),
                        kind.steps()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_kinds_cover_the_eleven_steps() {
        let total: usize = SeriesKind::ALL.iter().map(|k| k.steps()).sum();
        assert_eq!(total, 11);
        assert_eq!(SeriesKind::Partition.label(), "partition");
        assert_eq!(SeriesKind::Probe.steps(), 4);
    }

    #[test]
    fn default_config_is_valid() {
        assert!(AdaptiveConfig::default().validate().is_ok());
    }

    #[test]
    fn degenerate_knobs_are_rejected() {
        assert!(AdaptiveConfig::default()
            .with_ewma_alpha(0.0)
            .validate()
            .is_err());
        assert!(AdaptiveConfig::default()
            .with_ewma_alpha(1.5)
            .validate()
            .is_err());
        assert!(AdaptiveConfig::default()
            .with_delta(0.0)
            .validate()
            .is_err());
        assert!(AdaptiveConfig::default()
            .with_explore_share(0.75)
            .validate()
            .is_err());
        assert!(AdaptiveConfig::default()
            .with_ewma_alpha(f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn mis_shaped_priors_are_rejected() {
        let prior = JoinPrior {
            partition: SeriesPrior {
                cpu_ns: vec![1.0; 3],
                gpu_ns: vec![1.0; 3],
            },
            build: SeriesPrior {
                cpu_ns: vec![1.0; 2], // wrong: b1..b4 needs 4
                gpu_ns: vec![1.0; 4],
            },
            probe: SeriesPrior {
                cpu_ns: vec![1.0; 4],
                gpu_ns: vec![1.0; 4],
            },
        };
        let err = AdaptiveConfig::default()
            .with_prior(prior)
            .validate()
            .unwrap_err();
        assert!(err.contains("build"), "{err}");
    }
}
