//! # mem-alloc — software dynamic memory allocators for data-parallel kernels
//!
//! OpenCL 1.2 kernels cannot call `malloc`, yet hash joins need dynamic
//! allocations for partition buffers, key-list nodes and the join result
//! (Section 3.3 of the paper).  The paper therefore builds a *software*
//! allocator over a pre-allocated array in the zero-copy buffer and compares
//! two designs:
//!
//! * [`BumpAllocator`] ("Basic") — a single global pointer advanced with an
//!   atomic add per request.  Correct, but every allocation serialises on one
//!   latch, which is disastrous for the GPU's thousands of work items.
//! * [`BlockAllocator`] ("Ours") — work item 0 of each work group grabs a
//!   whole *block* from the global pointer, and the group's work items then
//!   sub-allocate from that block through a local-memory pointer.  The block
//!   size is the tuning knob of Figure 11; the comparison against Basic is
//!   Figure 12.
//!
//! The allocators here hand out byte offsets into a simulated arena and count
//! every atomic they would have issued ([`AllocStats`]), so the device model
//! in `apu-sim` can charge the corresponding latch overhead.

#![warn(missing_docs)]

pub mod basic;
pub mod block;
pub mod stats;

pub use basic::BumpAllocator;
pub use block::BlockAllocator;
pub use stats::AllocStats;

/// Which allocator design a join run should use (Section 3.3 / Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// The basic single-pointer allocator ("Basic" in Figure 12).
    Basic,
    /// The optimised per-work-group block allocator ("Ours" in Figure 12)
    /// with the given block size in bytes (2 KB is the paper's sweet spot).
    Block {
        /// Block size in bytes.
        block_size: usize,
    },
}

impl AllocatorKind {
    /// The paper's tuned default: block allocation with 2 KB blocks.
    pub fn tuned() -> Self {
        AllocatorKind::Block { block_size: 2048 }
    }

    /// Instantiates the allocator over an arena of `capacity` bytes shared by
    /// `work_groups` work groups.
    pub fn build(&self, capacity: usize, work_groups: usize) -> Box<dyn KernelAllocator> {
        match *self {
            AllocatorKind::Basic => Box::new(BumpAllocator::new(capacity)),
            AllocatorKind::Block { block_size } => {
                Box::new(BlockAllocator::new(capacity, block_size, work_groups))
            }
        }
    }

    /// A short label for experiment output.
    pub fn label(&self) -> String {
        match self {
            AllocatorKind::Basic => "basic".to_string(),
            AllocatorKind::Block { block_size } => format!("block-{block_size}B"),
        }
    }
}

/// A software allocator usable from simulated kernels.
///
/// `group` identifies the work group making the request, which matters only
/// for the block allocator (each group owns its current block).
///
/// Allocators are `Send` so an engine's session pool can hand arenas to
/// whichever thread submits a request; each arena is still owned by exactly
/// one in-flight request at a time, so no interior synchronisation is needed.
pub trait KernelAllocator: Send {
    /// Allocates `bytes` bytes on behalf of work group `group`; returns the
    /// byte offset into the arena, or `None` when the arena is exhausted.
    fn alloc(&mut self, group: usize, bytes: usize) -> Option<usize>;

    /// Counters accumulated since construction or the last [`Self::reset`].
    fn stats(&self) -> AllocStats;

    /// Arena capacity in bytes.
    fn capacity(&self) -> usize;

    /// Bytes handed out (including block-allocation slack).
    fn used(&self) -> usize;

    /// Clears the arena and counters so the allocator can be reused.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_matching_allocator() {
        let mut basic = AllocatorKind::Basic.build(1024, 4);
        let mut block = AllocatorKind::tuned().build(16 * 1024, 4);
        assert!(basic.alloc(0, 16).is_some());
        assert!(block.alloc(0, 16).is_some());
        assert_eq!(basic.capacity(), 1024);
        assert_eq!(block.capacity(), 16 * 1024);
    }

    #[test]
    fn labels_identify_kind_and_block_size() {
        assert_eq!(AllocatorKind::Basic.label(), "basic");
        assert_eq!(
            AllocatorKind::Block { block_size: 512 }.label(),
            "block-512B"
        );
        assert_eq!(
            AllocatorKind::tuned(),
            AllocatorKind::Block { block_size: 2048 }
        );
    }
}
