//! The basic allocator: one global pointer, one atomic add per request.

use crate::stats::AllocStats;
use crate::KernelAllocator;

/// The paper's "Basic" software allocator.
///
/// A single pointer marks the start of free space in a pre-allocated array;
/// every allocation advances it with an atomic add, which acts as a latch.
/// Every request therefore issues one serialising global atomic — the source
/// of the contention measured in Figures 11 and 12.
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    capacity: usize,
    offset: usize,
    stats: AllocStats,
}

impl BumpAllocator {
    /// Creates an allocator over an arena of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        BumpAllocator {
            capacity,
            offset: 0,
            stats: AllocStats::default(),
        }
    }
}

impl KernelAllocator for BumpAllocator {
    fn alloc(&mut self, _group: usize, bytes: usize) -> Option<usize> {
        // One atomic add on the global pointer per request.
        self.stats.global_atomics += 1;
        if self.offset + bytes > self.capacity {
            self.stats.failed += 1;
            return None;
        }
        let at = self.offset;
        self.offset += bytes;
        self.stats.allocations += 1;
        self.stats.requested_bytes += bytes as u64;
        Some(at)
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn used(&self) -> usize {
        self.offset
    }

    fn reset(&mut self) {
        self.offset = 0;
        self.stats = AllocStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_contiguous_and_disjoint() {
        let mut a = BumpAllocator::new(100);
        let x = a.alloc(0, 40).unwrap();
        let y = a.alloc(1, 40).unwrap();
        assert_eq!(x, 0);
        assert_eq!(y, 40);
        assert_eq!(a.used(), 80);
    }

    #[test]
    fn exhaustion_returns_none_and_counts_failure() {
        let mut a = BumpAllocator::new(64);
        assert!(a.alloc(0, 64).is_some());
        assert!(a.alloc(0, 1).is_none());
        assert_eq!(a.stats().failed, 1);
        assert_eq!(a.stats().allocations, 1);
    }

    #[test]
    fn every_request_is_a_global_atomic() {
        let mut a = BumpAllocator::new(1024);
        for _ in 0..10 {
            a.alloc(0, 8);
        }
        assert_eq!(a.stats().global_atomics, 10);
        assert_eq!(a.stats().local_atomics, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut a = BumpAllocator::new(64);
        a.alloc(0, 32);
        a.reset();
        assert_eq!(a.used(), 0);
        assert_eq!(a.stats(), AllocStats::default());
        assert_eq!(a.alloc(0, 64), Some(0));
    }
}
