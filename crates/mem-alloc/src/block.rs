//! The optimised allocator: per-work-group blocks with a local pointer.

use crate::stats::AllocStats;
use crate::KernelAllocator;

/// One work group's current block.
#[derive(Debug, Clone, Copy, Default)]
struct GroupBlock {
    /// Next free offset within the arena.
    cursor: usize,
    /// One past the end of the block.
    end: usize,
}

/// The paper's optimised ("Ours") software allocator.
///
/// Memory is claimed from the global pointer at the granularity of a *block*
/// (work item 0 of the work group performs that single global atomic), and
/// the work items of the group then carve their requests out of the block
/// through a pointer kept in local memory.  Larger blocks mean fewer global
/// atomics and therefore less latch contention — the trend of Figure 11 —
/// at the price of per-group slack at the end of each block.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    capacity: usize,
    block_size: usize,
    global_offset: usize,
    groups: Vec<GroupBlock>,
    stats: AllocStats,
}

impl BlockAllocator {
    /// Creates an allocator over `capacity` bytes, handing out blocks of
    /// `block_size` bytes to `work_groups` work groups.
    ///
    /// # Panics
    /// Panics if `block_size` is 0 or `work_groups` is 0.
    pub fn new(capacity: usize, block_size: usize, work_groups: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(work_groups > 0, "need at least one work group");
        BlockAllocator {
            capacity,
            block_size,
            global_offset: 0,
            groups: vec![GroupBlock::default(); work_groups],
            stats: AllocStats::default(),
        }
    }

    /// The configured block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn fetch_block(&mut self, bytes_needed: usize) -> Option<GroupBlock> {
        // Requests larger than the block size fetch a dedicated oversized
        // block (still a single global atomic).
        let size = self.block_size.max(bytes_needed);
        // Work item 0 advances the global pointer once per block.
        self.stats.global_atomics += 1;
        if self.global_offset + size > self.capacity {
            return None;
        }
        let block = GroupBlock {
            cursor: self.global_offset,
            end: self.global_offset + size,
        };
        self.global_offset += size;
        self.stats.blocks_fetched += 1;
        Some(block)
    }
}

impl KernelAllocator for BlockAllocator {
    fn alloc(&mut self, group: usize, bytes: usize) -> Option<usize> {
        let group = group % self.groups.len();
        // Sub-allocation from the group's block uses the local-memory
        // pointer: one local atomic per request.
        self.stats.local_atomics += 1;
        if self.groups[group].cursor + bytes > self.groups[group].end {
            match self.fetch_block(bytes) {
                Some(block) => self.groups[group] = block,
                None => {
                    self.stats.failed += 1;
                    return None;
                }
            }
        }
        let at = self.groups[group].cursor;
        self.groups[group].cursor += bytes;
        self.stats.allocations += 1;
        self.stats.requested_bytes += bytes as u64;
        Some(at)
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn used(&self) -> usize {
        self.global_offset
    }

    fn reset(&mut self) {
        self.global_offset = 0;
        for g in &mut self.groups {
            *g = GroupBlock::default();
        }
        self.stats = AllocStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_within_a_group_are_disjoint() {
        let mut a = BlockAllocator::new(4096, 256, 2);
        let mut seen = Vec::new();
        for i in 0..20 {
            let off = a.alloc(i % 2, 16).unwrap();
            seen.push((off, off + 16));
        }
        seen.sort_unstable();
        for w in seen.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping allocations: {:?}", w);
        }
    }

    #[test]
    fn larger_blocks_mean_fewer_global_atomics() {
        let run = |block: usize| {
            let mut a = BlockAllocator::new(1 << 20, block, 8);
            for i in 0..4096 {
                a.alloc(i % 8, 16).unwrap();
            }
            a.stats().global_atomics
        };
        let small = run(32);
        let large = run(4096);
        assert!(
            small > 8 * large,
            "expected far fewer global atomics with big blocks: {small} vs {large}"
        );
    }

    #[test]
    fn oversized_requests_get_dedicated_blocks() {
        let mut a = BlockAllocator::new(1 << 16, 64, 2);
        let off = a.alloc(0, 1000).unwrap();
        assert_eq!(off, 0);
        // The next small allocation in the same group comes from a fresh
        // block because the oversized one is exhausted.
        let off2 = a.alloc(0, 16).unwrap();
        assert!(off2 >= 1000);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut a = BlockAllocator::new(128, 64, 1);
        assert!(a.alloc(0, 64).is_some());
        assert!(a.alloc(0, 64).is_some());
        assert!(a.alloc(0, 64).is_none());
        assert_eq!(a.stats().failed, 1);
    }

    #[test]
    fn groups_do_not_share_blocks() {
        let mut a = BlockAllocator::new(1 << 16, 256, 2);
        let x = a.alloc(0, 8).unwrap();
        let y = a.alloc(1, 8).unwrap();
        // Different groups fetched different blocks, so the offsets are at
        // least a block apart.
        assert!(x.abs_diff(y) >= 256);
    }

    #[test]
    fn reset_reuses_the_arena() {
        let mut a = BlockAllocator::new(512, 128, 1);
        a.alloc(0, 100).unwrap();
        a.reset();
        assert_eq!(a.used(), 0);
        assert_eq!(a.alloc(0, 100), Some(0));
    }

    #[test]
    #[should_panic]
    fn zero_block_size_is_rejected() {
        let _ = BlockAllocator::new(1024, 0, 1);
    }
}
