//! Allocation counters and their conversion into latch-overhead time.

use apu_sim::{DeviceSpec, SimTime};

/// Counters accumulated by a kernel allocator.
///
/// The distinction between *global* and *local* atomics is the whole point of
/// the optimised allocator: global atomics serialise every work item in the
/// device on one cache line, local atomics only serialise the (at most 256)
/// work items of one work group and stay in on-chip memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocation requests served.
    pub allocations: u64,
    /// Bytes requested by callers (excluding block slack).
    pub requested_bytes: u64,
    /// Atomic operations on the single global pointer (serialising).
    pub global_atomics: u64,
    /// Atomic operations on per-work-group local pointers.
    pub local_atomics: u64,
    /// Blocks fetched from the global pointer (block allocator only).
    pub blocks_fetched: u64,
    /// Requests that failed because the arena was exhausted.
    pub failed: u64,
}

impl AllocStats {
    /// Component-wise difference `self - earlier`, for measuring the
    /// allocator activity of a single kernel.
    pub fn delta_since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocations: self.allocations - earlier.allocations,
            requested_bytes: self.requested_bytes - earlier.requested_bytes,
            global_atomics: self.global_atomics - earlier.global_atomics,
            local_atomics: self.local_atomics - earlier.local_atomics,
            blocks_fetched: self.blocks_fetched - earlier.blocks_fetched,
            failed: self.failed - earlier.failed,
        }
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &AllocStats) {
        self.allocations += other.allocations;
        self.requested_bytes += other.requested_bytes;
        self.global_atomics += other.global_atomics;
        self.local_atomics += other.local_atomics;
        self.blocks_fetched += other.blocks_fetched;
        self.failed += other.failed;
    }

    /// The latch overhead these allocations cost on `device`: serialising
    /// global atomics plus cheap local atomics.
    ///
    /// This is the quantity plotted in Figure 11(b); in the paper it is
    /// estimated "as the difference of the measured time and estimated time
    /// based on our cost model", here the simulator can report it directly.
    pub fn lock_overhead(&self, device: &DeviceSpec) -> SimTime {
        SimTime::from_ns(
            self.global_atomics as f64 * device.serial_atomic_ns
                + self.local_atomics as f64 * device.local_atomic_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_merge_are_inverse() {
        let a = AllocStats {
            allocations: 10,
            requested_bytes: 100,
            global_atomics: 2,
            local_atomics: 8,
            blocks_fetched: 2,
            failed: 0,
        };
        let mut b = a;
        let extra = AllocStats {
            allocations: 5,
            requested_bytes: 50,
            global_atomics: 1,
            local_atomics: 4,
            blocks_fetched: 1,
            failed: 1,
        };
        b.merge(&extra);
        assert_eq!(b.delta_since(&a), extra);
    }

    #[test]
    fn lock_overhead_prefers_local_atomics() {
        let gpu = DeviceSpec::a8_3870k_gpu();
        let global_heavy = AllocStats {
            global_atomics: 1000,
            ..Default::default()
        };
        let local_heavy = AllocStats {
            local_atomics: 1000,
            ..Default::default()
        };
        assert!(global_heavy.lock_overhead(&gpu) > local_heavy.lock_overhead(&gpu) * 10.0);
    }
}
