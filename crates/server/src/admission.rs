//! SLO-aware admission control: token-bucket client quotas, EWMA
//! service-time estimation and deadline-based shedding.
//!
//! The engine's own backpressure is blunt by design — a full session pool
//! plus a full queue yields `Saturated`, regardless of who is asking or
//! how long the queue will take to drain.  The serving layer wants the
//! opposite: decide *at arrival* whether a request can plausibly meet its
//! deadline, and if not, shed it immediately with a typed retry hint —
//! a request that would time out anyway should cost the client one
//! round-trip, not a deadline's worth of queueing.
//!
//! Three independent checks, in order:
//!
//! 1. **Quota** — each client owns a token bucket
//!    ([`SloConfig::tokens_per_sec`] / [`SloConfig::burst_tokens`]); an
//!    empty bucket sheds with [`ShedReason::Quota`] and the time until the
//!    next token as the retry hint.  One greedy client cannot starve the
//!    rest.
//! 2. **Queue budget** — the controller tracks the estimated backlog
//!    (admitted-but-unfinished work, in ns).  When the backlog's expected
//!    wait exceeds [`SloConfig::queue_budget_ms`], new requests are shed
//!    with [`ShedReason::QueueBudget`] — unless their priority is at or
//!    above [`SloConfig::priority_bypass`], which lets paying traffic ride
//!    through a backlog that drops best-effort work.
//! 3. **Deadline** — a request carrying a deadline is shed with
//!    [`ShedReason::Deadline`] when `estimated wait + estimated service
//!    time > deadline`.  The service estimate is an EWMA of observed
//!    ns-per-tuple (the same estimator design the adaptive tuner uses),
//!    seedable with a prior that the first real sample replaces.
//!
//! The controller is purely computational: callers pass `now_ns` from any
//! monotonic clock, which keeps every decision deterministic and unit
//! testable without sleeping.

use crate::message::ShedReason;
use hj_adaptive::EwmaEstimator;
use hj_analysis::sync::Mutex;
use std::collections::HashMap;

/// Service-level objectives and quota knobs of one serving endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Token-bucket refill rate per client (requests per second).
    /// `f64::INFINITY` (the default) disables per-client quotas.
    pub tokens_per_sec: f64,
    /// Token-bucket capacity per client (burst allowance); at least 1.
    pub burst_tokens: f64,
    /// Backlog ceiling: when the estimated queue wait exceeds this many
    /// milliseconds, deadline-less requests below
    /// [`priority_bypass`](Self::priority_bypass) are shed.  `0` (the
    /// default) means unlimited.
    pub queue_budget_ms: u32,
    /// Deadline applied to requests that carry none; `0` (the default)
    /// means no implicit deadline.
    pub default_deadline_ms: u32,
    /// Priority at or above which a request bypasses the queue-budget shed
    /// (never the quota or deadline sheds).  Default `u8::MAX` — no bypass.
    pub priority_bypass: u8,
    /// EWMA weight of new service-time samples, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Optional prior for the service-time estimate (ns per input tuple),
    /// replaced by the first real observation; `0` disables the seed.
    pub prior_ns_per_tuple: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            tokens_per_sec: f64::INFINITY,
            burst_tokens: 1.0,
            queue_budget_ms: 0,
            default_deadline_ms: 0,
            priority_bypass: u8::MAX,
            ewma_alpha: 0.25,
            prior_ns_per_tuple: 0.0,
        }
    }
}

impl SloConfig {
    /// Sets the per-client quota: `tokens_per_sec` refill with a burst
    /// capacity of `burst_tokens`.
    pub fn quota(mut self, tokens_per_sec: f64, burst_tokens: f64) -> Self {
        self.tokens_per_sec = tokens_per_sec;
        self.burst_tokens = burst_tokens;
        self
    }

    /// Sets the backlog ceiling in milliseconds.
    pub fn queue_budget_ms(mut self, ms: u32) -> Self {
        self.queue_budget_ms = ms;
        self
    }

    /// Sets the implicit deadline for requests that carry none.
    pub fn default_deadline_ms(mut self, ms: u32) -> Self {
        self.default_deadline_ms = ms;
        self
    }

    /// Sets the priority floor that bypasses the queue-budget shed.
    pub fn priority_bypass(mut self, priority: u8) -> Self {
        self.priority_bypass = priority;
        self
    }

    /// Seeds the service-time estimator with `ns` per input tuple.
    pub fn prior_ns_per_tuple(mut self, ns: f64) -> Self {
        self.prior_ns_per_tuple = ns;
        self
    }

    /// Validates the knobs.
    ///
    /// # Errors
    /// A human-readable description of the first offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.tokens_per_sec.is_nan() || self.tokens_per_sec <= 0.0 {
            return Err("tokens_per_sec must be positive (use INFINITY for no quota)".into());
        }
        if !self.burst_tokens.is_finite() || self.burst_tokens < 1.0 {
            return Err("burst_tokens must be finite and at least 1".into());
        }
        if !self.ewma_alpha.is_finite()
            || !(0.0..=1.0).contains(&self.ewma_alpha)
            || self.ewma_alpha == 0.0
        {
            return Err("ewma_alpha must be in (0, 1]".into());
        }
        if !self.prior_ns_per_tuple.is_finite() || self.prior_ns_per_tuple < 0.0 {
            return Err("prior_ns_per_tuple must be finite and non-negative".into());
        }
        Ok(())
    }
}

/// The verdict on one arriving request.
#[derive(Debug)]
pub enum Admission {
    /// Serve it; pass the [`Ticket`] back on completion (or abandonment).
    Admit(Ticket),
    /// Shed it with a typed reason and a retry hint.
    Shed {
        /// Why the request was not admitted.
        reason: ShedReason,
        /// Suggested earliest retry, in milliseconds (at least 1).
        retry_after_ms: u32,
    },
}

/// Accounting stub of one admitted request: its backlog contribution and
/// input size, settled by [`AdmissionController::complete`] or
/// [`AdmissionController::abandon`].
#[derive(Debug)]
#[must_use = "settle tickets with complete() or abandon(), or the backlog estimate leaks"]
pub struct Ticket {
    est_service_ns: f64,
    tuples: usize,
}

impl Ticket {
    /// The service-time estimate (ns) this admission charged to the
    /// backlog.
    pub fn estimated_service_ns(&self) -> f64 {
        self.est_service_ns
    }
}

/// Point-in-time counters of one [`AdmissionController`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdmissionStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed, by any reason.
    pub shed: u64,
    /// Sheds attributed to an exhausted client quota.
    pub shed_quota: u64,
    /// Sheds attributed to the queue budget.
    pub shed_queue_budget: u64,
    /// Sheds attributed to an unmeetable deadline.
    pub shed_deadline: u64,
    /// Estimated unfinished work currently admitted, in nanoseconds.
    pub backlog_ns: f64,
    /// Current service-time estimate in ns per input tuple (0 until the
    /// estimator has a seed or a sample).
    pub service_ns_per_tuple: f64,
    /// Real service-time samples observed.
    pub service_samples: u64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled_at_ns: u64,
}

#[derive(Debug)]
struct Inner {
    buckets: HashMap<u64, Bucket>,
    estimator: EwmaEstimator,
    backlog_ns: f64,
    stats: AdmissionStats,
}

/// The SLO-aware admission controller (see the [module docs](self)).
///
/// Thread-safe: one controller serves every connection of a server.
#[derive(Debug)]
pub struct AdmissionController {
    config: SloConfig,
    /// Engine parallelism the backlog drains at (sessions); the expected
    /// wait for new work is `backlog / parallelism`.
    parallelism: usize,
    inner: Mutex<Inner>,
}

impl AdmissionController {
    /// A controller enforcing `config`, assuming the backlog drains
    /// `parallelism` requests at a time (the engine's session count).
    pub fn new(config: SloConfig, parallelism: usize) -> Result<Self, String> {
        config.validate()?;
        let mut estimator = EwmaEstimator::new(config.ewma_alpha);
        if config.prior_ns_per_tuple > 0.0 {
            estimator.seed(config.prior_ns_per_tuple);
        }
        Ok(AdmissionController {
            config,
            parallelism: parallelism.max(1),
            inner: Mutex::new(
                "slo.admission",
                Inner {
                    buckets: HashMap::new(),
                    estimator,
                    backlog_ns: 0.0,
                    stats: AdmissionStats::default(),
                },
            ),
        })
    }

    /// The configuration the controller enforces.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Decides one arriving request.
    ///
    /// * `client` — a stable per-client key (the serving layer uses one id
    ///   per connection);
    /// * `tuples` — input size (build + probe) driving the service-time
    ///   estimate;
    /// * `deadline_ms` — the request's deadline (`0`: fall back to
    ///   [`SloConfig::default_deadline_ms`], which may also be `0` = none);
    /// * `priority` — see [`SloConfig::priority_bypass`];
    /// * `now_ns` — the caller's monotonic clock.
    pub fn admit(
        &self,
        client: u64,
        tuples: usize,
        deadline_ms: u32,
        priority: u8,
        now_ns: u64,
    ) -> Admission {
        let mut inner = self.inner.lock();

        // 1. Quota: refill this client's bucket to `now`, then take a token.
        if self.config.tokens_per_sec.is_finite() {
            let burst = self.config.burst_tokens;
            let rate = self.config.tokens_per_sec;
            let bucket = inner.buckets.entry(client).or_insert(Bucket {
                tokens: burst,
                refilled_at_ns: now_ns,
            });
            let elapsed = now_ns.saturating_sub(bucket.refilled_at_ns) as f64 / 1e9;
            bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
            bucket.refilled_at_ns = now_ns;
            if bucket.tokens < 1.0 {
                let wait_secs = (1.0 - bucket.tokens) / rate;
                let retry = ((wait_secs * 1e3).ceil() as u32).max(1);
                inner.stats.shed += 1;
                inner.stats.shed_quota += 1;
                return Admission::Shed {
                    reason: ShedReason::Quota,
                    retry_after_ms: retry,
                };
            }
            bucket.tokens -= 1.0;
        }

        let est_wait_ns = inner.backlog_ns / self.parallelism as f64;
        let est_service_ns = inner
            .estimator
            .estimate_ns()
            .map(|unit| unit * tuples as f64)
            .unwrap_or(0.0);

        // 2. Queue budget: a backlog past the ceiling sheds everything below
        // the bypass priority, deadline or not.
        let budget_ns = self.config.queue_budget_ms as f64 * 1e6;
        if budget_ns > 0.0 && est_wait_ns > budget_ns && priority < self.config.priority_bypass {
            let retry = retry_after_ms(est_wait_ns - budget_ns);
            // The shed request keeps its token: quota pays for *service*,
            // not for being told to come back later.
            self.refund_token(&mut inner, client);
            inner.stats.shed += 1;
            inner.stats.shed_queue_budget += 1;
            return Admission::Shed {
                reason: ShedReason::QueueBudget,
                retry_after_ms: retry,
            };
        }

        // 3. Deadline: shed when the estimated completion busts it.
        let deadline = if deadline_ms > 0 {
            deadline_ms
        } else {
            self.config.default_deadline_ms
        };
        if deadline > 0 {
            let deadline_ns = deadline as f64 * 1e6;
            let est_completion_ns = est_wait_ns + est_service_ns;
            if est_completion_ns > deadline_ns {
                let retry = retry_after_ms(est_completion_ns - deadline_ns);
                self.refund_token(&mut inner, client);
                inner.stats.shed += 1;
                inner.stats.shed_deadline += 1;
                return Admission::Shed {
                    reason: ShedReason::Deadline,
                    retry_after_ms: retry,
                };
            }
        }

        // Admitted: charge the service estimate to the backlog.  While the
        // estimator is empty (no prior, no samples) the charge is zero —
        // the very first requests are admitted on faith and their observed
        // times bootstrap the estimate.
        inner.backlog_ns += est_service_ns;
        inner.stats.admitted += 1;
        inner.stats.backlog_ns = inner.backlog_ns;
        Admission::Admit(Ticket {
            est_service_ns,
            tuples,
        })
    }

    /// Settles an admitted request: removes its backlog charge and feeds
    /// the measured service time into the estimator.
    pub fn complete(&self, ticket: Ticket, actual_service_ns: u64) {
        let mut inner = self.inner.lock();
        inner.backlog_ns = (inner.backlog_ns - ticket.est_service_ns).max(0.0);
        inner
            .estimator
            .observe(ticket.tuples, actual_service_ns as f64);
        inner.stats.backlog_ns = inner.backlog_ns;
        inner.stats.service_ns_per_tuple = inner.estimator.estimate_ns().unwrap_or(0.0);
        inner.stats.service_samples = inner.estimator.samples();
    }

    /// Settles an admitted request that was *not* served (shed downstream,
    /// connection died): removes its backlog charge without feeding the
    /// estimator.
    pub fn abandon(&self, ticket: Ticket) {
        let mut inner = self.inner.lock();
        inner.backlog_ns = (inner.backlog_ns - ticket.est_service_ns).max(0.0);
        inner.stats.backlog_ns = inner.backlog_ns;
    }

    /// The estimated queue wait for a request arriving now, in
    /// milliseconds — the retry hint the serving layer attaches to
    /// engine-level `Saturated` rejections.
    pub fn estimated_wait_ms(&self) -> u32 {
        let inner = self.inner.lock();
        retry_after_ms(inner.backlog_ns / self.parallelism as f64)
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> AdmissionStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        stats.backlog_ns = inner.backlog_ns;
        stats.service_ns_per_tuple = inner.estimator.estimate_ns().unwrap_or(0.0);
        stats.service_samples = inner.estimator.samples();
        stats
    }

    fn refund_token(&self, inner: &mut Inner, client: u64) {
        if self.config.tokens_per_sec.is_finite() {
            if let Some(bucket) = inner.buckets.get_mut(&client) {
                bucket.tokens = (bucket.tokens + 1.0).min(self.config.burst_tokens);
            }
        }
    }
}

/// Converts a nanosecond overrun into a retry hint of at least 1 ms.
fn retry_after_ms(overrun_ns: f64) -> u32 {
    if overrun_ns <= 0.0 {
        return 1;
    }
    ((overrun_ns / 1e6).ceil()).min(u32::MAX as f64).max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn admit_ok(c: &AdmissionController, client: u64, tuples: usize, now: u64) -> Ticket {
        match c.admit(client, tuples, 0, 0, now) {
            Admission::Admit(t) => t,
            Admission::Shed { reason, .. } => panic!("unexpected shed: {}", reason.label()),
        }
    }

    #[test]
    fn unlimited_config_admits_everything() {
        let c = AdmissionController::new(SloConfig::default(), 2).unwrap();
        for i in 0..100 {
            let t = admit_ok(&c, i % 3, 1000, i * MS);
            c.complete(t, 5 * MS);
        }
        let stats = c.stats();
        assert_eq!(stats.admitted, 100);
        assert_eq!(stats.shed, 0);
        assert!(stats.service_ns_per_tuple > 0.0);
    }

    #[test]
    fn token_bucket_sheds_and_refills() {
        let config = SloConfig::default().quota(10.0, 2.0); // 10/s, burst 2
        let c = AdmissionController::new(config, 1).unwrap();
        let t0 = 0;
        let _a = admit_ok(&c, 7, 10, t0);
        let _b = admit_ok(&c, 7, 10, t0);
        // Third immediate request: bucket empty.
        match c.admit(7, 10, 0, 0, t0) {
            Admission::Shed {
                reason: ShedReason::Quota,
                retry_after_ms,
            } => {
                // One token takes 100 ms at 10/s.
                assert!((90..=110).contains(&retry_after_ms), "{retry_after_ms}");
            }
            other => panic!("expected quota shed, got {other:?}"),
        }
        // Another client is unaffected.
        let _c = admit_ok(&c, 8, 10, t0);
        // After 150 ms one token has refilled.
        let _d = admit_ok(&c, 7, 10, t0 + 150 * MS);
        assert_eq!(c.stats().shed_quota, 1);
    }

    #[test]
    fn deadline_shed_uses_the_learned_estimate() {
        let config = SloConfig::default();
        let c = AdmissionController::new(config, 1).unwrap();
        // Bootstrap: first request admitted on faith, observed at 10 ms for
        // 1000 tuples -> 10_000 ns/tuple.
        let t = admit_ok(&c, 1, 1000, 0);
        c.complete(t, 10 * MS);

        // A 1000-tuple request with a 5 ms deadline cannot finish (service
        // estimate alone is 10 ms).
        match c.admit(1, 1000, 5, 0, MS) {
            Admission::Shed {
                reason: ShedReason::Deadline,
                retry_after_ms,
            } => {
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected deadline shed, got {other:?}"),
        }
        // The same request with a 50 ms deadline is fine.
        let t = admit_ok_deadline(&c, 1, 1000, 50, MS);
        c.complete(t, 10 * MS);
        assert_eq!(c.stats().shed_deadline, 1);
    }

    fn admit_ok_deadline(
        c: &AdmissionController,
        client: u64,
        tuples: usize,
        deadline_ms: u32,
        now: u64,
    ) -> Ticket {
        match c.admit(client, tuples, deadline_ms, 0, now) {
            Admission::Admit(t) => t,
            Admission::Shed { reason, .. } => panic!("unexpected shed: {}", reason.label()),
        }
    }

    #[test]
    fn backlog_grows_waits_and_drains() {
        let c = AdmissionController::new(SloConfig::default(), 2).unwrap();
        // Learn 1 ms per 100 tuples.
        let t = admit_ok(&c, 1, 100, 0);
        c.complete(t, MS);
        // Admit 8 requests of 100 tuples: backlog = 8 ms over 2 sessions ->
        // 4 ms expected wait.
        let tickets: Vec<Ticket> = (0..8).map(|i| admit_ok(&c, 1, 100, (i + 1) * MS)).collect();
        let backlog = c.stats().backlog_ns;
        assert!((7.9e6..8.1e6).contains(&backlog), "{backlog}");
        // A 4 ms deadline cannot absorb a ~4 ms wait + 1 ms service.
        match c.admit(1, 100, 4, 0, 10 * MS) {
            Admission::Shed {
                reason: ShedReason::Deadline,
                ..
            } => {}
            other => panic!("expected deadline shed, got {other:?}"),
        }
        for t in tickets {
            c.complete(t, MS);
        }
        assert!(c.stats().backlog_ns < 0.1e6);
        // Drained: the same deadline is now achievable.
        let t = admit_ok_deadline(&c, 1, 100, 4, 20 * MS);
        c.abandon(t);
    }

    #[test]
    fn queue_budget_sheds_unless_priority_bypasses() {
        let config = SloConfig::default().queue_budget_ms(2).priority_bypass(200);
        let c = AdmissionController::new(config, 1).unwrap();
        let t = admit_ok(&c, 1, 100, 0);
        c.complete(t, MS); // 10_000 ns/tuple
                           // 3 admitted x 1 ms = 3 ms backlog > 2 ms budget.
        let _held: Vec<Ticket> = (0..3).map(|_| admit_ok(&c, 1, 100, MS)).collect();
        match c.admit(1, 100, 0, 0, MS) {
            Admission::Shed {
                reason: ShedReason::QueueBudget,
                retry_after_ms,
            } => {
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected queue-budget shed, got {other:?}"),
        }
        // Priority 200 bypasses the budget.
        match c.admit(1, 100, 0, 200, MS) {
            Admission::Admit(t) => c.abandon(t),
            other => panic!("expected bypass admit, got {other:?}"),
        }
        assert_eq!(c.stats().shed_queue_budget, 1);
    }

    #[test]
    fn shed_requests_keep_their_token() {
        // Quota 1/s, burst 2; the first admit spends one token.  If
        // deadline sheds burned tokens too, the second shed below would
        // come back as a quota shed instead — so three consecutive
        // deadline sheds prove the refund.
        let config = SloConfig::default().quota(1.0, 2.0).default_deadline_ms(1);
        let c = AdmissionController::new(config, 1).unwrap();
        let t = admit_ok_deadline(&c, 1, 100, 1_000_000, 0);
        c.complete(t, 100 * MS); // 1 ms/tuple -> the 1 ms default busts
        for _ in 0..3 {
            match c.admit(1, 100, 0, 0, MS) {
                Admission::Shed {
                    reason: ShedReason::Deadline,
                    ..
                } => {}
                other => panic!("expected deadline shed, got {other:?}"),
            }
        }
        // The remaining token is still there for a workable deadline.
        match c.admit(1, 100, 10_000, 0, MS) {
            Admission::Admit(t) => c.abandon(t),
            other => panic!("expected admit, got {other:?}"),
        }
        // ...and now the bucket really is empty.
        match c.admit(1, 100, 10_000, 0, MS) {
            Admission::Shed {
                reason: ShedReason::Quota,
                ..
            } => {}
            other => panic!("expected quota shed, got {other:?}"),
        }
    }

    #[test]
    fn prior_seeds_the_estimate_until_evidence_arrives() {
        let config = SloConfig::default().prior_ns_per_tuple(100.0);
        let c = AdmissionController::new(config, 1).unwrap();
        // 1000 tuples at 100 ns/tuple prior = 0.1 ms estimate; a 10 ms
        // deadline passes...
        let t = admit_ok_deadline(&c, 1, 1000, 10, 0);
        // ...but the measured truth (1 ms/tuple) replaces the prior:
        c.complete(t, 1000 * MS);
        match c.admit(1, 1000, 10, 0, MS) {
            Admission::Shed {
                reason: ShedReason::Deadline,
                ..
            } => {}
            other => panic!("a lying prior must not outlive evidence, got {other:?}"),
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(AdmissionController::new(SloConfig::default().quota(0.0, 1.0), 1).is_err());
        assert!(AdmissionController::new(SloConfig::default().quota(1.0, 0.5), 1).is_err());
        let bad = SloConfig {
            ewma_alpha: 0.0,
            ..SloConfig::default()
        };
        assert!(AdmissionController::new(bad, 1).is_err());
        let bad = SloConfig {
            prior_ns_per_tuple: f64::NAN,
            ..SloConfig::default()
        };
        assert!(AdmissionController::new(bad, 1).is_err());
    }
}
