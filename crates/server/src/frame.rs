//! The length-prefixed, checksummed binary frame layer of the wire
//! protocol.
//!
//! Every message on a connection — in either direction — is one *frame*:
//!
//! ```text
//! [magic: "HJW\x01"] [version: u8] [frame_type: u8] [reserved: u16 LE]
//! [payload_len: u32 LE] [checksum: u64 LE] [payload: payload_len bytes]
//! ```
//!
//! The checksum is FNV-1a 64 over the payload (the same function the spill
//! subsystem uses for its run frames), verified on every read: a torn
//! write, a proxy mangling bytes or a client speaking a different protocol
//! surfaces as a typed [`WireError`] instead of a silently wrong join
//! result or a hung peer.  `payload_len` is validated against a
//! receiver-chosen ceiling *before* any allocation, so a corrupted length
//! cannot drive an OOM before the checksum even runs.

use datagen::tablefile::fnv1a64;
use std::fmt;
use std::io::{self, Read, Write};

/// First bytes of every frame; the trailing `\x01` doubles as a protocol
/// generation marker, distinct from the version byte that follows.
pub const MAGIC: [u8; 4] = *b"HJW\x01";

/// Wire-protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Bytes of the fixed frame header.
pub const HEADER_BYTES: usize = 4 + 1 + 1 + 2 + 4 + 8;

/// Default ceiling on a frame payload (64 MiB) — large enough for the
/// engine-sized relations the examples ship, small enough that a corrupt
/// length field cannot ask for gigabytes.
pub const DEFAULT_MAX_PAYLOAD_BYTES: usize = 64 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: one join request (header + inline relations).
    Request = 1,
    /// Server → client: the scalar outcome of an admitted, completed join
    /// (match count, pair count, how many chunk frames follow).
    Response = 2,
    /// Server → client: one bounded slice of the collected pair set.
    Chunk = 3,
    /// Server → client: positive end-of-response marker (chunk count echo),
    /// so a torn stream can never be mistaken for a short result.
    Done = 4,
    /// Server → client: the request failed (typed code + message).
    Error = 5,
    /// Server → client: the request was *shed* — not admitted — with a
    /// retry hint.  Distinct from [`FrameType::Error`]: the request was
    /// well-formed and would have been served off-peak.
    Overloaded = 6,
    /// Client → server: register a named build-side table with the engine's
    /// table registry so later joins can reference it by name instead of
    /// re-shipping (and re-building) it per request.
    Register = 7,
    /// Server → client: acknowledgement of a [`FrameType::Register`] —
    /// echoes the name's registry version and tuple count.
    Registered = 8,
    /// Client → server: one join request whose build side is a registered
    /// table named by string; only the probe relation travels inline.  On
    /// the server this takes the probe-only hot path of the hash-table
    /// cache.
    TableRef = 9,
    /// Client → server: ask for a snapshot of the engine's metrics
    /// registry (no join involved; never admission-controlled).
    Metrics = 10,
    /// Server → client: the metrics snapshot, rendered in Prometheus text
    /// exposition format.
    MetricsReply = 11,
    /// Server → client: the per-join flight recorder of a traced request,
    /// sent *after* [`FrameType::Done`] so untraced readers are untouched.
    Trace = 12,
}

impl FrameType {
    fn from_u8(raw: u8) -> Option<FrameType> {
        Some(match raw {
            1 => FrameType::Request,
            2 => FrameType::Response,
            3 => FrameType::Chunk,
            4 => FrameType::Done,
            5 => FrameType::Error,
            6 => FrameType::Overloaded,
            7 => FrameType::Register,
            8 => FrameType::Registered,
            9 => FrameType::TableRef,
            10 => FrameType::Metrics,
            11 => FrameType::MetricsReply,
            12 => FrameType::Trace,
            _ => return None,
        })
    }
}

/// Why a frame (or a whole message) could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// An operating-system I/O failure (includes read timeouts).
    Io(io::Error),
    /// The peer does not speak this protocol, sent a malformed header, a
    /// structurally truncated frame, or an undecodable payload.
    Protocol {
        /// What did not parse.
        detail: String,
    },
    /// The frame parsed but its payload failed the checksum.
    Corrupt {
        /// What did not add up.
        detail: String,
    },
    /// The header claims a payload larger than the receiver accepts.
    Oversized {
        /// Claimed payload length in bytes.
        len: usize,
        /// The receiver's ceiling in bytes.
        max: usize,
    },
    /// The peer speaks a different protocol version.
    Version {
        /// The version byte the peer sent.
        got: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            WireError::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: payload of {len} B exceeds the {max} B limit"
                )
            }
            WireError::Version { got } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{got}, this build v{VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame (header + checksummed payload).
///
/// # Errors
/// [`WireError::Io`] when the underlying write fails.
pub fn write_frame<W: Write>(
    w: &mut W,
    frame_type: FrameType,
    payload: &[u8],
) -> Result<(), WireError> {
    let mut header = [0u8; HEADER_BYTES];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = frame_type as u8;
    // header[6..8] reserved, zero.
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[12..20].copy_from_slice(&fnv1a64(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, verifying magic, version, type, length ceiling and
/// checksum.  Returns `Ok(None)` on a clean end of stream (the peer closed
/// between frames).
///
/// # Errors
/// * [`WireError::Protocol`] for bad magic, an unknown frame type, or a
///   stream that ends mid-header / mid-payload (a *torn* frame);
/// * [`WireError::Version`] for a version byte this build does not speak;
/// * [`WireError::Oversized`] when the header claims more than
///   `max_payload` bytes (checked before any allocation);
/// * [`WireError::Corrupt`] when the payload fails its checksum;
/// * [`WireError::Io`] for underlying read failures (including timeouts).
pub fn read_frame<R: Read>(
    r: &mut R,
    max_payload: usize,
) -> Result<Option<(FrameType, Vec<u8>)>, WireError> {
    let mut header = [0u8; HEADER_BYTES];
    match read_exact_or_eof(r, &mut header)? {
        Filled::Eof => return Ok(None),
        Filled::Partial(got) => {
            return Err(WireError::Protocol {
                detail: format!("stream ended after {got} of {HEADER_BYTES} header bytes"),
            })
        }
        Filled::Complete => {}
    }
    if header[0..4] != MAGIC {
        return Err(WireError::Protocol {
            detail: format!("bad magic {:02x?} (expected {:02x?})", &header[0..4], MAGIC),
        });
    }
    if header[4] != VERSION {
        return Err(WireError::Version { got: header[4] });
    }
    let Some(frame_type) = FrameType::from_u8(header[5]) else {
        return Err(WireError::Protocol {
            detail: format!("unknown frame type {}", header[5]),
        });
    };
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 header bytes")) as usize;
    if len > max_payload {
        return Err(WireError::Oversized {
            len,
            max: max_payload,
        });
    }
    let recorded = u64::from_le_bytes(header[12..20].try_into().expect("8 header bytes"));
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        Filled::Complete => {}
        Filled::Eof | Filled::Partial(_) => {
            return Err(WireError::Protocol {
                detail: format!("stream ended inside a {len} B payload (torn frame)"),
            })
        }
    }
    let actual = fnv1a64(&payload);
    if actual != recorded {
        return Err(WireError::Corrupt {
            detail: format!("payload checksum {actual:#018x} != recorded {recorded:#018x}"),
        });
    }
    Ok(Some((frame_type, payload)))
}

enum Filled {
    Complete,
    Eof,
    Partial(usize),
}

/// `read_exact`, but distinguishing "clean EOF before any byte" from "EOF
/// mid-buffer" — the former is a peer hanging up between frames, the latter
/// a torn frame.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<Filled> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial(filled)
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Filled::Complete)
}

// ---------------------------------------------------------------------------
// Little-endian payload cursors
// ---------------------------------------------------------------------------

/// Appends little-endian scalars to a payload buffer.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        PayloadWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (little endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` column without a length prefix (the caller encodes
    /// the count separately).
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads little-endian scalars from a payload, bounds-checked: running off
/// the end is a typed [`WireError::Protocol`], never a panic.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(WireError::Protocol {
                detail: format!(
                    "payload truncated reading {what}: need {n} B at offset {} of {}",
                    self.pos,
                    self.buf.len()
                ),
            }),
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u32` (little endian).
    pub fn get_u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64` (little endian).
    pub fn get_u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `count` little-endian `u32`s.
    pub fn get_u32_vec(&mut self, count: usize, what: &str) -> Result<Vec<u32>, WireError> {
        let bytes = self.take(count.saturating_mul(4), what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.get_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Protocol {
            detail: format!("{what} is not valid UTF-8"),
        })
    }

    /// True when every payload byte has been consumed — decoders check this
    /// so a frame with trailing garbage is rejected, not silently accepted.
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails with a protocol error unless the payload was fully consumed.
    pub fn expect_exhausted(&self, what: &str) -> Result<(), WireError> {
        if self.exhausted() {
            Ok(())
        } else {
            Err(WireError::Protocol {
                detail: format!(
                    "{what} carries {} trailing bytes past its declared content",
                    self.buf.len() - self.pos
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Request, b"hello").unwrap();
        write_frame(&mut buf, FrameType::Done, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        let (t, p) = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(t, FrameType::Request);
        assert_eq!(p, b"hello");
        let (t, p) = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(t, FrameType::Done);
        assert!(p.is_empty());
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Request, b"x").unwrap();
        buf[0] ^= 0xff;
        let err = read_frame(&mut io::Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::Protocol { .. }), "{err}");
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Request, b"x").unwrap();
        buf[4] = 9;
        let err = read_frame(&mut io::Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::Version { got: 9 }), "{err}");
    }

    #[test]
    fn unknown_frame_type_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Request, b"x").unwrap();
        buf[5] = 200;
        let err = read_frame(&mut io::Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::Protocol { .. }), "{err}");
    }

    #[test]
    fn torn_header_and_torn_payload_are_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Request, b"payload").unwrap();
        // Mid-header cut.
        let err = read_frame(&mut io::Cursor::new(&buf[..HEADER_BYTES - 3]), 1024).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        // Mid-payload cut.
        let err = read_frame(&mut io::Cursor::new(&buf[..buf.len() - 2]), 1024).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Request, b"abc").unwrap();
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(buf), 1024).unwrap_err();
        assert!(
            matches!(err, WireError::Oversized { len, max: 1024 } if len == u32::MAX as usize),
            "{err}"
        );
    }

    #[test]
    fn checksum_flip_is_corrupt() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Request, b"abcdef").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_frame(&mut io::Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn payload_reader_is_bounds_checked() {
        let mut w = PayloadWriter::default();
        w.put_u32(7);
        w.put_str("hi");
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.get_u32("seven").unwrap(), 7);
        assert_eq!(r.get_str("greeting").unwrap(), "hi");
        assert!(r.expect_exhausted("test payload").is_ok());
        let err = r.get_u64("past the end").unwrap_err();
        assert!(matches!(err, WireError::Protocol { .. }), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut w = PayloadWriter::default();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        r.get_u8("one").unwrap();
        let err = r.expect_exhausted("short message").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
