//! Protocol, admission-control and client half of the network serving
//! layer.
//!
//! This crate sits *below* the engine (it depends only on `datagen` and
//! the adaptive estimator) and holds everything the TCP front-end in
//! `hj_core::serve` and remote clients share:
//!
//! * [`frame`] — the length-prefixed, FNV-checksummed binary frame layer
//!   ([`write_frame`] / [`read_frame`]), with typed [`WireError`]s for
//!   torn, oversized, corrupt or foreign-protocol streams;
//! * [`message`] — the typed messages frames carry: [`WireRequest`],
//!   [`WireResponse`], streamed [`WireChunk`]s, the positive [`WireDone`]
//!   marker, typed [`WireFailure`]s, the [`WireOverloaded`] shed notice,
//!   and the table-registry trio [`WireRegister`] / [`WireRegistered`] /
//!   [`WireRefRequest`] that lets clients ship a build table once and
//!   join against it by name, plus the observability frames: the
//!   [`WireMetricsRequest`] / [`WireMetricsReply`] pair carrying a
//!   Prometheus-text snapshot of the engine's metrics registry, and
//!   [`WireTrace`], the per-join flight recorder a traced request's reply
//!   ends with;
//! * [`admission`] — the SLO-aware [`AdmissionController`]: per-client
//!   token-bucket quotas, an EWMA service-time estimate, a queue-time
//!   budget and deadline-based shedding, all on a caller-supplied clock
//!   so every decision is deterministic under test;
//! * [`histogram`] — a re-export of the shared log2-bucket
//!   [`LatencyHistogram`] from `hj-metrics`, which the engine (queue-wait
//!   and cache-build stats) and the bench harness (tail-latency
//!   percentiles) record into;
//! * [`client`] — the blocking [`JoinClient`] plus [`RequestBuilder`] and
//!   [`RefRequestBuilder`].
//!
//! The engine-facing half — the accepting socket, connection handlers,
//! cross-client batching and graceful shutdown — lives in
//! `hj_core::serve`, which maps [`WireRequest`]s onto engine submissions.

pub mod admission;
pub mod client;
pub mod frame;
pub mod histogram;
pub mod message;

pub use admission::{Admission, AdmissionController, AdmissionStats, SloConfig, Ticket};
pub use client::{ClientError, ClientOutcome, JoinClient, RefRequestBuilder, RequestBuilder};
pub use frame::{
    read_frame, write_frame, FrameType, PayloadReader, PayloadWriter, WireError,
    DEFAULT_MAX_PAYLOAD_BYTES, HEADER_BYTES, MAGIC, VERSION,
};
pub use histogram::{LatencyHistogram, HISTOGRAM_BUCKETS};
pub use message::{
    ShedReason, WireAlgorithm, WireChunk, WireDone, WireErrorCode, WireFailure, WireMetricsReply,
    WireMetricsRequest, WireOverloaded, WireRefRequest, WireRegister, WireRegistered, WireRequest,
    WireResponse, WireScheme, WireTrace, MAX_TABLE_NAME_BYTES, MAX_WIRE_TUPLES,
};
