//! Typed messages carried in wire frames: join requests, responses,
//! streamed pair chunks, shed notices and errors.
//!
//! The wire model deliberately does **not** reuse the engine's `Scheme` /
//! `Algorithm` types: the protocol names compact, versioned tags
//! ([`WireAlgorithm`], [`WireScheme`]) and the serving layer maps them onto
//! whatever the engine currently supports — the wire format can stay
//! stable while the engine evolves underneath it.

use crate::frame::{PayloadReader, PayloadWriter, WireError};
use datagen::Relation;
use hj_metrics::{FlightEvent, JoinTrace, TraceEventKind, TraceSpan};

/// Ceiling on the relation cardinalities one request frame may carry (the
/// per-column count fields are `u32`, but a hostile count close to
/// `u32::MAX` must be rejected before the column allocation, consistently
/// with the frame-level payload ceiling).
pub const MAX_WIRE_TUPLES: usize = 256 * 1024 * 1024;

/// Ceiling on a registered table name in bytes — names are registry keys,
/// not payload, so a kilobyte is already generous.
pub const MAX_TABLE_NAME_BYTES: usize = 1024;

fn check_table_name(name: &str) -> Result<(), WireError> {
    if name.is_empty() {
        return Err(WireError::Protocol {
            detail: "table name must not be empty".to_string(),
        });
    }
    if name.len() > MAX_TABLE_NAME_BYTES {
        return Err(WireError::Protocol {
            detail: format!(
                "table name of {} B exceeds the {MAX_TABLE_NAME_BYTES} B limit",
                name.len()
            ),
        });
    }
    Ok(())
}

fn decode_trace_flag(r: &mut PayloadReader<'_>) -> Result<bool, WireError> {
    match r.get_u8("trace flag")? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::Protocol {
            detail: format!("trace flag must be 0 or 1, got {other}"),
        }),
    }
}

/// The join algorithm, as a wire tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireAlgorithm {
    /// Simple hash join.
    Shj = 0,
    /// Radix-partitioned hash join (auto radix bits, one pass).
    Phj = 1,
}

impl WireAlgorithm {
    fn from_u8(raw: u8) -> Result<Self, WireError> {
        match raw {
            0 => Ok(WireAlgorithm::Shj),
            1 => Ok(WireAlgorithm::Phj),
            _ => Err(WireError::Protocol {
                detail: format!("unknown algorithm tag {raw}"),
            }),
        }
    }
}

/// The co-processing scheme, as a wire tag (paper presets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireScheme {
    /// Everything on the CPU.
    CpuOnly = 0,
    /// Everything on the GPU.
    GpuOnly = 1,
    /// Off-loading (the paper's OL preset).
    Offload = 2,
    /// Data dividing (the paper's DD ratios).
    DataDividing = 3,
    /// Pipelined fine-grained co-processing (the paper's PL ratios).
    Pipelined = 4,
}

impl WireScheme {
    fn from_u8(raw: u8) -> Result<Self, WireError> {
        match raw {
            0 => Ok(WireScheme::CpuOnly),
            1 => Ok(WireScheme::GpuOnly),
            2 => Ok(WireScheme::Offload),
            3 => Ok(WireScheme::DataDividing),
            4 => Ok(WireScheme::Pipelined),
            _ => Err(WireError::Protocol {
                detail: format!("unknown scheme tag {raw}"),
            }),
        }
    }
}

/// One decoded join request.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed on every frame of the reply.
    pub id: u64,
    /// Join algorithm tag.
    pub algorithm: WireAlgorithm,
    /// Co-processing scheme tag.
    pub scheme: WireScheme,
    /// Materialise and stream the pair set (otherwise only the match count
    /// is returned).
    pub collect_pairs: bool,
    /// Scheduling priority (higher = more important; see the admission
    /// controller for the exact semantics).
    pub priority: u8,
    /// Ask the server to record a per-join flight recorder and stream it as
    /// a [`FrameType::Trace`](crate::frame::FrameType::Trace) frame after
    /// [`WireDone`].  The join result itself is byte-identical either way.
    pub trace: bool,
    /// Completion deadline in milliseconds from arrival; `0` means none.
    /// A request whose *estimated* completion would bust the deadline is
    /// shed with [`WireOverloaded`] instead of being queued to fail.
    pub deadline_ms: u32,
    /// Build-side relation.
    pub build: Relation,
    /// Probe-side relation.
    pub probe: Relation,
}

impl WireRequest {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(32 + 8 * (self.build.len() + self.probe.len()));
        w.put_u64(self.id);
        w.put_u8(self.algorithm as u8);
        w.put_u8(self.scheme as u8);
        w.put_u8(self.collect_pairs as u8);
        w.put_u8(self.priority);
        w.put_u8(self.trace as u8);
        w.put_u32(self.deadline_ms);
        w.put_u32(self.build.len() as u32);
        w.put_u32(self.probe.len() as u32);
        w.put_u32_slice(self.build.keys());
        w.put_u32_slice(self.build.rids());
        w.put_u32_slice(self.probe.keys());
        w.put_u32_slice(self.probe.rids());
        w.into_bytes()
    }

    /// Decodes a request payload, rejecting malformed tags, impossible
    /// cardinalities and trailing garbage.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on any structural problem.
    pub fn decode(payload: &[u8]) -> Result<WireRequest, WireError> {
        let mut r = PayloadReader::new(payload);
        let id = r.get_u64("request id")?;
        let algorithm = WireAlgorithm::from_u8(r.get_u8("algorithm tag")?)?;
        let scheme = WireScheme::from_u8(r.get_u8("scheme tag")?)?;
        let collect_pairs = match r.get_u8("collect flag")? {
            0 => false,
            1 => true,
            other => {
                return Err(WireError::Protocol {
                    detail: format!("collect flag must be 0 or 1, got {other}"),
                })
            }
        };
        let priority = r.get_u8("priority")?;
        let trace = decode_trace_flag(&mut r)?;
        let deadline_ms = r.get_u32("deadline")?;
        let build_len = r.get_u32("build cardinality")? as usize;
        let probe_len = r.get_u32("probe cardinality")? as usize;
        if build_len > MAX_WIRE_TUPLES || probe_len > MAX_WIRE_TUPLES {
            return Err(WireError::Protocol {
                detail: format!(
                    "request claims {build_len} x {probe_len} tuples, above the \
                     {MAX_WIRE_TUPLES}-tuple wire limit"
                ),
            });
        }
        let build_keys = r.get_u32_vec(build_len, "build keys")?;
        let build_rids = r.get_u32_vec(build_len, "build rids")?;
        let probe_keys = r.get_u32_vec(probe_len, "probe keys")?;
        let probe_rids = r.get_u32_vec(probe_len, "probe rids")?;
        r.expect_exhausted("request")?;
        Ok(WireRequest {
            id,
            algorithm,
            scheme,
            collect_pairs,
            priority,
            trace,
            deadline_ms,
            build: Relation::from_columns(build_rids, build_keys),
            probe: Relation::from_columns(probe_rids, probe_keys),
        })
    }
}

/// One decoded table-registration request: ship a named build-side
/// relation once, then reference it from [`WireRefRequest`]s.
/// Re-registering an existing name replaces its tuples and bumps the
/// registry version (cached hash tables of the old version are dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRegister {
    /// Client-chosen correlation id, echoed on the acknowledgement.
    pub id: u64,
    /// Registry name (non-empty, at most [`MAX_TABLE_NAME_BYTES`] bytes).
    pub name: String,
    /// The build-side relation to register.
    pub tuples: Relation,
}

impl WireRegister {
    /// Encodes the registration into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(24 + self.name.len() + 8 * self.tuples.len());
        w.put_u64(self.id);
        w.put_str(&self.name);
        w.put_u32(self.tuples.len() as u32);
        w.put_u32_slice(self.tuples.keys());
        w.put_u32_slice(self.tuples.rids());
        w.into_bytes()
    }

    /// Decodes a registration payload.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on a malformed name, an impossible
    /// cardinality or trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<WireRegister, WireError> {
        let mut r = PayloadReader::new(payload);
        let id = r.get_u64("register id")?;
        let name = r.get_str("table name")?;
        check_table_name(&name)?;
        let len = r.get_u32("table cardinality")? as usize;
        if len > MAX_WIRE_TUPLES {
            return Err(WireError::Protocol {
                detail: format!(
                    "registration claims {len} tuples, above the \
                     {MAX_WIRE_TUPLES}-tuple wire limit"
                ),
            });
        }
        let keys = r.get_u32_vec(len, "table keys")?;
        let rids = r.get_u32_vec(len, "table rids")?;
        r.expect_exhausted("register")?;
        Ok(WireRegister {
            id,
            name,
            tuples: Relation::from_columns(rids, keys),
        })
    }
}

/// Acknowledgement of a [`WireRegister`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRegistered {
    /// Echo of the registration id.
    pub id: u64,
    /// Registry version of the name after this registration (1 for a new
    /// name, incremented on every replacement).
    pub version: u64,
    /// Tuple count the server holds under the name.
    pub tuples: u64,
}

impl WireRegistered {
    /// Encodes the acknowledgement.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(24);
        w.put_u64(self.id);
        w.put_u64(self.version);
        w.put_u64(self.tuples);
        w.into_bytes()
    }

    /// Decodes the acknowledgement.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WireRegistered, WireError> {
        let mut r = PayloadReader::new(payload);
        let out = WireRegistered {
            id: r.get_u64("registered id")?,
            version: r.get_u64("registered version")?,
            tuples: r.get_u64("registered tuple count")?,
        };
        r.expect_exhausted("registered")?;
        Ok(out)
    }
}

/// One decoded table-referencing join request: the build side names a
/// registered table, only the probe relation travels inline.  The reply
/// stream is identical to a [`WireRequest`]'s.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRefRequest {
    /// Client-chosen correlation id, echoed on every frame of the reply.
    pub id: u64,
    /// Join algorithm tag.
    pub algorithm: WireAlgorithm,
    /// Co-processing scheme tag.
    pub scheme: WireScheme,
    /// Materialise and stream the pair set (otherwise only the match count
    /// is returned).
    pub collect_pairs: bool,
    /// Scheduling priority (see [`WireRequest::priority`]).
    pub priority: u8,
    /// Request a flight-recorder trace (see [`WireRequest::trace`]).
    pub trace: bool,
    /// Completion deadline in milliseconds from arrival; `0` means none.
    pub deadline_ms: u32,
    /// Name of the registered build-side table.
    pub table: String,
    /// Probe-side relation.
    pub probe: Relation,
}

impl WireRefRequest {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(32 + self.table.len() + 8 * self.probe.len());
        w.put_u64(self.id);
        w.put_u8(self.algorithm as u8);
        w.put_u8(self.scheme as u8);
        w.put_u8(self.collect_pairs as u8);
        w.put_u8(self.priority);
        w.put_u8(self.trace as u8);
        w.put_u32(self.deadline_ms);
        w.put_str(&self.table);
        w.put_u32(self.probe.len() as u32);
        w.put_u32_slice(self.probe.keys());
        w.put_u32_slice(self.probe.rids());
        w.into_bytes()
    }

    /// Decodes a table-referencing request payload.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on any structural problem.
    pub fn decode(payload: &[u8]) -> Result<WireRefRequest, WireError> {
        let mut r = PayloadReader::new(payload);
        let id = r.get_u64("ref-request id")?;
        let algorithm = WireAlgorithm::from_u8(r.get_u8("algorithm tag")?)?;
        let scheme = WireScheme::from_u8(r.get_u8("scheme tag")?)?;
        let collect_pairs = match r.get_u8("collect flag")? {
            0 => false,
            1 => true,
            other => {
                return Err(WireError::Protocol {
                    detail: format!("collect flag must be 0 or 1, got {other}"),
                })
            }
        };
        let priority = r.get_u8("priority")?;
        let trace = decode_trace_flag(&mut r)?;
        let deadline_ms = r.get_u32("deadline")?;
        let table = r.get_str("table name")?;
        check_table_name(&table)?;
        let probe_len = r.get_u32("probe cardinality")? as usize;
        if probe_len > MAX_WIRE_TUPLES {
            return Err(WireError::Protocol {
                detail: format!(
                    "ref-request claims {probe_len} probe tuples, above the \
                     {MAX_WIRE_TUPLES}-tuple wire limit"
                ),
            });
        }
        let probe_keys = r.get_u32_vec(probe_len, "probe keys")?;
        let probe_rids = r.get_u32_vec(probe_len, "probe rids")?;
        r.expect_exhausted("ref-request")?;
        Ok(WireRefRequest {
            id,
            algorithm,
            scheme,
            collect_pairs,
            priority,
            trace,
            deadline_ms,
            table,
            probe: Relation::from_columns(probe_rids, probe_keys),
        })
    }
}

/// The scalar head of a successful reply; [`WireChunk`]s follow when pairs
/// were collected, closed by a [`WireDone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Join match count.
    pub matches: u64,
    /// Total pairs that will be streamed (0 when pairs were not collected).
    pub pair_count: u64,
    /// Chunk frames that will follow.
    pub chunks: u32,
}

impl WireResponse {
    /// Encodes the response head.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(28);
        w.put_u64(self.id);
        w.put_u64(self.matches);
        w.put_u64(self.pair_count);
        w.put_u32(self.chunks);
        w.into_bytes()
    }

    /// Decodes a response head.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WireResponse, WireError> {
        let mut r = PayloadReader::new(payload);
        let out = WireResponse {
            id: r.get_u64("response id")?,
            matches: r.get_u64("match count")?,
            pair_count: r.get_u64("pair count")?,
            chunks: r.get_u32("chunk count")?,
        };
        r.expect_exhausted("response")?;
        Ok(out)
    }
}

/// One bounded slice of a collected pair set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireChunk {
    /// Echo of the request id.
    pub id: u64,
    /// Zero-based chunk sequence number.
    pub seq: u32,
    /// `(build_rid, probe_rid)` pairs of this slice.
    pub pairs: Vec<(u32, u32)>,
}

impl WireChunk {
    /// Encodes the chunk.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(16 + 8 * self.pairs.len());
        w.put_u64(self.id);
        w.put_u32(self.seq);
        w.put_u32(self.pairs.len() as u32);
        for &(b, p) in &self.pairs {
            w.put_u32(b);
            w.put_u32(p);
        }
        w.into_bytes()
    }

    /// Decodes a chunk.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WireChunk, WireError> {
        let mut r = PayloadReader::new(payload);
        let id = r.get_u64("chunk id")?;
        let seq = r.get_u32("chunk seq")?;
        let count = r.get_u32("chunk pair count")? as usize;
        // A hostile count cannot drive the reservation past what the
        // payload could physically carry (8 bytes per pair).
        let mut pairs = Vec::with_capacity(count.min(payload.len() / 8 + 1));
        for _ in 0..count {
            let b = r.get_u32("chunk build rid")?;
            let p = r.get_u32("chunk probe rid")?;
            pairs.push((b, p));
        }
        r.expect_exhausted("chunk")?;
        Ok(WireChunk { id, seq, pairs })
    }
}

/// Positive end-of-reply marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireDone {
    /// Echo of the request id.
    pub id: u64,
    /// Chunks that were streamed; the client cross-checks this against what
    /// it received, so a torn stream cannot masquerade as a short result.
    pub chunks: u32,
}

impl WireDone {
    /// Encodes the marker.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(12);
        w.put_u64(self.id);
        w.put_u32(self.chunks);
        w.into_bytes()
    }

    /// Decodes the marker.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WireDone, WireError> {
        let mut r = PayloadReader::new(payload);
        let out = WireDone {
            id: r.get_u64("done id")?,
            chunks: r.get_u32("done chunk count")?,
        };
        r.expect_exhausted("done")?;
        Ok(out)
    }
}

/// Why a request was shed rather than served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShedReason {
    /// Estimated completion (queue wait + service estimate) would bust the
    /// request's deadline.
    Deadline = 0,
    /// The client's token-bucket quota is exhausted.
    Quota = 1,
    /// The server's queue-time budget is exhausted (backlog too deep for
    /// any new work, deadline or not).
    QueueBudget = 2,
    /// The engine's session pool and admission queue were both full.
    Saturated = 3,
}

impl ShedReason {
    fn from_u8(raw: u8) -> Result<Self, WireError> {
        match raw {
            0 => Ok(ShedReason::Deadline),
            1 => Ok(ShedReason::Quota),
            2 => Ok(ShedReason::QueueBudget),
            3 => Ok(ShedReason::Saturated),
            _ => Err(WireError::Protocol {
                detail: format!("unknown shed reason {raw}"),
            }),
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::Deadline => "deadline",
            ShedReason::Quota => "quota",
            ShedReason::QueueBudget => "queue-budget",
            ShedReason::Saturated => "saturated",
        }
    }
}

/// A typed shed notice: the request was well-formed but not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOverloaded {
    /// Echo of the request id.
    pub id: u64,
    /// Why the request was shed.
    pub reason: ShedReason,
    /// Suggested earliest retry, in milliseconds.
    pub retry_after_ms: u32,
    /// Requests in flight on the engine when the shed decision was made.
    pub in_flight: u32,
    /// Requests queued for a session at that moment.
    pub queued: u32,
}

impl WireOverloaded {
    /// Encodes the notice.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(24);
        w.put_u64(self.id);
        w.put_u8(self.reason as u8);
        w.put_u32(self.retry_after_ms);
        w.put_u32(self.in_flight);
        w.put_u32(self.queued);
        w.into_bytes()
    }

    /// Decodes the notice.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WireOverloaded, WireError> {
        let mut r = PayloadReader::new(payload);
        let out = WireOverloaded {
            id: r.get_u64("overloaded id")?,
            reason: ShedReason::from_u8(r.get_u8("shed reason")?)?,
            retry_after_ms: r.get_u32("retry-after")?,
            in_flight: r.get_u32("in-flight")?,
            queued: r.get_u32("queued")?,
        };
        r.expect_exhausted("overloaded")?;
        Ok(out)
    }
}

/// Coarse failure classes the server reports back over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireErrorCode {
    /// The request frame decoded but named an invalid configuration.
    InvalidRequest = 1,
    /// The inputs exceed what the engine admits.
    Oversized = 2,
    /// The join failed during execution (arena exhaustion, backend error).
    Execution = 3,
    /// The peer violated the frame protocol (reported best-effort before
    /// the connection closes).
    Protocol = 4,
    /// The server failed internally (e.g. a panicked backend).
    Internal = 5,
    /// A table-referencing request named a table the registry does not
    /// hold (never registered, or the server restarted since).
    UnknownTable = 6,
}

impl WireErrorCode {
    fn from_u8(raw: u8) -> Result<Self, WireError> {
        match raw {
            1 => Ok(WireErrorCode::InvalidRequest),
            2 => Ok(WireErrorCode::Oversized),
            3 => Ok(WireErrorCode::Execution),
            4 => Ok(WireErrorCode::Protocol),
            5 => Ok(WireErrorCode::Internal),
            6 => Ok(WireErrorCode::UnknownTable),
            _ => Err(WireError::Protocol {
                detail: format!("unknown error code {raw}"),
            }),
        }
    }
}

/// A typed failure reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFailure {
    /// Echo of the request id (`0` for connection-level protocol errors
    /// that have no decodable request).
    pub id: u64,
    /// Failure class.
    pub code: WireErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireFailure {
    /// Encodes the failure.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(16 + self.message.len());
        w.put_u64(self.id);
        w.put_u8(self.code as u8);
        w.put_str(&self.message);
        w.into_bytes()
    }

    /// Decodes the failure.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WireFailure, WireError> {
        let mut r = PayloadReader::new(payload);
        let out = WireFailure {
            id: r.get_u64("error id")?,
            code: WireErrorCode::from_u8(r.get_u8("error code")?)?,
            message: r.get_str("error message")?,
        };
        r.expect_exhausted("error")?;
        Ok(out)
    }
}

/// A request for a snapshot of the server engine's metrics registry.
///
/// Never admission-controlled: observability must keep working exactly when
/// the server is saturated and sheds join traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMetricsRequest {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: u64,
}

impl WireMetricsRequest {
    /// Encodes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(8);
        w.put_u64(self.id);
        w.into_bytes()
    }

    /// Decodes the request.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WireMetricsRequest, WireError> {
        let mut r = PayloadReader::new(payload);
        let out = WireMetricsRequest {
            id: r.get_u64("metrics id")?,
        };
        r.expect_exhausted("metrics request")?;
        Ok(out)
    }
}

/// The metrics snapshot, rendered in Prometheus text exposition format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMetricsReply {
    /// Echo of the request id.
    pub id: u64,
    /// The rendered exposition text (`# HELP` / `# TYPE` / samples).
    pub text: String,
}

impl WireMetricsReply {
    /// Encodes the reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(12 + self.text.len());
        w.put_u64(self.id);
        w.put_str(&self.text);
        w.into_bytes()
    }

    /// Decodes the reply.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation, invalid UTF-8 or trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> Result<WireMetricsReply, WireError> {
        let mut r = PayloadReader::new(payload);
        let out = WireMetricsReply {
            id: r.get_u64("metrics reply id")?,
            text: r.get_str("metrics text")?,
        };
        r.expect_exhausted("metrics reply")?;
        Ok(out)
    }
}

/// The per-join flight recorder of a traced request, streamed after
/// [`WireDone`] so clients that did not ask for a trace never see the
/// frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTrace {
    /// Echo of the request id.
    pub id: u64,
    /// The recorded trace (span tree + typed events).
    pub trace: JoinTrace,
}

impl WireTrace {
    /// Encodes the trace.
    pub fn encode(&self) -> Vec<u8> {
        let t = &self.trace;
        let mut w = PayloadWriter::with_capacity(64 + 48 * (t.spans.len() + t.events.len()));
        w.put_u64(self.id);
        w.put_u64(t.root);
        w.put_u64(t.dropped_events);
        w.put_u32(t.spans.len() as u32);
        for span in &t.spans {
            w.put_u64(span.id);
            w.put_u64(span.parent);
            w.put_str(&span.label);
            w.put_u64(span.start_ns);
            w.put_u64(span.duration_ns);
        }
        w.put_u32(t.events.len() as u32);
        for event in &t.events {
            w.put_u64(event.span);
            w.put_u64(event.at_ns);
            w.put_u8(event.kind.code());
            w.put_str(&event.label);
            w.put_u64(event.value);
        }
        w.into_bytes()
    }

    /// Decodes a trace payload.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation, an unknown event-kind code,
    /// hostile counts or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WireTrace, WireError> {
        let mut r = PayloadReader::new(payload);
        let id = r.get_u64("trace id")?;
        let mut trace = JoinTrace {
            root: r.get_u64("trace root")?,
            dropped_events: r.get_u64("trace dropped count")?,
            ..JoinTrace::default()
        };
        let span_count = r.get_u32("trace span count")? as usize;
        // A span costs ≥ 36 encoded bytes, an event ≥ 29: a hostile count
        // cannot reserve more than the payload could physically carry.
        trace.spans.reserve(span_count.min(payload.len() / 36 + 1));
        for _ in 0..span_count {
            trace.spans.push(TraceSpan {
                id: r.get_u64("span id")?,
                parent: r.get_u64("span parent")?,
                label: r.get_str("span label")?,
                start_ns: r.get_u64("span start")?,
                duration_ns: r.get_u64("span duration")?,
            });
        }
        let event_count = r.get_u32("trace event count")? as usize;
        trace
            .events
            .reserve(event_count.min(payload.len() / 29 + 1));
        for _ in 0..event_count {
            let span = r.get_u64("event span")?;
            let at_ns = r.get_u64("event timestamp")?;
            let code = r.get_u8("event kind")?;
            let kind = TraceEventKind::from_code(code).ok_or_else(|| WireError::Protocol {
                detail: format!("unknown trace event kind {code}"),
            })?;
            let label = r.get_str("event label")?;
            let value = r.get_u64("event value")?;
            trace.events.push(FlightEvent {
                span,
                at_ns,
                kind,
                label,
                value,
            });
        }
        r.expect_exhausted("trace")?;
        Ok(WireTrace { id, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> WireRequest {
        WireRequest {
            id: 42,
            algorithm: WireAlgorithm::Phj,
            scheme: WireScheme::Pipelined,
            collect_pairs: true,
            priority: 7,
            trace: true,
            deadline_ms: 250,
            build: Relation::from_columns(vec![0, 1, 2], vec![10, 20, 30]),
            probe: Relation::from_columns(vec![5, 6], vec![20, 30]),
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        assert_eq!(WireRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn request_rejects_bad_tags_and_trailing_bytes() {
        let req = sample_request();
        let mut bytes = req.encode();
        bytes[8] = 99; // algorithm tag
        assert!(WireRequest::decode(&bytes).is_err());
        let mut bytes = req.encode();
        bytes.push(0);
        let err = WireRequest::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn request_rejects_hostile_cardinalities() {
        let req = sample_request();
        let mut bytes = req.encode();
        // The build-count field sits after id(8) + five u8 tags + deadline(4).
        bytes[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = WireRequest::decode(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Protocol { .. }), "{err}");
    }

    #[test]
    fn scalar_messages_round_trip() {
        let resp = WireResponse {
            id: 1,
            matches: 2,
            pair_count: 3,
            chunks: 4,
        };
        assert_eq!(WireResponse::decode(&resp.encode()).unwrap(), resp);

        let chunk = WireChunk {
            id: 1,
            seq: 0,
            pairs: vec![(1, 2), (3, 4)],
        };
        assert_eq!(WireChunk::decode(&chunk.encode()).unwrap(), chunk);

        let done = WireDone { id: 1, chunks: 9 };
        assert_eq!(WireDone::decode(&done.encode()).unwrap(), done);

        let over = WireOverloaded {
            id: 8,
            reason: ShedReason::Deadline,
            retry_after_ms: 40,
            in_flight: 4,
            queued: 2,
        };
        assert_eq!(WireOverloaded::decode(&over.encode()).unwrap(), over);

        let fail = WireFailure {
            id: 3,
            code: WireErrorCode::Execution,
            message: "arena exhausted".into(),
        };
        assert_eq!(WireFailure::decode(&fail.encode()).unwrap(), fail);
    }

    fn sample_register() -> WireRegister {
        WireRegister {
            id: 11,
            name: "dim_dates".to_string(),
            tuples: Relation::from_columns(vec![0, 1, 2], vec![10, 20, 30]),
        }
    }

    fn sample_ref_request() -> WireRefRequest {
        WireRefRequest {
            id: 12,
            algorithm: WireAlgorithm::Phj,
            scheme: WireScheme::DataDividing,
            collect_pairs: true,
            priority: 3,
            trace: false,
            deadline_ms: 100,
            table: "dim_dates".to_string(),
            probe: Relation::from_columns(vec![5, 6], vec![20, 30]),
        }
    }

    #[test]
    fn register_round_trips() {
        let reg = sample_register();
        assert_eq!(WireRegister::decode(&reg.encode()).unwrap(), reg);
        let ack = WireRegistered {
            id: 11,
            version: 3,
            tuples: 3,
        };
        assert_eq!(WireRegistered::decode(&ack.encode()).unwrap(), ack);
    }

    #[test]
    fn register_rejects_bad_names_and_cardinalities() {
        let mut reg = sample_register();
        reg.name = String::new();
        let err = WireRegister::decode(&reg.encode()).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");

        let mut reg = sample_register();
        reg.name = "n".repeat(MAX_TABLE_NAME_BYTES + 1);
        let err = WireRegister::decode(&reg.encode()).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");

        let reg = sample_register();
        let mut bytes = reg.encode();
        // The cardinality field sits after id(8) + name length prefix(4) +
        // name bytes.
        let count_at = 12 + reg.name.len();
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = WireRegister::decode(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Protocol { .. }), "{err}");
    }

    #[test]
    fn ref_request_round_trips() {
        let req = sample_ref_request();
        assert_eq!(WireRefRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn ref_request_rejects_bad_tags_and_trailing_bytes() {
        let req = sample_ref_request();
        let mut bytes = req.encode();
        bytes[8] = 99; // algorithm tag
        assert!(WireRefRequest::decode(&bytes).is_err());
        let mut bytes = req.encode();
        bytes.push(0);
        let err = WireRefRequest::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");

        let mut req = sample_ref_request();
        req.table = String::new();
        let err = WireRefRequest::decode(&req.encode()).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn unknown_table_code_round_trips() {
        let fail = WireFailure {
            id: 3,
            code: WireErrorCode::UnknownTable,
            message: "no table named 'dim_dates'".into(),
        };
        assert_eq!(WireFailure::decode(&fail.encode()).unwrap(), fail);
    }

    #[test]
    fn bad_trace_flag_is_rejected() {
        let req = sample_request();
        let mut bytes = req.encode();
        // The trace flag is the fifth u8 tag, right after priority.
        bytes[12] = 7;
        let err = WireRequest::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trace flag"), "{err}");
    }

    #[test]
    fn metrics_messages_round_trip() {
        let req = WireMetricsRequest { id: 77 };
        assert_eq!(WireMetricsRequest::decode(&req.encode()).unwrap(), req);
        let reply = WireMetricsReply {
            id: 77,
            text: "# HELP hj_engine_requests_served_total Requests\n".to_string(),
        };
        assert_eq!(WireMetricsReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn trace_messages_round_trip() {
        let mut trace = JoinTrace::default();
        let root = trace.push_span(0, "join", 0, 500);
        let build = trace.push_span(root, "build", 10, 200);
        trace.push_event(build, 42, TraceEventKind::Step, "b1", 123);
        trace.push_event(root, 499, TraceEventKind::Spill, "bytes-spilled", 0);
        trace.dropped_events = 3;
        let wire = WireTrace { id: 9, trace };
        assert_eq!(WireTrace::decode(&wire.encode()).unwrap(), wire);
    }

    #[test]
    fn trace_rejects_unknown_event_kind_and_trailing_bytes() {
        let mut trace = JoinTrace::default();
        let root = trace.push_span(0, "join", 0, 1);
        trace.push_event(root, 0, TraceEventKind::Mark, "m", 0);
        let wire = WireTrace { id: 1, trace };
        let mut bytes = wire.encode();
        // The event-kind byte sits after id(8) + root(8) + dropped(8) +
        // span count(4) + one span (8+8+4+4 name bytes+8+8) + event
        // count(4) + event span(8) + event timestamp(8).
        let kind_at = 28 + 40 + 4 + 16;
        bytes[kind_at] = 0xEE;
        let err = WireTrace::decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("unknown trace event kind"),
            "{err}"
        );

        let mut bytes = wire.encode();
        bytes.push(0);
        let err = WireTrace::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn shed_reasons_have_labels() {
        for reason in [
            ShedReason::Deadline,
            ShedReason::Quota,
            ShedReason::QueueBudget,
            ShedReason::Saturated,
        ] {
            assert!(!reason.label().is_empty());
        }
    }
}
