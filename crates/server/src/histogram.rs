//! Re-export of the shared log2-bucket latency histogram.
//!
//! The histogram used to live here; it moved to the `hj-metrics` leaf crate
//! so the engine's queue-wait and cache-build-latency stats record into the
//! *same* type instead of a parallel implementation.  This module remains so
//! existing `hj_server::histogram::LatencyHistogram` paths keep compiling.

pub use hj_metrics::{LatencyHistogram, HISTOGRAM_BUCKETS};
