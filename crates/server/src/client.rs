//! A blocking TCP client for the serving layer.
//!
//! One [`JoinClient`] owns one connection and issues requests
//! sequentially — the intended unit of client-side parallelism is one
//! client per thread, which is also what the open-loop bench harness
//! does.  The client cross-checks the streamed chunk frames against the
//! response head and the final `Done` marker, so a torn reply surfaces as
//! a typed [`ClientError`] rather than a silently short pair set.

use crate::frame::{read_frame, write_frame, FrameType, WireError, DEFAULT_MAX_PAYLOAD_BYTES};
use crate::message::{
    ShedReason, WireChunk, WireDone, WireErrorCode, WireFailure, WireMetricsReply,
    WireMetricsRequest, WireOverloaded, WireRefRequest, WireRegister, WireRegistered, WireRequest,
    WireResponse, WireTrace,
};
use datagen::Relation;
use hj_metrics::JoinTrace;
use std::fmt;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything a request can come back as, other than success.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (includes read timeouts).
    Io(std::io::Error),
    /// The server's reply violated the wire protocol.
    Protocol {
        /// What did not parse.
        detail: String,
    },
    /// The request was shed by admission control — well-formed, retry
    /// after the hinted backoff.
    Overloaded {
        /// Why the request was shed.
        reason: ShedReason,
        /// Suggested earliest retry, in milliseconds.
        retry_after_ms: u32,
        /// Engine requests in flight when the shed decision was made.
        in_flight: u32,
        /// Engine requests queued at that moment.
        queued: u32,
    },
    /// The server reported a typed failure for this request.
    Server {
        /// Failure class.
        code: WireErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            ClientError::Overloaded {
                reason,
                retry_after_ms,
                ..
            } => write!(
                f,
                "request shed ({}); retry after {retry_after_ms} ms",
                reason.label()
            ),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol {
                detail: other.to_string(),
            },
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True when the error is a shed notice (retryable by design).
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Overloaded { .. })
    }
}

/// The decoded outcome of one served join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOutcome {
    /// Join match count.
    pub matches: u64,
    /// The streamed `(build_rid, probe_rid)` pairs, in server order; empty
    /// when the request did not ask for pairs.
    pub pairs: Vec<(u32, u32)>,
    /// The per-join flight recorder, when the request set the trace flag
    /// and the server streamed one after `Done`.
    pub trace: Option<JoinTrace>,
}

/// A blocking connection to a join server.
#[derive(Debug)]
pub struct JoinClient {
    stream: TcpStream,
    max_payload: usize,
    next_id: u64,
}

impl JoinClient {
    /// Connects to `addr` with no read timeout.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<JoinClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(JoinClient {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD_BYTES,
            next_id: 1,
        })
    }

    /// Connects to `addr` and bounds every read by `timeout` — a server
    /// that stops mid-reply surfaces as [`ClientError::Io`] instead of a
    /// hang.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<JoinClient, ClientError> {
        let client = JoinClient::connect(addr)?;
        client.stream.set_read_timeout(Some(timeout))?;
        Ok(client)
    }

    /// Caps reply payloads at `bytes` (default: the frame layer's 64 MiB).
    pub fn set_max_payload(&mut self, bytes: usize) {
        self.max_payload = bytes;
    }

    /// Sends `request` and blocks for the full reply.  The request's `id`
    /// field is overwritten with a connection-unique id.
    ///
    /// # Errors
    /// See [`ClientError`]; [`ClientError::Overloaded`] is the typed shed
    /// notice.
    pub fn join(&mut self, mut request: WireRequest) -> Result<ClientOutcome, ClientError> {
        request.id = self.next_id;
        self.next_id += 1;
        {
            let mut w = BufWriter::new(&self.stream);
            write_frame(&mut w, FrameType::Request, &request.encode())?;
        }
        self.read_reply(request.id, request.trace)
    }

    /// Fetches a snapshot of the server engine's metrics registry in
    /// Prometheus text exposition format.  Never admission-controlled:
    /// this works exactly when the server sheds join traffic.
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        {
            let mut w = BufWriter::new(&self.stream);
            write_frame(
                &mut w,
                FrameType::Metrics,
                &WireMetricsRequest { id }.encode(),
            )?;
        }
        match self.read_frame_or_close()? {
            (FrameType::MetricsReply, payload) => {
                let reply = WireMetricsReply::decode(&payload)?;
                self.check_id(reply.id, id)?;
                Ok(reply.text)
            }
            (FrameType::Error, payload) => {
                let fail = WireFailure::decode(&payload)?;
                Err(ClientError::Server {
                    code: fail.code,
                    message: fail.message,
                })
            }
            (other, _) => Err(ClientError::Protocol {
                detail: format!("expected a MetricsReply, got {other:?}"),
            }),
        }
    }

    /// Registers `tuples` under `name` in the server's table registry and
    /// blocks for the acknowledgement.  Registering an existing name
    /// replaces its tuples and bumps the returned version; subsequent
    /// [`join_ref`](Self::join_ref) requests against the name hit the
    /// server's hash-table cache after the first build.
    ///
    /// # Errors
    /// See [`ClientError`]; a malformed name surfaces as
    /// [`ClientError::Server`] with a Protocol/InvalidRequest code.
    pub fn register_table(
        &mut self,
        name: &str,
        tuples: Relation,
    ) -> Result<WireRegistered, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let register = WireRegister {
            id,
            name: name.to_string(),
            tuples,
        };
        {
            let mut w = BufWriter::new(&self.stream);
            write_frame(&mut w, FrameType::Register, &register.encode())?;
        }
        match self.read_frame_or_close()? {
            (FrameType::Registered, payload) => {
                let ack = WireRegistered::decode(&payload)?;
                self.check_id(ack.id, id)?;
                Ok(ack)
            }
            (FrameType::Error, payload) => {
                let fail = WireFailure::decode(&payload)?;
                Err(ClientError::Server {
                    code: fail.code,
                    message: fail.message,
                })
            }
            (other, _) => Err(ClientError::Protocol {
                detail: format!("expected a Registered acknowledgement, got {other:?}"),
            }),
        }
    }

    /// Sends a table-referencing `request` (build side named, probe
    /// inline) and blocks for the full reply.  The request's `id` field is
    /// overwritten with a connection-unique id.
    ///
    /// # Errors
    /// See [`ClientError`]; an unregistered name surfaces as
    /// [`ClientError::Server`] with [`WireErrorCode::UnknownTable`].
    pub fn join_ref(&mut self, mut request: WireRefRequest) -> Result<ClientOutcome, ClientError> {
        request.id = self.next_id;
        self.next_id += 1;
        {
            let mut w = BufWriter::new(&self.stream);
            write_frame(&mut w, FrameType::TableRef, &request.encode())?;
        }
        self.read_reply(request.id, request.trace)
    }

    fn read_reply(&mut self, id: u64, expect_trace: bool) -> Result<ClientOutcome, ClientError> {
        let head = match self.read_frame_or_close()? {
            (FrameType::Response, payload) => WireResponse::decode(&payload)?,
            (FrameType::Overloaded, payload) => {
                let over = WireOverloaded::decode(&payload)?;
                self.check_id(over.id, id)?;
                return Err(ClientError::Overloaded {
                    reason: over.reason,
                    retry_after_ms: over.retry_after_ms,
                    in_flight: over.in_flight,
                    queued: over.queued,
                });
            }
            (FrameType::Error, payload) => {
                let fail = WireFailure::decode(&payload)?;
                return Err(ClientError::Server {
                    code: fail.code,
                    message: fail.message,
                });
            }
            (other, _) => {
                return Err(ClientError::Protocol {
                    detail: format!("expected a reply head, got a {other:?} frame"),
                })
            }
        };
        self.check_id(head.id, id)?;

        let mut pairs = Vec::with_capacity(head.pair_count.min(1 << 24) as usize);
        let mut seen_chunks = 0u32;
        loop {
            match self.read_frame_or_close()? {
                (FrameType::Chunk, payload) => {
                    let chunk = WireChunk::decode(&payload)?;
                    self.check_id(chunk.id, id)?;
                    if chunk.seq != seen_chunks {
                        return Err(ClientError::Protocol {
                            detail: format!(
                                "chunk arrived out of order: seq {} after {} chunks",
                                chunk.seq, seen_chunks
                            ),
                        });
                    }
                    seen_chunks += 1;
                    pairs.extend_from_slice(&chunk.pairs);
                }
                (FrameType::Done, payload) => {
                    let done = WireDone::decode(&payload)?;
                    self.check_id(done.id, id)?;
                    if done.chunks != seen_chunks || head.chunks != seen_chunks {
                        return Err(ClientError::Protocol {
                            detail: format!(
                                "chunk count mismatch: head promised {}, done says {}, \
                                 received {seen_chunks}",
                                head.chunks, done.chunks
                            ),
                        });
                    }
                    if pairs.len() as u64 != head.pair_count {
                        return Err(ClientError::Protocol {
                            detail: format!(
                                "pair count mismatch: head promised {}, received {}",
                                head.pair_count,
                                pairs.len()
                            ),
                        });
                    }
                    let trace = if expect_trace {
                        self.read_trace(id)?
                    } else {
                        None
                    };
                    return Ok(ClientOutcome {
                        matches: head.matches,
                        pairs,
                        trace,
                    });
                }
                (FrameType::Error, payload) => {
                    let fail = WireFailure::decode(&payload)?;
                    return Err(ClientError::Server {
                        code: fail.code,
                        message: fail.message,
                    });
                }
                (other, _) => {
                    return Err(ClientError::Protocol {
                        detail: format!("expected a chunk or done frame, got {other:?}"),
                    })
                }
            }
        }
    }

    /// Reads the `Trace` frame a traced request's reply ends with.
    fn read_trace(&mut self, id: u64) -> Result<Option<JoinTrace>, ClientError> {
        match self.read_frame_or_close()? {
            (FrameType::Trace, payload) => {
                let wire = WireTrace::decode(&payload)?;
                self.check_id(wire.id, id)?;
                Ok(Some(wire.trace))
            }
            (other, _) => Err(ClientError::Protocol {
                detail: format!("expected the trace frame of a traced reply, got {other:?}"),
            }),
        }
    }

    fn read_frame_or_close(&mut self) -> Result<(FrameType, Vec<u8>), ClientError> {
        match read_frame(&mut self.stream, self.max_payload)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Protocol {
                detail: "server closed the connection mid-reply".into(),
            }),
        }
    }

    fn check_id(&self, got: u64, expected: u64) -> Result<(), ClientError> {
        if got != expected {
            return Err(ClientError::Protocol {
                detail: format!("reply for request {got} while waiting on {expected}"),
            });
        }
        Ok(())
    }
}

/// A convenience builder for [`WireRequest`]s sent through [`JoinClient`].
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    request: WireRequest,
}

impl RequestBuilder {
    /// A request joining `build` against `probe` with the crate defaults
    /// (simple hash join, CPU only, count-only, no deadline).
    pub fn new(build: Relation, probe: Relation) -> Self {
        RequestBuilder {
            request: WireRequest {
                id: 0,
                algorithm: crate::message::WireAlgorithm::Shj,
                scheme: crate::message::WireScheme::CpuOnly,
                collect_pairs: false,
                priority: 0,
                trace: false,
                deadline_ms: 0,
                build,
                probe,
            },
        }
    }

    /// Sets the algorithm tag.
    pub fn algorithm(mut self, algorithm: crate::message::WireAlgorithm) -> Self {
        self.request.algorithm = algorithm;
        self
    }

    /// Sets the scheme tag.
    pub fn scheme(mut self, scheme: crate::message::WireScheme) -> Self {
        self.request.scheme = scheme;
        self
    }

    /// Requests the materialised pair set, streamed in chunks.
    pub fn collect_pairs(mut self, collect: bool) -> Self {
        self.request.collect_pairs = collect;
        self
    }

    /// Sets the scheduling priority.
    pub fn priority(mut self, priority: u8) -> Self {
        self.request.priority = priority;
        self
    }

    /// Sets the completion deadline in milliseconds (`0`: none).
    pub fn deadline_ms(mut self, ms: u32) -> Self {
        self.request.deadline_ms = ms;
        self
    }

    /// Asks the server for a per-join flight recorder, delivered on
    /// [`ClientOutcome::trace`].
    pub fn trace(mut self, trace: bool) -> Self {
        self.request.trace = trace;
        self
    }

    /// The finished request.
    pub fn build(self) -> WireRequest {
        self.request
    }
}

/// A convenience builder for [`WireRefRequest`]s sent through
/// [`JoinClient::join_ref`].
#[derive(Debug, Clone)]
pub struct RefRequestBuilder {
    request: WireRefRequest,
}

impl RefRequestBuilder {
    /// A request joining the registered table `table` against `probe` with
    /// the crate defaults (simple hash join, CPU only, count-only, no
    /// deadline).
    pub fn new(table: impl Into<String>, probe: Relation) -> Self {
        RefRequestBuilder {
            request: WireRefRequest {
                id: 0,
                algorithm: crate::message::WireAlgorithm::Shj,
                scheme: crate::message::WireScheme::CpuOnly,
                collect_pairs: false,
                priority: 0,
                trace: false,
                deadline_ms: 0,
                table: table.into(),
                probe,
            },
        }
    }

    /// Sets the algorithm tag.
    pub fn algorithm(mut self, algorithm: crate::message::WireAlgorithm) -> Self {
        self.request.algorithm = algorithm;
        self
    }

    /// Sets the scheme tag.
    pub fn scheme(mut self, scheme: crate::message::WireScheme) -> Self {
        self.request.scheme = scheme;
        self
    }

    /// Requests the materialised pair set, streamed in chunks.
    pub fn collect_pairs(mut self, collect: bool) -> Self {
        self.request.collect_pairs = collect;
        self
    }

    /// Sets the scheduling priority.
    pub fn priority(mut self, priority: u8) -> Self {
        self.request.priority = priority;
        self
    }

    /// Sets the completion deadline in milliseconds (`0`: none).
    pub fn deadline_ms(mut self, ms: u32) -> Self {
        self.request.deadline_ms = ms;
        self
    }

    /// Asks the server for a per-join flight recorder, delivered on
    /// [`ClientOutcome::trace`].
    pub fn trace(mut self, trace: bool) -> Self {
        self.request.trace = trace;
        self
    }

    /// The finished request.
    pub fn build(self) -> WireRefRequest {
        self.request
    }
}
