//! Deterministic generators for the paper's synthetic workloads.
//!
//! Section 5.1 of the paper: both relations are `<rid, key>` pairs of 4-byte
//! integers; the default is 16 M tuples per relation with uniform keys; the
//! skewed datasets duplicate `s` % of the tuples' key values (low-skew
//! `s = 10`, high-skew `s = 25`); and join selectivity is varied in
//! Figure 15 (12.5 %, 50 %, 100 %).

use crate::relation::Relation;
use crate::rng::SmallRng;

/// Key-value distribution of a generated relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every build key value is distinct (up to the random draws of the
    /// probe side); the paper's default.
    Uniform,
    /// A fraction of the tuples carries a key value duplicated from another
    /// tuple of the same relation ("s % of tuples with one duplicate key
    /// value").
    Skewed {
        /// The duplicated fraction `s` in `[0, 1]`.
        duplicate_fraction: f64,
    },
    /// Zipfian probe skew: build keys stay distinct, but matching probe
    /// tuples draw their key by Zipf *rank* over the build keys
    /// (`P(rank i) ∝ 1/i^exponent`), so a handful of build keys absorb a
    /// large share of all probes — far heavier skew than the paper's
    /// fraction-duplicate presets, and the shape an offline cost model
    /// calibrated on uniform data genuinely mispredicts (long rid-list
    /// walks and heavy SIMD divergence in `p3`/`p4`).
    Zipf {
        /// The Zipf exponent (≥ 0; 0 degenerates to uniform; ~1 is the
        /// classic heavy-tail web/workload shape).
        exponent: f64,
    },
}

impl KeyDistribution {
    /// The paper's low-skew dataset: `s = 10 %`.
    pub fn low_skew() -> Self {
        KeyDistribution::Skewed {
            duplicate_fraction: 0.10,
        }
    }

    /// The paper's high-skew dataset: `s = 25 %`.
    pub fn high_skew() -> Self {
        KeyDistribution::Skewed {
            duplicate_fraction: 0.25,
        }
    }

    /// Zipfian probe skew with the given exponent (clamped to ≥ 0).
    pub fn zipf(exponent: f64) -> Self {
        KeyDistribution::Zipf {
            exponent: if exponent.is_finite() {
                exponent.max(0.0)
            } else {
                1.0
            },
        }
    }

    /// The duplicated fraction (0 for uniform and Zipf — Zipf skews the
    /// *probe* draws, not the build keys).
    pub fn duplicate_fraction(&self) -> f64 {
        match self {
            KeyDistribution::Uniform | KeyDistribution::Zipf { .. } => 0.0,
            KeyDistribution::Skewed { duplicate_fraction } => *duplicate_fraction,
        }
    }

    /// A short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            KeyDistribution::Uniform => "uniform",
            KeyDistribution::Skewed { duplicate_fraction } => {
                if *duplicate_fraction <= 0.15 {
                    "low-skew"
                } else {
                    "high-skew"
                }
            }
            KeyDistribution::Zipf { .. } => "zipf",
        }
    }
}

/// Inverse-CDF sampler over Zipf ranks `0..n` (`P(i) ∝ 1/(i+1)^exponent`):
/// one O(n) cumulative-weight table, then O(log n) per draw — exact and
/// deterministic under [`SmallRng`].
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = self.cumulative.last().copied().unwrap_or(0.0);
        let u = rng.random_unit() * total;
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len().saturating_sub(1))
    }
}

/// Configuration of one generated build/probe relation pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DataGenConfig {
    /// Number of tuples in the build relation `R` (the smaller relation).
    pub build_tuples: usize,
    /// Number of tuples in the probe relation `S`.
    pub probe_tuples: usize,
    /// Key distribution applied to both relations.
    pub distribution: KeyDistribution,
    /// Fraction of probe tuples whose key matches some build key
    /// (1.0 = every probe tuple matches, the paper's default).
    pub selectivity: f64,
    /// RNG seed; the same configuration always generates the same data.
    pub seed: u64,
}

impl Default for DataGenConfig {
    /// The paper's default workload: 16 M ⨝ 16 M uniform tuples, selectivity
    /// 100 %.
    fn default() -> Self {
        DataGenConfig {
            build_tuples: 16 * 1024 * 1024,
            probe_tuples: 16 * 1024 * 1024,
            distribution: KeyDistribution::Uniform,
            selectivity: 1.0,
            seed: 42,
        }
    }
}

impl DataGenConfig {
    /// A small configuration convenient for tests and examples.
    pub fn small(build_tuples: usize, probe_tuples: usize) -> Self {
        DataGenConfig {
            build_tuples,
            probe_tuples,
            distribution: KeyDistribution::Uniform,
            selectivity: 1.0,
            seed: 42,
        }
    }

    /// Sets the key distribution.
    pub fn with_distribution(mut self, distribution: KeyDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Sets the join selectivity.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivity = selectivity.clamp(0.0, 1.0);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Offset added to keys that must *not* match any build key (used to dial in
/// selectivity below 100 %).
const NON_MATCHING_OFFSET: u32 = 1 << 30;

/// Generates a `(build, probe)` relation pair according to `cfg`.
///
/// Properties guaranteed by construction (and checked by the tests):
///
/// * build keys lie in `1..=build_tuples`, so every build key can be matched;
/// * a fraction `selectivity` of probe tuples draws its key uniformly from
///   the build keys, the rest draw from a disjoint range;
/// * under a skewed distribution, a fraction `s` of each relation's tuples
///   duplicates the key of another tuple of the same relation.
pub fn generate_pair(cfg: &DataGenConfig) -> (Relation, Relation) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let build = generate_build(cfg, &mut rng);
    let probe = generate_probe(cfg, build.keys(), &mut rng);
    (build, probe)
}

fn generate_build(cfg: &DataGenConfig, rng: &mut SmallRng) -> Relation {
    let n = cfg.build_tuples;
    let dup_fraction = cfg.distribution.duplicate_fraction();
    let duplicates = ((n as f64) * dup_fraction).round() as usize;
    let distinct = n - duplicates;

    // Distinct keys 1..=distinct, shuffled so bucket order is not correlated
    // with tuple order.
    let mut keys: Vec<u32> = (1..=distinct.max(1) as u32).collect();
    keys.truncate(distinct);
    rng.shuffle(&mut keys);

    // Duplicated tuples copy the key of a random already-generated tuple.
    for _ in 0..duplicates {
        let pick = if keys.is_empty() {
            1
        } else {
            keys[rng.random_index(keys.len())]
        };
        keys.push(pick);
    }
    rng.shuffle(&mut keys);
    Relation::from_keys(keys)
}

fn generate_probe(cfg: &DataGenConfig, build_keys: &[u32], rng: &mut SmallRng) -> Relation {
    let n = cfg.probe_tuples;
    let matching = ((n as f64) * cfg.selectivity).round() as usize;
    let zipf = match cfg.distribution {
        KeyDistribution::Zipf { exponent } if !build_keys.is_empty() => {
            Some(ZipfSampler::new(build_keys.len(), exponent))
        }
        _ => None,
    };
    let mut keys = Vec::with_capacity(n);
    for i in 0..n {
        if i < matching && !build_keys.is_empty() {
            let pick = match &zipf {
                // Zipf rank over the (shuffled) build keys: rank 0 is the
                // hottest key of the probe stream.
                Some(sampler) => sampler.sample(rng),
                None => rng.random_index(build_keys.len()),
            };
            keys.push(build_keys[pick]);
        } else {
            // Keys guaranteed not to collide with any build key.
            keys.push(NON_MATCHING_OFFSET + rng.random_u32_below(1 << 29));
        }
    }
    rng.shuffle(&mut keys);
    Relation::from_keys(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cfg(n: usize) -> DataGenConfig {
        DataGenConfig::small(n, n)
    }

    #[test]
    fn sizes_match_config() {
        let (r, s) = generate_pair(&DataGenConfig {
            build_tuples: 1000,
            probe_tuples: 2000,
            ..DataGenConfig::small(0, 0)
        });
        assert_eq!(r.len(), 1000);
        assert_eq!(s.len(), 2000);
    }

    #[test]
    fn uniform_build_keys_are_distinct() {
        let (r, _) = generate_pair(&cfg(10_000));
        let distinct: HashSet<_> = r.keys().iter().collect();
        assert_eq!(distinct.len(), r.len());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (r1, s1) = generate_pair(&cfg(5000));
        let (r2, s2) = generate_pair(&cfg(5000));
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        let (r3, _) = generate_pair(&cfg(5000).with_seed(7));
        assert_ne!(r1, r3);
    }

    #[test]
    fn skew_produces_expected_duplicate_fraction() {
        let n = 20_000;
        let (r, _) = generate_pair(&cfg(n).with_distribution(KeyDistribution::high_skew()));
        let distinct: HashSet<_> = r.keys().iter().collect();
        let dup_tuples = n - distinct.len();
        let frac = dup_tuples as f64 / n as f64;
        assert!(
            (frac - 0.25).abs() < 0.02,
            "expected ~25% duplicated tuples, got {frac:.3}"
        );
    }

    #[test]
    fn low_skew_has_fewer_duplicates_than_high_skew() {
        let n = 20_000;
        let count_distinct = |d: KeyDistribution| {
            let (r, _) = generate_pair(&cfg(n).with_distribution(d));
            r.keys().iter().collect::<HashSet<_>>().len()
        };
        assert!(
            count_distinct(KeyDistribution::low_skew())
                > count_distinct(KeyDistribution::high_skew())
        );
    }

    #[test]
    fn selectivity_controls_matching_fraction() {
        let n = 10_000;
        for sel in [0.125, 0.5, 1.0] {
            let (r, s) = generate_pair(&cfg(n).with_selectivity(sel));
            let build_keys: HashSet<_> = r.keys().iter().collect();
            let matching = s.keys().iter().filter(|k| build_keys.contains(k)).count();
            let frac = matching as f64 / n as f64;
            assert!(
                (frac - sel).abs() < 0.02,
                "selectivity {sel}: got matching fraction {frac:.3}"
            );
        }
    }

    #[test]
    fn zero_selectivity_produces_no_matches() {
        let (r, s) = generate_pair(&cfg(1000).with_selectivity(0.0));
        let build_keys: HashSet<_> = r.keys().iter().collect();
        assert!(s.keys().iter().all(|k| !build_keys.contains(k)));
    }

    #[test]
    fn distribution_labels() {
        assert_eq!(KeyDistribution::Uniform.label(), "uniform");
        assert_eq!(KeyDistribution::low_skew().label(), "low-skew");
        assert_eq!(KeyDistribution::high_skew().label(), "high-skew");
        assert_eq!(KeyDistribution::zipf(1.2).label(), "zipf");
        assert_eq!(KeyDistribution::Uniform.duplicate_fraction(), 0.0);
        assert_eq!(KeyDistribution::zipf(1.2).duplicate_fraction(), 0.0);
        // Degenerate exponents are tamed instead of poisoning the sampler.
        assert_eq!(
            KeyDistribution::zipf(-3.0),
            KeyDistribution::Zipf { exponent: 0.0 }
        );
        assert_eq!(
            KeyDistribution::zipf(f64::NAN),
            KeyDistribution::Zipf { exponent: 1.0 }
        );
    }

    /// Per-key probe frequencies sorted descending.
    fn probe_frequencies(r: &Relation, s: &Relation) -> Vec<usize> {
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let build: HashSet<_> = r.keys().iter().collect();
        for k in s.keys() {
            if build.contains(k) {
                *counts.entry(*k).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.into_values().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        freqs
    }

    #[test]
    fn zipf_probe_is_heavily_skewed_and_build_stays_distinct() {
        let n = 20_000;
        let cfg = cfg(n).with_distribution(KeyDistribution::zipf(1.2));
        let (r, s) = generate_pair(&cfg);
        // Build side: still one distinct key per tuple.
        let distinct: HashSet<_> = r.keys().iter().collect();
        assert_eq!(distinct.len(), r.len());
        // Probe side: the hottest key takes a double-digit share (a uniform
        // draw would give each key ~1/n = 0.005 %), and frequency decays
        // down the ranks.
        let freqs = probe_frequencies(&r, &s);
        let top_share = freqs[0] as f64 / n as f64;
        assert!(
            top_share > 0.10,
            "hottest key covers only {:.3} of the probe stream",
            top_share
        );
        assert!(freqs[0] > freqs[freqs.len() / 2] * 10);
        // Far fewer distinct keys are touched than under uniform draws.
        let (_, s_uniform) = generate_pair(&DataGenConfig::small(n, n));
        assert!(freqs.len() * 2 < probe_frequencies(&r, &s_uniform).len());
    }

    #[test]
    fn zipf_generation_is_deterministic_and_respects_selectivity() {
        let cfg = DataGenConfig::small(5000, 10_000)
            .with_distribution(KeyDistribution::zipf(1.0))
            .with_selectivity(0.5);
        let (r1, s1) = generate_pair(&cfg);
        let (r2, s2) = generate_pair(&cfg);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        let build: HashSet<_> = r1.keys().iter().collect();
        let matching = s1.keys().iter().filter(|k| build.contains(k)).count();
        let frac = matching as f64 / s1.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "matching fraction {frac:.3}");
        // A different exponent draws a different stream.
        let (_, s3) = generate_pair(&cfg.clone().with_distribution(KeyDistribution::zipf(0.5)));
        assert_ne!(s1, s3);
    }

    #[test]
    fn zipf_exponent_zero_degenerates_to_uniform_draws() {
        let n = 10_000;
        let (r, s) = generate_pair(&cfg(n).with_distribution(KeyDistribution::zipf(0.0)));
        let freqs = probe_frequencies(&r, &s);
        // No key should dominate: the hottest key of a uniform draw over
        // 10 K keys stays far below 1 %.
        assert!((freqs[0] as f64 / n as f64) < 0.01);
    }

    #[test]
    fn default_config_is_paper_default() {
        let d = DataGenConfig::default();
        assert_eq!(d.build_tuples, 16 * 1024 * 1024);
        assert_eq!(d.probe_tuples, 16 * 1024 * 1024);
        assert_eq!(d.selectivity, 1.0);
        assert_eq!(d.distribution, KeyDistribution::Uniform);
    }
}
