//! Summary statistics of generated relations.
//!
//! Experiments use these to sanity-check the generators (duplicate fraction,
//! key range) and to size hash tables and partitions (distinct-key
//! estimates, working-set bytes).

use crate::relation::{Relation, TUPLE_BYTES};
use std::collections::HashMap;

/// Summary statistics of one relation's key column.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Number of tuples.
    pub tuples: usize,
    /// Number of distinct key values.
    pub distinct_keys: usize,
    /// Largest number of tuples sharing one key value.
    pub max_duplicates: usize,
    /// Fraction of tuples whose key appears more than once.
    pub duplicate_fraction: f64,
    /// Smallest key value (0 when empty).
    pub min_key: u32,
    /// Largest key value (0 when empty).
    pub max_key: u32,
}

impl RelationStats {
    /// Computes statistics over a relation (O(n) with a hash map).
    pub fn of(relation: &Relation) -> Self {
        let mut counts: HashMap<u32, usize> = HashMap::with_capacity(relation.len());
        for &k in relation.keys() {
            *counts.entry(k).or_insert(0) += 1;
        }
        let distinct_keys = counts.len();
        let max_duplicates = counts.values().copied().max().unwrap_or(0);
        let duplicated_tuples: usize = counts.values().filter(|&&c| c > 1).sum();
        let duplicate_fraction = if relation.is_empty() {
            0.0
        } else {
            duplicated_tuples as f64 / relation.len() as f64
        };
        RelationStats {
            tuples: relation.len(),
            distinct_keys,
            max_duplicates,
            duplicate_fraction,
            min_key: relation.keys().iter().copied().min().unwrap_or(0),
            max_key: relation.keys().iter().copied().max().unwrap_or(0),
        }
    }

    /// The relation's footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.tuples * TUPLE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_relation() {
        let s = RelationStats::of(&Relation::new());
        assert_eq!(s.tuples, 0);
        assert_eq!(s.distinct_keys, 0);
        assert_eq!(s.duplicate_fraction, 0.0);
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn stats_count_duplicates() {
        let r = Relation::from_keys(vec![1, 2, 2, 3, 3, 3]);
        let s = RelationStats::of(&r);
        assert_eq!(s.tuples, 6);
        assert_eq!(s.distinct_keys, 3);
        assert_eq!(s.max_duplicates, 3);
        // 5 of 6 tuples share a key with another tuple.
        assert!((s.duplicate_fraction - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.min_key, 1);
        assert_eq!(s.max_key, 3);
        assert_eq!(s.bytes(), 48);
    }

    #[test]
    fn stats_all_distinct() {
        let r = Relation::from_keys((1..=100).collect());
        let s = RelationStats::of(&r);
        assert_eq!(s.distinct_keys, 100);
        assert_eq!(s.max_duplicates, 1);
        assert_eq!(s.duplicate_fraction, 0.0);
    }
}
