//! Named workload presets used across the experiment harness.
//!
//! Each paper experiment varies only one or two knobs of the default
//! workload (build size, skew, selectivity).  A [`Workload`] names the knobs
//! so experiment binaries and EXPERIMENTS.md rows line up one-to-one, and a
//! global `scale` divisor allows the whole suite to run quickly on modest
//! machines while preserving relative behaviour.

use crate::generator::{generate_pair, DataGenConfig, KeyDistribution};
use crate::relation::Relation;

/// Common workload presets from the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPreset {
    /// 16 M ⨝ 16 M, uniform keys, selectivity 100 % (the default of
    /// Section 5.1).
    PaperDefault,
    /// Low-skew dataset (s = 10 %).
    LowSkew,
    /// High-skew dataset (s = 25 %).
    HighSkew,
}

impl WorkloadPreset {
    /// Expands the preset into a full workload description at `scale = 1`.
    pub fn workload(self) -> Workload {
        match self {
            WorkloadPreset::PaperDefault => Workload::default(),
            WorkloadPreset::LowSkew => Workload {
                distribution: KeyDistribution::low_skew(),
                ..Workload::default()
            },
            WorkloadPreset::HighSkew => Workload {
                distribution: KeyDistribution::high_skew(),
                ..Workload::default()
            },
        }
    }
}

/// A fully-specified experiment workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Build relation cardinality at scale 1.
    pub build_tuples: usize,
    /// Probe relation cardinality at scale 1.
    pub probe_tuples: usize,
    /// Key distribution.
    pub distribution: KeyDistribution,
    /// Join selectivity.
    pub selectivity: f64,
    /// RNG seed.
    pub seed: u64,
    /// Divisor applied to both cardinalities; `scale = 1` is the paper's
    /// size, larger values shrink the workload proportionally.
    pub scale: usize,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            build_tuples: 16 * 1024 * 1024,
            probe_tuples: 16 * 1024 * 1024,
            distribution: KeyDistribution::Uniform,
            selectivity: 1.0,
            seed: 42,
            scale: 1,
        }
    }
}

impl Workload {
    /// Sets the scale divisor (clamped to at least 1).
    pub fn scaled(mut self, scale: usize) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// Sets the build cardinality (at scale 1).
    pub fn with_build_tuples(mut self, n: usize) -> Self {
        self.build_tuples = n;
        self
    }

    /// Sets the probe cardinality (at scale 1).
    pub fn with_probe_tuples(mut self, n: usize) -> Self {
        self.probe_tuples = n;
        self
    }

    /// Sets the selectivity.
    pub fn with_selectivity(mut self, s: f64) -> Self {
        self.selectivity = s;
        self
    }

    /// Sets the key distribution.
    pub fn with_distribution(mut self, d: KeyDistribution) -> Self {
        self.distribution = d;
        self
    }

    /// Effective build cardinality after scaling (at least 1).
    pub fn effective_build(&self) -> usize {
        (self.build_tuples / self.scale).max(1)
    }

    /// Effective probe cardinality after scaling (at least 1).
    pub fn effective_probe(&self) -> usize {
        (self.probe_tuples / self.scale).max(1)
    }

    /// The generator configuration for this workload.
    pub fn gen_config(&self) -> DataGenConfig {
        DataGenConfig {
            build_tuples: self.effective_build(),
            probe_tuples: self.effective_probe(),
            distribution: self.distribution,
            selectivity: self.selectivity,
            seed: self.seed,
        }
    }

    /// Generates the `(build, probe)` relation pair.
    pub fn generate(&self) -> (Relation, Relation) {
        generate_pair(&self.gen_config())
    }

    /// A one-line description used in experiment output.
    pub fn describe(&self) -> String {
        format!(
            "|R|={} |S|={} dist={} sel={:.1}% scale=1/{}",
            self.effective_build(),
            self.effective_probe(),
            self.distribution.label(),
            self.selectivity * 100.0,
            self.scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expand_to_expected_distributions() {
        assert_eq!(
            WorkloadPreset::PaperDefault.workload().distribution,
            KeyDistribution::Uniform
        );
        assert_eq!(
            WorkloadPreset::LowSkew
                .workload()
                .distribution
                .duplicate_fraction(),
            0.10
        );
        assert_eq!(
            WorkloadPreset::HighSkew
                .workload()
                .distribution
                .duplicate_fraction(),
            0.25
        );
    }

    #[test]
    fn scaling_divides_cardinalities() {
        let w = Workload::default().scaled(16);
        assert_eq!(w.effective_build(), 1024 * 1024);
        assert_eq!(w.effective_probe(), 1024 * 1024);
        // Scale never drops below one tuple.
        let tiny = Workload::default().with_build_tuples(2).scaled(100);
        assert_eq!(tiny.effective_build(), 1);
    }

    #[test]
    fn generate_respects_scaled_sizes() {
        let w = Workload::default()
            .with_build_tuples(4096)
            .with_probe_tuples(8192)
            .scaled(4);
        let (r, s) = w.generate();
        assert_eq!(r.len(), 1024);
        assert_eq!(s.len(), 2048);
    }

    #[test]
    fn describe_mentions_distribution() {
        let w = WorkloadPreset::HighSkew.workload().scaled(8);
        assert!(w.describe().contains("high-skew"));
        assert!(w.describe().contains("1/8"));
    }

    #[test]
    fn builder_methods_apply() {
        let w = Workload::default()
            .with_selectivity(0.5)
            .with_distribution(KeyDistribution::low_skew());
        assert_eq!(w.selectivity, 0.5);
        assert_eq!(w.distribution, KeyDistribution::low_skew());
        assert_eq!(w.gen_config().selectivity, 0.5);
    }
}
