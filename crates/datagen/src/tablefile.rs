//! File-backed tables: stream relations to and from disk in bounded
//! memory.
//!
//! The in-memory generators materialise whole relations, which defeats the
//! point when a test or benchmark wants a *build side larger than the
//! configured memory budget*.  This module writes `<key, rid>` tables to a
//! checksummed batch file and reads them back batch-wise, and it can
//! synthesise deterministic tables (seeded, reproducible batch-for-batch)
//! directly to disk without ever holding more than one batch in memory:
//!
//! * [`TableFileWriter`] / [`TableFileReader`] — the container: a small
//!   header (magic, version, tuple count) followed by frames of
//!   `[count][fnv1a-64 checksum][keys][rids]`, each independently
//!   verifiable;
//! * [`FileTableSpec`] + [`generate_build_table`] /
//!   [`generate_probe_table`] — streaming generators.  Build keys come
//!   from a seeded *bijective* mix of the tuple index (distinct by
//!   construction, like the in-memory generator's shuffled range);
//!   probe keys are drawn uniformly over a build spec's key universe with
//!   [`SmallRng`], so every probe tuple matches exactly one build key and
//!   the expected join cardinality is known without reading either file.

use crate::relation::Relation;
use crate::rng::SmallRng;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HJTB";
const VERSION: u32 = 1;
const HEADER_BYTES: u64 = 4 + 4 + 8;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice — the frame checksum shared by the table
/// files here and the spill run files of `hj-spill` (which depends on this
/// crate and imports this function).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Folds one frame's `(count, checksum)` header into a running FNV-1a
/// content fingerprint — the per-frame step of
/// [`table_file_fingerprint`] and [`TableFileWriter::fingerprint`].
fn fold_frame_fingerprint(fingerprint: u64, count: u32, checksum: u64) -> u64 {
    let mut bytes = [0u8; 12];
    bytes[..4].copy_from_slice(&count.to_le_bytes());
    bytes[4..].copy_from_slice(&checksum.to_le_bytes());
    let mut hash = fingerprint;
    for &b in &bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn invalid(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Encodes one `[count][fnv1a-64][keys][rids]` frame (the format shared by
/// table files and `hj-spill` run files); empty batches write nothing.
/// Returns the bytes appended.
///
/// # Errors
/// Propagates write failures.
///
/// # Panics
/// Panics if the columns have different lengths.
pub fn encode_frame<W: Write>(writer: &mut W, keys: &[u32], rids: &[u32]) -> io::Result<u64> {
    Ok(encode_frame_checksummed(writer, keys, rids)?.0)
}

/// Like [`encode_frame`], but also returns the frame's FNV-1a checksum so a
/// writer can fold it into an incremental content fingerprint without
/// hashing the payload twice.  Empty batches write nothing and return
/// `(0, 0)`.
///
/// # Errors
/// Propagates write failures.
///
/// # Panics
/// Panics if the columns have different lengths.
pub fn encode_frame_checksummed<W: Write>(
    writer: &mut W,
    keys: &[u32],
    rids: &[u32],
) -> io::Result<(u64, u64)> {
    assert_eq!(keys.len(), rids.len(), "column length mismatch");
    if keys.is_empty() {
        return Ok((0, 0));
    }
    let mut payload = Vec::with_capacity(keys.len() * 8);
    for &k in keys {
        payload.extend_from_slice(&k.to_le_bytes());
    }
    for &r in rids {
        payload.extend_from_slice(&r.to_le_bytes());
    }
    let checksum = fnv1a64(&payload);
    writer.write_all(&(keys.len() as u32).to_le_bytes())?;
    writer.write_all(&checksum.to_le_bytes())?;
    writer.write_all(&payload)?;
    Ok(((4 + 8 + payload.len()) as u64, checksum))
}

/// Decodes the next frame of the shared format, or `None` at a clean end
/// of stream.  `remaining` tracks the unconsumed file bytes: the untrusted
/// count is validated against it *before* sizing a buffer, so a corrupted
/// header surfaces as [`io::ErrorKind::InvalidData`] instead of a huge
/// allocation.
///
/// # Errors
/// Non-EOF read failures are propagated; truncation inside a frame and
/// checksum mismatches return [`io::ErrorKind::InvalidData`].
pub fn decode_frame<R: Read>(reader: &mut R, remaining: &mut u64) -> io::Result<Option<Relation>> {
    let mut count_buf = [0u8; 4];
    match reader.read_exact(&mut count_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    *remaining = remaining.saturating_sub(4);
    let count = u32::from_le_bytes(count_buf) as usize;
    let needed = 8 + count as u64 * 8;
    if needed > *remaining {
        return Err(invalid(format!(
            "frame claims {count} tuples ({needed} B) but only {remaining} B remain"
        )));
    }
    let mut checksum_buf = [0u8; 8];
    let mut payload = vec![0u8; count * 8];
    let read = (|| -> io::Result<()> {
        reader.read_exact(&mut checksum_buf)?;
        reader.read_exact(&mut payload)?;
        Ok(())
    })();
    if let Err(e) = read {
        return Err(invalid(format!("truncated frame of {count} tuples: {e}")));
    }
    let expected = u64::from_le_bytes(checksum_buf);
    let actual = fnv1a64(&payload);
    if actual != expected {
        return Err(invalid(format!(
            "checksum {actual:#x} != recorded {expected:#x}"
        )));
    }
    *remaining -= needed;
    let mut rel = Relation::with_capacity(count);
    for i in 0..count {
        let key = u32::from_le_bytes(payload[i * 4..i * 4 + 4].try_into().unwrap());
        let rid = u32::from_le_bytes(
            payload[(count + i) * 4..(count + i) * 4 + 4]
                .try_into()
                .unwrap(),
        );
        rel.push(rid, key);
    }
    Ok(Some(rel))
}

/// Writes a `<key, rid>` table file batch by batch.
#[derive(Debug)]
pub struct TableFileWriter {
    writer: BufWriter<File>,
    tuples: u64,
    fingerprint: u64,
}

impl TableFileWriter {
    /// Creates (truncating) a table file at `path`.
    ///
    /// # Errors
    /// Propagates file-creation and header-write failures.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        // Tuple count: patched by `finish`.
        writer.write_all(&0u64.to_le_bytes())?;
        Ok(TableFileWriter {
            writer,
            tuples: 0,
            fingerprint: FNV_OFFSET,
        })
    }

    /// Appends one batch; empty batches are skipped.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn append(&mut self, batch: &Relation) -> io::Result<()> {
        let (bytes, checksum) =
            encode_frame_checksummed(&mut self.writer, batch.keys(), batch.rids())?;
        if bytes > 0 {
            self.tuples += batch.len() as u64;
            self.fingerprint =
                fold_frame_fingerprint(self.fingerprint, batch.len() as u32, checksum);
        }
        Ok(())
    }

    /// The content fingerprint of everything appended so far — an FNV-1a
    /// fold over the per-frame `(count, checksum)` headers, free to
    /// maintain because each frame is checksummed anyway.
    ///
    /// Matches [`table_file_fingerprint`] of the finished file, so a
    /// file-backed table can be cache-keyed (e.g. named for
    /// `JoinEngine::register_table`) without ever rescanning its payload.
    /// The fingerprint covers content *as framed*: the same tuples written
    /// with different batch boundaries fingerprint differently, which is
    /// exactly the per-file stability cache keying needs (a regenerated
    /// equal spec produces byte-identical files, hence equal fingerprints).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Patches the header's tuple count, flushes, and returns the total
    /// tuples written.
    ///
    /// # Errors
    /// Propagates flush and seek failures.
    pub fn finish(mut self) -> io::Result<u64> {
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.seek(SeekFrom::Start(8))?;
        file.write_all(&self.tuples.to_le_bytes())?;
        file.flush()?;
        Ok(self.tuples)
    }
}

/// Reads a table file back, one checksum-verified batch at a time.
#[derive(Debug)]
pub struct TableFileReader {
    reader: BufReader<File>,
    tuples: u64,
    read: u64,
    batch_index: usize,
    /// File bytes not yet consumed — bounds what a batch header may claim,
    /// so a corrupted count cannot drive a huge allocation before the
    /// checksum even runs.
    remaining: u64,
}

impl TableFileReader {
    /// Opens `path`, validating magic and version.
    ///
    /// # Errors
    /// I/O failures, or [`io::ErrorKind::InvalidData`] for a foreign or
    /// newer-versioned file.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let remaining = file.metadata()?.len().saturating_sub(HEADER_BYTES);
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid(format!("not a table file (magic {magic:02x?})")));
        }
        let mut version = [0u8; 4];
        reader.read_exact(&mut version)?;
        let version = u32::from_le_bytes(version);
        if version != VERSION {
            return Err(invalid(format!(
                "table file version {version} (this reader understands {VERSION})"
            )));
        }
        let mut tuples = [0u8; 8];
        reader.read_exact(&mut tuples)?;
        Ok(TableFileReader {
            reader,
            tuples: u64::from_le_bytes(tuples),
            read: 0,
            batch_index: 0,
            remaining,
        })
    }

    /// Total tuples the file's header declares.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Reads the next batch, or `None` at the end of the table.
    ///
    /// # Errors
    /// I/O failures, or [`io::ErrorKind::InvalidData`] on checksum
    /// mismatch, truncation, or a header count that disagrees with the
    /// frames.
    pub fn next_batch(&mut self) -> io::Result<Option<Relation>> {
        match decode_frame(&mut self.reader, &mut self.remaining) {
            Ok(Some(batch)) => {
                self.read += batch.len() as u64;
                self.batch_index += 1;
                Ok(Some(batch))
            }
            Ok(None) => {
                if self.read != self.tuples {
                    return Err(invalid(format!(
                        "table file ended after {} of {} declared tuples",
                        self.read, self.tuples
                    )));
                }
                Ok(None)
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                Err(invalid(format!("batch {}: {e}", self.batch_index)))
            }
            Err(e) => Err(e),
        }
    }

    /// Reads the remaining batches into one relation (for tables known to
    /// fit memory — tests and verification, not the streaming paths).
    ///
    /// # Errors
    /// Those of [`next_batch`](Self::next_batch).
    pub fn read_all(&mut self) -> io::Result<Relation> {
        let mut rel = Relation::with_capacity((self.tuples - self.read) as usize);
        while let Some(batch) = self.next_batch()? {
            rel.extend_from(&batch);
        }
        Ok(rel)
    }
}

/// The content fingerprint of a table file **without reading its
/// payloads**: only the 12-byte `(count, checksum)` frame headers are read
/// and folded (the same FNV-1a fold as [`TableFileWriter::fingerprint`]);
/// the tuple data itself is seeked over.  Cost is a handful of bytes per
/// frame, independent of table size.
///
/// The fingerprint is stable per file and changes with any re-write of the
/// content or framing, which makes it a sound cache key for file-backed
/// tables (pair it with the file name for
/// `JoinEngine::register_table`-style registration).  It does **not**
/// verify payload integrity — [`TableFileReader`] checks checksums as
/// batches are actually read.
///
/// # Errors
/// I/O failures, [`io::ErrorKind::InvalidData`] for a foreign or
/// newer-versioned file, or a frame header claiming more bytes than the
/// file holds.
pub fn table_file_fingerprint(path: &Path) -> io::Result<u64> {
    let file = File::open(path)?;
    let mut remaining = file.metadata()?.len().saturating_sub(HEADER_BYTES);
    let mut reader = BufReader::new(file);
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid(format!("not a table file (magic {magic:02x?})")));
    }
    let mut version = [0u8; 4];
    reader.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(invalid(format!(
            "table file version {version} (this reader understands {VERSION})"
        )));
    }
    let mut tuples = [0u8; 8];
    reader.read_exact(&mut tuples)?;
    let mut fingerprint = FNV_OFFSET;
    loop {
        let mut count_buf = [0u8; 4];
        match reader.read_exact(&mut count_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        remaining = remaining.saturating_sub(4);
        let count = u32::from_le_bytes(count_buf);
        let needed = 8 + count as u64 * 8;
        if needed > remaining {
            return Err(invalid(format!(
                "frame claims {count} tuples ({needed} B) but only {remaining} B remain"
            )));
        }
        let mut checksum_buf = [0u8; 8];
        reader
            .read_exact(&mut checksum_buf)
            .map_err(|e| invalid(format!("truncated frame header of {count} tuples: {e}")))?;
        fingerprint = fold_frame_fingerprint(fingerprint, count, u64::from_le_bytes(checksum_buf));
        // Seek over the payload: it is neither read nor hashed.
        reader.seek(SeekFrom::Current(count as i64 * 8))?;
        remaining -= needed;
    }
    Ok(fingerprint)
}

/// A deterministic file-backed table: everything needed to regenerate it
/// (or reason about its key universe) without reading it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileTableSpec {
    /// Tuples in the table.
    pub tuples: u64,
    /// Seed for the key stream; equal specs produce byte-identical files.
    pub seed: u64,
    /// Tuples per written batch (the memory high-water mark of generation
    /// and of batch-wise readers).
    pub batch_tuples: usize,
}

impl FileTableSpec {
    /// A spec with the default 64 Ki-tuple batches.
    pub fn new(tuples: u64, seed: u64) -> Self {
        FileTableSpec {
            tuples,
            seed,
            batch_tuples: 64 * 1024,
        }
    }

    /// Overrides the batch size (floored at one tuple).
    pub fn batch_tuples(mut self, batch_tuples: usize) -> Self {
        self.batch_tuples = batch_tuples.max(1);
        self
    }

    /// The `index`-th build key of this spec's key universe.
    ///
    /// A seeded bijective mix of the index (xorshift-multiply rounds, each
    /// invertible), so distinct indices give distinct keys — the streaming
    /// equivalent of the in-memory generator's shuffled dense range.
    pub fn build_key(&self, index: u64) -> u32 {
        let mut x =
            (index as u32) ^ (self.seed as u32) ^ ((self.seed >> 32) as u32).rotate_left(16);
        x ^= x >> 16;
        x = x.wrapping_mul(0x7feb_352d);
        x ^= x >> 15;
        x = x.wrapping_mul(0x846c_a68b);
        x ^= x >> 16;
        x
    }
}

/// Streams a build-side table to `path`: `spec.tuples` tuples with dense
/// rids and distinct [`FileTableSpec::build_key`] keys, never holding more
/// than one batch in memory.
///
/// # Errors
/// Propagates writer I/O failures.
pub fn generate_build_table(path: &Path, spec: &FileTableSpec) -> io::Result<u64> {
    let mut writer = TableFileWriter::create(path)?;
    let mut batch = Relation::with_capacity(spec.batch_tuples);
    for i in 0..spec.tuples {
        batch.push(i as u32, spec.build_key(i));
        if batch.len() == spec.batch_tuples {
            writer.append(&batch)?;
            batch = Relation::with_capacity(spec.batch_tuples);
        }
    }
    writer.append(&batch)?;
    writer.finish()
}

/// Streams a probe-side table to `path`: `spec.tuples` tuples whose keys
/// are drawn uniformly (seeded by `spec.seed`) from `build`'s key
/// universe, so every probe tuple matches exactly one build tuple and the
/// expected join cardinality equals `spec.tuples`.
///
/// # Errors
/// Propagates writer I/O failures.
pub fn generate_probe_table(
    path: &Path,
    spec: &FileTableSpec,
    build: &FileTableSpec,
) -> io::Result<u64> {
    assert!(
        build.tuples > 0,
        "probe table needs a non-empty build universe"
    );
    let mut writer = TableFileWriter::create(path)?;
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut batch = Relation::with_capacity(spec.batch_tuples);
    for i in 0..spec.tuples {
        let rank = rng.random_index(build.tuples.min(u32::MAX as u64 + 1) as usize) as u64;
        batch.push(i as u32, build.build_key(rank));
        if batch.len() == spec.batch_tuples {
            writer.append(&batch)?;
            batch = Relation::with_capacity(spec.batch_tuples);
        }
    }
    writer.append(&batch)?;
    writer.finish()
}

/// Sanity check used by tests: header size is what the writer assumes.
#[allow(dead_code)]
const _: () = assert!(HEADER_BYTES == 16);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hj-tablefile-{}-{name}", std::process::id()))
    }

    #[test]
    fn write_read_round_trip() {
        let path = temp_path("roundtrip");
        let rel = Relation::from_columns((0..1000).collect(), (5000..6000).collect());
        let mut w = TableFileWriter::create(&path).unwrap();
        w.append(&rel.slice(0..400)).unwrap();
        w.append(&rel.slice(400..1000)).unwrap();
        assert_eq!(w.finish().unwrap(), 1000);

        let mut r = TableFileReader::open(&path).unwrap();
        assert_eq!(r.tuples(), 1000);
        assert_eq!(r.read_all().unwrap(), rel);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generated_build_tables_are_deterministic_with_distinct_keys() {
        let spec = FileTableSpec::new(10_000, 42).batch_tuples(777);
        let p1 = temp_path("build-a");
        let p2 = temp_path("build-b");
        generate_build_table(&p1, &spec).unwrap();
        generate_build_table(&p2, &spec).unwrap();
        assert_eq!(
            std::fs::read(&p1).unwrap(),
            std::fs::read(&p2).unwrap(),
            "equal specs must produce byte-identical files"
        );
        let rel = TableFileReader::open(&p1).unwrap().read_all().unwrap();
        assert_eq!(rel.len(), 10_000);
        let distinct: HashSet<u32> = rel.keys().iter().copied().collect();
        assert_eq!(distinct.len(), 10_000, "build keys must be distinct");
        // A different seed produces a different key universe.
        let other = FileTableSpec::new(10_000, 43);
        generate_build_table(&p2, &other).unwrap();
        assert_ne!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn probe_keys_come_from_the_build_universe() {
        let build = FileTableSpec::new(512, 7);
        let probe = FileTableSpec::new(2_048, 8).batch_tuples(100);
        let bp = temp_path("probe-build");
        let pp = temp_path("probe-probe");
        generate_build_table(&bp, &build).unwrap();
        generate_probe_table(&pp, &probe, &build).unwrap();
        let build_rel = TableFileReader::open(&bp).unwrap().read_all().unwrap();
        let universe: HashSet<u32> = build_rel.keys().iter().copied().collect();
        let mut reader = TableFileReader::open(&pp).unwrap();
        let mut seen = 0u64;
        while let Some(batch) = reader.next_batch().unwrap() {
            assert!(batch.len() <= 100, "batches bound reader memory");
            for &k in batch.keys() {
                assert!(universe.contains(&k));
            }
            seen += batch.len() as u64;
        }
        assert_eq!(seen, 2_048);
        std::fs::remove_file(&bp).unwrap();
        std::fs::remove_file(&pp).unwrap();
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let path = temp_path("corrupt");
        let spec = FileTableSpec::new(100, 1).batch_tuples(32);
        generate_build_table(&path, &spec).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = TableFileReader::open(&path).unwrap();
        let err = loop {
            match r.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corruption must not read cleanly"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let clean = {
            bytes[last] ^= 0x01;
            bytes
        };
        std::fs::write(&path, &clean[..clean.len() - 40]).unwrap();
        let mut r = TableFileReader::open(&path).unwrap();
        let mut failed = false;
        loop {
            match r.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "truncation must surface as an error");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_matches_writer_without_reading_payloads() {
        let path = temp_path("fingerprint");
        let rel = Relation::from_columns((0..1000).collect(), (5000..6000).collect());
        let mut w = TableFileWriter::create(&path).unwrap();
        w.append(&rel.slice(0..400)).unwrap();
        w.append(&Relation::new()).unwrap(); // skipped: must not perturb
        w.append(&rel.slice(400..1000)).unwrap();
        let written = w.fingerprint();
        w.finish().unwrap();
        assert_eq!(table_file_fingerprint(&path).unwrap(), written);

        // Same content, different framing: a different fingerprint (the
        // fingerprint is per-file, not per-logical-relation).
        let other = temp_path("fingerprint-reframed");
        let mut w = TableFileWriter::create(&other).unwrap();
        w.append(&rel).unwrap();
        w.finish().unwrap();
        assert_ne!(table_file_fingerprint(&other).unwrap(), written);

        // Equal specs produce byte-identical files, hence equal
        // fingerprints — the regeneration-stable cache key.
        let spec = FileTableSpec::new(5_000, 9).batch_tuples(512);
        generate_build_table(&path, &spec).unwrap();
        generate_build_table(&other, &spec).unwrap();
        assert_eq!(
            table_file_fingerprint(&path).unwrap(),
            table_file_fingerprint(&other).unwrap()
        );
        // Content changes surface through the folded frame checksums.
        generate_build_table(&other, &FileTableSpec::new(5_000, 10).batch_tuples(512)).unwrap();
        assert_ne!(
            table_file_fingerprint(&path).unwrap(),
            table_file_fingerprint(&other).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&other).unwrap();
    }

    #[test]
    fn fingerprint_validates_headers() {
        let path = temp_path("fingerprint-foreign");
        std::fs::write(&path, b"definitely not a table").unwrap();
        let err = table_file_fingerprint(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A frame header claiming more than the file holds is rejected.
        let spec = FileTableSpec::new(64, 3).batch_tuples(64);
        generate_build_table(&path, &spec).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_BYTES as usize] = 0xff; // inflate the first frame count
        bytes[HEADER_BYTES as usize + 1] = 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = table_file_fingerprint(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_files_are_rejected() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a table").unwrap();
        let err = TableFileReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
