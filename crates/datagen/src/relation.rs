//! The relation container: a column-oriented table of `<rid, key>` pairs.
//!
//! Both input relations of the paper consist of two four-byte integer
//! attributes: the record ID and the key value.  They can be understood as
//! base relations of a column store, or as the `<key, rid>` extracts a
//! row store would feed into a join (Section 5.1).

/// Size of one `<rid, key>` tuple in bytes (two 4-byte integers).
pub const TUPLE_BYTES: usize = 8;

/// A column-oriented relation of `<rid, key>` tuples.
///
/// Keys and record IDs are stored as parallel `Vec<u32>` columns so that
/// per-step kernels can stream over exactly the attribute they need, as an
/// OpenCL kernel over a zero-copy buffer would.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    keys: Vec<u32>,
    rids: Vec<u32>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// Creates an empty relation with capacity for `n` tuples.
    pub fn with_capacity(n: usize) -> Self {
        Relation {
            keys: Vec::with_capacity(n),
            rids: Vec::with_capacity(n),
        }
    }

    /// Builds a relation from a key column; record IDs are assigned densely
    /// from 0.
    pub fn from_keys(keys: Vec<u32>) -> Self {
        let rids = (0..keys.len() as u32).collect();
        Relation { keys, rids }
    }

    /// Builds a relation from explicit columns.
    ///
    /// # Panics
    /// Panics if the columns have different lengths.
    pub fn from_columns(rids: Vec<u32>, keys: Vec<u32>) -> Self {
        assert_eq!(rids.len(), keys.len(), "column length mismatch");
        Relation { keys, rids }
    }

    /// Appends one tuple.
    #[inline]
    pub fn push(&mut self, rid: u32, key: u32) {
        self.rids.push(rid);
        self.keys.push(key);
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key column.
    #[inline]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// The record-ID column.
    #[inline]
    pub fn rids(&self) -> &[u32] {
        &self.rids
    }

    /// The key of tuple `i`.
    #[inline]
    pub fn key(&self, i: usize) -> u32 {
        self.keys[i]
    }

    /// The record ID of tuple `i`.
    #[inline]
    pub fn rid(&self, i: usize) -> u32 {
        self.rids[i]
    }

    /// Total size of the relation in bytes (what it occupies in the
    /// zero-copy buffer).
    pub fn bytes(&self) -> usize {
        self.len() * TUPLE_BYTES
    }

    /// Iterates over `(rid, key)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.rids.iter().copied().zip(self.keys.iter().copied())
    }

    /// Returns a new relation containing the tuples at `range`.
    ///
    /// Used by the out-of-core join to carve chunks that fit the zero-copy
    /// buffer, and by schemes that split the input between devices.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Relation {
        Relation {
            keys: self.keys[range.clone()].to_vec(),
            rids: self.rids[range].to_vec(),
        }
    }

    /// Concatenates another relation onto this one.
    pub fn extend_from(&mut self, other: &Relation) {
        self.keys.extend_from_slice(&other.keys);
        self.rids.extend_from_slice(&other.rids);
    }
}

impl FromIterator<(u32, u32)> for Relation {
    fn from_iter<T: IntoIterator<Item = (u32, u32)>>(iter: T) -> Self {
        let mut rel = Relation::new();
        for (rid, key) in iter {
            rel.push(rid, key);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut r = Relation::with_capacity(2);
        r.push(0, 42);
        r.push(1, 7);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.key(0), 42);
        assert_eq!(r.rid(1), 1);
        assert_eq!(r.bytes(), 16);
        assert_eq!(r.keys(), &[42, 7]);
        assert_eq!(r.rids(), &[0, 1]);
    }

    #[test]
    fn from_keys_assigns_dense_rids() {
        let r = Relation::from_keys(vec![5, 6, 7]);
        assert_eq!(r.rids(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn from_columns_rejects_mismatched_lengths() {
        let _ = Relation::from_columns(vec![0], vec![1, 2]);
    }

    #[test]
    fn slice_and_extend_round_trip() {
        let r = Relation::from_keys((0..100).collect());
        let mut left = r.slice(0..40);
        let right = r.slice(40..100);
        left.extend_from(&right);
        assert_eq!(left, r);
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let r = Relation::from_columns(vec![10, 11], vec![1, 2]);
        let pairs: Vec<_> = r.iter().collect();
        assert_eq!(pairs, vec![(10, 1), (11, 2)]);
    }

    #[test]
    fn from_iterator_collects() {
        let r: Relation = vec![(3u32, 30u32), (4, 40)].into_iter().collect();
        assert_eq!(r.len(), 2);
        assert_eq!(r.key(1), 40);
    }
}
