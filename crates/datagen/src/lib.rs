//! # datagen — synthetic relations for hash-join experiments
//!
//! The paper evaluates on synthetic relations of `<record-id, key>` pairs
//! (two four-byte integer attributes, Section 5.1), following Blanas et al.:
//!
//! * the default pair is 16 M build tuples joined with 16 M probe tuples with
//!   uniformly distributed keys;
//! * skewed datasets duplicate a fraction *s* of the key values
//!   (low-skew *s* = 10 %, high-skew *s* = 25 %);
//! * join selectivity (the fraction of probe tuples that find a match) is
//!   varied between 12.5 % and 100 % in Figure 15.
//!
//! This crate reproduces those generators deterministically (seeded), plus
//! the relation container and summary statistics the experiments report.

#![warn(missing_docs)]

pub mod generator;
pub mod relation;
pub mod rng;
pub mod stats;
pub mod tablefile;
pub mod workload;

pub use generator::{generate_pair, DataGenConfig, KeyDistribution};
pub use relation::{Relation, TUPLE_BYTES};
pub use rng::SmallRng;
pub use stats::RelationStats;
pub use tablefile::{
    generate_build_table, generate_probe_table, table_file_fingerprint, FileTableSpec,
    TableFileReader, TableFileWriter,
};
pub use workload::{Workload, WorkloadPreset};
