//! A small, dependency-free pseudo-random number generator.
//!
//! The experiments only need *deterministic, seedable, well-mixed* draws —
//! not cryptographic quality — so this is a plain xorshift64* generator
//! seeded through SplitMix64 (the standard recipe for turning an arbitrary
//! 64-bit seed into a full-period initial state).  It replaces the external
//! `rand` crate so the workspace builds with no third-party dependencies.

/// A seedable xorshift64* generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed; equal seeds yield equal
    /// streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 scrambles the seed so that small or zero seeds still
        // produce a well-mixed non-zero initial state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SmallRng { state: z | 1 }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform index in `0..bound`; `bound` must be non-zero.
    pub fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index requires a non-zero bound");
        // Multiply-shift bounded draw (Lemire); the bias for 64-bit bounds is
        // negligible at experiment scale.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A uniform `u32` in `0..bound`; `bound` must be non-zero.
    pub fn random_u32_below(&mut self, bound: u32) -> u32 {
        self.random_index(bound as usize) as u32
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn random_unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn bounded_draws_stay_in_range_and_cover_it() {
        let mut r = SmallRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.random_index(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn unit_draws_are_distributed_over_the_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let v = r.random_unit();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }
}
