//! The join execution skeleton: turns a [`JoinConfig`] into a
//! [`JoinOutcome`] on a caller-provided [`ExecContext`].
//!
//! This is where the co-processing schemes, the hash-table mode, the
//! discrete-architecture transfer/merge accounting and the two algorithms
//! (SHJ / PHJ) come together, mirroring Section 3 of the paper.  The
//! functions here are *fallible* and allocate only from the context's
//! arena, so a long-lived [`JoinEngine`] can run
//! many requests over one reusable arena and reject, rather than crash on,
//! a request that outgrows it.
//!
//! The deprecated free function [`run_join`] remains as a thin shim that
//! spins up a single-use engine.

use crate::build::{run_build_phase, BuildTarget};
use crate::coarse::run_coarse_pair_joins;
use crate::config::{Algorithm, HashTableMode, JoinConfig, Scheme, StepGranularity};
use crate::context::ExecContext;
use crate::engine::{EngineConfig, JoinEngine, JoinRequest};
use crate::error::JoinError;
use crate::hashtable::HashTable;
use crate::partition::{default_radix_bits, run_partition_pass};
use crate::phase::PhaseExecution;
use crate::probe::run_probe_phase;
use crate::result::{BasicUnitRatios, JoinOutcome};
use crate::schedule::Ratios;
use crate::scheme::{basic_unit, RatioPlan};
use crate::steps::instr;
use apu_sim::{DeviceKind, Phase, SimTime, SystemSpec};
use datagen::Relation;

/// Runs one hash join of `build ⨝ probe` as configured by `cfg`, using the
/// devices and arena of `ctx`.
///
/// The relations are processed for real (the outcome's match count can be
/// checked against [`crate::result::reference_match_count`]); elapsed times
/// are simulated by the device model of `apu-sim`.  Run-wide counters
/// accumulate into `ctx.counters`; the engine copies them into the outcome
/// after finalisation.
///
/// # Errors
/// Returns [`JoinError::ArenaExhausted`] when the context's arena cannot
/// hold the join's working state.
pub fn execute_join(
    ctx: &mut ExecContext<'_>,
    build: &Relation,
    probe: &Relation,
    cfg: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    let mut outcome = JoinOutcome::default();

    match (&cfg.scheme, cfg.algorithm) {
        (Scheme::BasicUnit { chunk_tuples }, _) => {
            run_basic_unit(ctx, build, probe, cfg, *chunk_tuples, &mut outcome)?;
        }
        (_, Algorithm::Simple) => {
            let plan = ratio_plan(cfg)?;
            join_pair(ctx, build, probe, cfg, &plan, &mut outcome, true)?;
        }
        (_, Algorithm::Partitioned { .. }) => {
            let plan = ratio_plan(cfg)?;
            run_partitioned(ctx, build, probe, cfg, &plan, &mut outcome)?;
        }
    }

    Ok(outcome)
}

/// The per-phase ratio plan of a ratio-based scheme, or a typed
/// [`JoinError::InvalidScheme`] rejection when the scheme has none — a bad
/// scheme/algorithm combination is a rejected request, not a crash.
fn ratio_plan(cfg: &JoinConfig) -> Result<RatioPlan, JoinError> {
    RatioPlan::from_scheme(&cfg.scheme).ok_or(JoinError::InvalidScheme {
        scheme: cfg.scheme.label(),
        algorithm: cfg.algorithm.label(),
    })
}

/// Runs one hash join of `build ⨝ probe` on `sys` as configured by `cfg`.
///
/// # Deprecated
/// This one-shot entry point allocates a fresh arena and context per call
/// and panics on failure.  Construct a [`JoinEngine`] once and execute
/// [`JoinRequest`]s against it instead:
///
/// ```
/// use hj_core::engine::{EngineConfig, JoinEngine, JoinRequest};
/// use hj_core::Scheme;
///
/// # let (build, probe) = datagen::generate_pair(&datagen::DataGenConfig::small(512, 1024));
/// let mut engine = JoinEngine::coupled(EngineConfig::for_tuples(8_192, 16_384)).unwrap();
/// let request = JoinRequest::builder().scheme(Scheme::pipelined_paper()).build().unwrap();
/// let outcome = engine.execute(&request, &build, &probe).unwrap();
/// ```
///
/// # Panics
/// Panics when the join fails (e.g. on arena exhaustion); the engine path
/// returns those failures as [`JoinError`] values.
#[deprecated(
    since = "0.2.0",
    note = "construct a JoinEngine once and execute JoinRequests against it; \
            see the migration note in the hj_core crate docs"
)]
pub fn run_join(
    sys: &SystemSpec,
    build: &Relation,
    probe: &Relation,
    cfg: &JoinConfig,
) -> JoinOutcome {
    let request = JoinRequest::from_config(cfg.clone()).expect("invalid join configuration");
    let config = EngineConfig::for_tuples(build.len(), probe.len()).with_allocator(cfg.allocator);
    let mut engine =
        JoinEngine::for_system(sys.clone(), config).expect("engine construction failed");
    engine
        .execute(&request, build, probe)
        .expect("join execution failed")
}

/// Whether this run must keep per-device hash tables.
fn use_separate_tables(sys: &SystemSpec, cfg: &JoinConfig, plan: &RatioPlan) -> bool {
    if cfg.hash_table == HashTableMode::Separate {
        return true;
    }
    // A hash table cannot be shared across the PCI-e bus: when both devices
    // build on the discrete topology, separate tables (and a merge) are
    // forced, as in the paper's discrete baseline.
    let share = plan.build_cpu_share();
    sys.is_discrete() && share > 0.0 && share < 1.0
}

fn add_transfer(ctx: &mut ExecContext<'_>, outcome: &mut JoinOutcome, bytes: u64) {
    if bytes == 0 || !ctx.sys.is_discrete() {
        return;
    }
    let t = ctx.sys.transfer_time(bytes);
    outcome.breakdown.add(Phase::DataTransfer, t);
    ctx.counters.pcie_bytes += bytes;
    ctx.counters.pcie_transfers += 1;
}

fn record_phase(ctx: &mut ExecContext<'_>, outcome: &mut JoinOutcome, phase: PhaseExecution) {
    outcome.breakdown.add(phase.phase, phase.elapsed());
    ctx.counters.intermediate_tuples += phase.intermediate_tuples;
    outcome.phases.push(phase);
}

/// Merges `src` into `dst`, charging the merge to the CPU (the paper's merge
/// step after a data-dividing build with separate hash tables).
fn merge_tables(
    ctx: &mut ExecContext<'_>,
    outcome: &mut JoinOutcome,
    dst: &mut HashTable,
    src: &HashTable,
) -> Result<(), JoinError> {
    if src.tuple_count() == 0 {
        return Ok(());
    }
    let before = ctx.alloc_snapshot();
    let Ok(stats) = dst.merge_from(src, ctx.allocator.as_mut(), 0) else {
        return Err(ctx.arena_error("merge", crate::hashtable::KEY_NODE_BYTES));
    };
    let delta = ctx.alloc_snapshot().delta_since(&before);
    let mut rec = ctx.recorder_for(DeviceKind::Cpu);
    for _ in 0..stats.rids_moved {
        rec.item(instr::MERGE_PER_TUPLE);
        rec.random_read(2.0);
        rec.random_write(2.0);
    }
    rec.serial_atomic(delta.global_atomics as f64);
    rec.local_atomic(delta.local_atomics as f64);
    let cost = rec.finish();
    let mem = ctx.mem_ctx(DeviceKind::Cpu, dst.total_bytes() as f64);
    let kt = ctx.device(DeviceKind::Cpu).kernel_time(&cost, &mem);
    ctx.counters.lock_overhead += kt.atomic;
    outcome.breakdown.add(Phase::Merge, kt.total());
    Ok(())
}

/// Builds and probes one `(build, probe)` relation pair.
///
/// `top_level_io` controls whether discrete-topology input/result transfers
/// are charged here (true for SHJ on whole relations; false for the per-pair
/// joins of PHJ, whose inputs were already shipped for partitioning).
#[allow(clippy::too_many_arguments)]
fn join_pair(
    ctx: &mut ExecContext<'_>,
    build_rel: &Relation,
    probe_rel: &Relation,
    cfg: &JoinConfig,
    plan: &RatioPlan,
    outcome: &mut JoinOutcome,
    top_level_io: bool,
) -> Result<(), JoinError> {
    let n_r = build_rel.len();
    let separate = use_separate_tables(ctx.sys, cfg, plan);

    if top_level_io {
        let gpu_share = 1.0 - plan.build_cpu_share();
        add_transfer(ctx, outcome, (gpu_share * (n_r * 8) as f64) as u64);
    }

    // ---- build phase ----
    let table = if separate {
        // Tuples must stay on one device for the whole phase: collapse any
        // pipelined ratios to their average (data dividing).
        let build_ratios = if plan.build.is_uniform() {
            plan.build.clone()
        } else {
            Ratios::uniform(plan.build_cpu_share(), 4)
        };
        let mut cpu_t = HashTable::for_build_size(n_r);
        let mut gpu_t = HashTable::for_build_size(n_r).with_base_addr(0x8000_0000);
        let phase = run_build_phase(
            ctx,
            build_rel,
            BuildTarget::Separate {
                cpu: &mut cpu_t,
                gpu: &mut gpu_t,
            },
            &build_ratios,
            cfg.grouping,
        )?;
        record_phase(ctx, outcome, phase);
        if top_level_io {
            // The GPU's partial hash table travels back for merging.
            add_transfer(ctx, outcome, gpu_t.total_bytes() as u64);
        }
        if cpu_t.tuple_count() == 0 {
            gpu_t
        } else {
            merge_tables(ctx, outcome, &mut cpu_t, &gpu_t)?;
            cpu_t
        }
    } else {
        let mut t = HashTable::for_build_size(n_r);
        let phase = run_build_phase(
            ctx,
            build_rel,
            BuildTarget::Shared(&mut t),
            &plan.build,
            cfg.grouping,
        )?;
        if top_level_io {
            // Pipelined intermediate results would cross the bus on the
            // discrete topology (the inefficiency of PL there, Section 5.2).
            add_transfer(ctx, outcome, phase.intermediate_tuples * 8);
        }
        record_phase(ctx, outcome, phase);
        t
    };

    // ---- probe phase ----
    if top_level_io {
        let gpu_share = 1.0 - plan.probe_cpu_share();
        add_transfer(
            ctx,
            outcome,
            (gpu_share * (probe_rel.len() * 8) as f64) as u64,
        );
    }
    let (out, phase) = run_probe_phase(
        ctx,
        probe_rel,
        &table,
        &plan.probe,
        cfg.grouping,
        cfg.collect_results,
    )?;
    if top_level_io {
        add_transfer(ctx, outcome, phase.intermediate_tuples * 8);
        let gpu_share = 1.0 - plan.probe_cpu_share();
        add_transfer(ctx, outcome, (gpu_share * (out.matches * 8) as f64) as u64);
    }
    outcome.matches += out.matches;
    if let Some(p) = out.pairs {
        outcome.pairs.get_or_insert_with(Vec::new).extend(p);
    }
    record_phase(ctx, outcome, phase);
    Ok(())
}

/// Radix-partitions `rel` over `passes` passes of `bits` bits each.
fn partition_relation(
    ctx: &mut ExecContext<'_>,
    rel: &Relation,
    bits: u32,
    passes: u32,
    plan: &RatioPlan,
    outcome: &mut JoinOutcome,
) -> Result<Vec<Relation>, JoinError> {
    let fanout = 1usize << bits;
    let mut parts = vec![rel.clone()];
    for pass in 0..passes {
        let mut next = Vec::with_capacity(parts.len() * fanout);
        for p in &parts {
            if p.is_empty() {
                next.extend((0..fanout).map(|_| Relation::new()));
                continue;
            }
            let (ps, phase) = run_partition_pass(ctx, p, bits, pass, &plan.partition)?;
            add_transfer(ctx, outcome, phase.intermediate_tuples * 8);
            record_phase(ctx, outcome, phase);
            next.extend(ps);
        }
        parts = next;
    }
    Ok(parts)
}

fn run_partitioned(
    ctx: &mut ExecContext<'_>,
    build_rel: &Relation,
    probe_rel: &Relation,
    cfg: &JoinConfig,
    plan: &RatioPlan,
    outcome: &mut JoinOutcome,
) -> Result<(), JoinError> {
    let (bits, passes) = match cfg.algorithm {
        Algorithm::Partitioned { radix_bits, passes } => (radix_bits, passes.max(1)),
        Algorithm::Simple => unreachable!("run_partitioned requires Algorithm::Partitioned"),
    };
    let bits = if bits == 0 {
        default_radix_bits(build_rel.len(), ctx.sys.cache_bytes_for(DeviceKind::Cpu))
    } else {
        bits
    };

    // Discrete topology: ship the GPU's share of both inputs once, before
    // partitioning starts.
    let gpu_share = 1.0 - plan.partition_cpu_share();
    add_transfer(
        ctx,
        outcome,
        (gpu_share * ((build_rel.len() + probe_rel.len()) * 8) as f64) as u64,
    );

    let parts_r = partition_relation(ctx, build_rel, bits, passes, plan, outcome)?;
    let parts_s = partition_relation(ctx, probe_rel, bits, passes, plan, outcome)?;

    match cfg.granularity {
        StepGranularity::Coarse => {
            let mut collected = cfg.collect_results.then(Vec::new);
            let result = run_coarse_pair_joins(ctx, &parts_r, &parts_s, collected.as_mut())?;
            outcome.matches += result.matches;
            if let Some(p) = collected {
                outcome.pairs.get_or_insert_with(Vec::new).extend(p);
            }
            // Attribute the elapsed time of the coarse step proportionally to
            // its build/probe busy components.
            let busy = result.build_time + result.probe_time;
            let (build_share, probe_share) = if busy.is_zero() {
                (0.5, 0.5)
            } else {
                (
                    result.build_time.as_ns() / busy.as_ns(),
                    result.probe_time.as_ns() / busy.as_ns(),
                )
            };
            outcome
                .breakdown
                .add(Phase::Build, result.elapsed * build_share);
            outcome
                .breakdown
                .add(Phase::Probe, result.elapsed * probe_share);
        }
        StepGranularity::Fine => {
            for (r_p, s_p) in parts_r.iter().zip(parts_s.iter()) {
                if r_p.is_empty() && s_p.is_empty() {
                    continue;
                }
                join_pair(ctx, r_p, s_p, cfg, plan, outcome, false)?;
            }
            // Result pairs travel back once for the whole join.
            let gpu_share = 1.0 - plan.probe_cpu_share();
            add_transfer(
                ctx,
                outcome,
                (gpu_share * (outcome.matches * 8) as f64) as u64,
            );
        }
    }
    Ok(())
}

fn run_basic_unit(
    ctx: &mut ExecContext<'_>,
    build_rel: &Relation,
    probe_rel: &Relation,
    cfg: &JoinConfig,
    chunk: usize,
    outcome: &mut JoinOutcome,
) -> Result<(), JoinError> {
    let mut ratios = BasicUnitRatios::default();

    // Optional partition phase (PHJ under BasicUnit), one pass.
    let partitioned = if let Algorithm::Partitioned { radix_bits, .. } = cfg.algorithm {
        let bits = if radix_bits == 0 {
            default_radix_bits(build_rel.len(), ctx.sys.cache_bytes_for(DeviceKind::Cpu))
        } else {
            radix_bits
        };
        let fanout = 1usize << bits;
        let mut partition_cpu_items = 0usize;
        let mut partition_items = 0usize;
        let mut partition_elapsed = SimTime::ZERO;
        let mut split =
            |ctx: &mut ExecContext<'_>, rel: &Relation| -> Result<Vec<Relation>, JoinError> {
                let mut acc: Vec<Relation> = (0..fanout).map(|_| Relation::new()).collect();
                let sched = basic_unit::run_chunks(ctx, rel.len(), chunk, |ctx, range, device| {
                    let sub = rel.slice(range);
                    let r = match device {
                        DeviceKind::Cpu => Ratios::cpu_only(3),
                        DeviceKind::Gpu => Ratios::gpu_only(3),
                    };
                    let (ps, phase) = run_partition_pass(ctx, &sub, bits, 0, &r)?;
                    for (i, p) in ps.iter().enumerate() {
                        acc[i].extend_from(p);
                    }
                    Ok(phase.elapsed())
                })?;
                partition_cpu_items += sched.cpu_items;
                partition_items += sched.cpu_items + sched.gpu_items;
                partition_elapsed += sched.elapsed;
                Ok(acc)
            };
        let parts_r = split(ctx, build_rel)?;
        let parts_s = split(ctx, probe_rel)?;
        outcome.breakdown.add(Phase::Partition, partition_elapsed);
        ratios.partition = if partition_items == 0 {
            0.0
        } else {
            partition_cpu_items as f64 / partition_items as f64
        };
        Some((parts_r, parts_s))
    } else {
        None
    };

    match partitioned {
        None => {
            // SHJ: chunk the build, then chunk the probe, over a shared table.
            let mut table = HashTable::for_build_size(build_rel.len());
            let sched =
                basic_unit::run_chunks(ctx, build_rel.len(), chunk, |ctx, range, device| {
                    let sub = build_rel.slice(range);
                    let r = match device {
                        DeviceKind::Cpu => Ratios::cpu_only(4),
                        DeviceKind::Gpu => Ratios::gpu_only(4),
                    };
                    Ok(run_build_phase(
                        ctx,
                        &sub,
                        BuildTarget::Shared(&mut table),
                        &r,
                        cfg.grouping,
                    )?
                    .elapsed())
                })?;
            outcome.breakdown.add(Phase::Build, sched.elapsed);
            ratios.build = sched.cpu_ratio();

            let mut matches = 0u64;
            let mut all_pairs: Vec<(u32, u32)> = Vec::new();
            let sched =
                basic_unit::run_chunks(ctx, probe_rel.len(), chunk, |ctx, range, device| {
                    let sub = probe_rel.slice(range);
                    let r = match device {
                        DeviceKind::Cpu => Ratios::cpu_only(4),
                        DeviceKind::Gpu => Ratios::gpu_only(4),
                    };
                    let (out, phase) =
                        run_probe_phase(ctx, &sub, &table, &r, cfg.grouping, cfg.collect_results)?;
                    matches += out.matches;
                    if let Some(p) = out.pairs {
                        all_pairs.extend(p);
                    }
                    Ok(phase.elapsed())
                })?;
            outcome.breakdown.add(Phase::Probe, sched.elapsed);
            ratios.probe = sched.cpu_ratio();
            outcome.matches += matches;
            if cfg.collect_results {
                outcome.pairs.get_or_insert_with(Vec::new).extend(all_pairs);
            }
        }
        Some((parts_r, parts_s)) => {
            // PHJ: each partition pair is one scheduling unit, dispatched to
            // whichever device's event clock is behind.
            let mut clocks = apu_sim::DeviceClocks::new();
            let mut cpu_tuples = 0usize;
            let mut total_tuples = 0usize;
            let mut build_busy = SimTime::ZERO;
            let mut probe_busy = SimTime::ZERO;
            for (r_p, s_p) in parts_r.iter().zip(parts_s.iter()) {
                if r_p.is_empty() && s_p.is_empty() {
                    continue;
                }
                let device = clocks.idlest();
                let (build_r, probe_r) = match device {
                    DeviceKind::Cpu => (Ratios::cpu_only(4), Ratios::cpu_only(4)),
                    DeviceKind::Gpu => (Ratios::gpu_only(4), Ratios::gpu_only(4)),
                };
                let mut table = HashTable::for_build_size(r_p.len());
                let bp = run_build_phase(
                    ctx,
                    r_p,
                    BuildTarget::Shared(&mut table),
                    &build_r,
                    cfg.grouping,
                )?;
                let (out, pp) = run_probe_phase(
                    ctx,
                    s_p,
                    &table,
                    &probe_r,
                    cfg.grouping,
                    cfg.collect_results,
                )?;
                outcome.matches += out.matches;
                if let Some(p) = out.pairs {
                    outcome.pairs.get_or_insert_with(Vec::new).extend(p);
                }
                let pair_time = bp.elapsed()
                    + pp.elapsed()
                    + SimTime::from_ns(basic_unit::CHUNK_DISPATCH_OVERHEAD_NS);
                build_busy += bp.elapsed();
                probe_busy += pp.elapsed();
                clocks.advance(device, pair_time);
                if device == DeviceKind::Cpu {
                    cpu_tuples += r_p.len() + s_p.len();
                }
                total_tuples += r_p.len() + s_p.len();
            }
            let elapsed = clocks.elapsed();
            let busy = build_busy + probe_busy;
            let (bs, ps) = if busy.is_zero() {
                (0.5, 0.5)
            } else {
                (
                    build_busy.as_ns() / busy.as_ns(),
                    probe_busy.as_ns() / busy.as_ns(),
                )
            };
            outcome.breakdown.add(Phase::Build, elapsed * bs);
            outcome.breakdown.add(Phase::Probe, elapsed * ps);
            let r = if total_tuples == 0 {
                0.0
            } else {
                cpu_tuples as f64 / total_tuples as f64
            };
            ratios.build = r;
            ratios.probe = r;
        }
    }

    outcome.basic_unit_ratios = Some(ratios);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference_match_count;
    use datagen::DataGenConfig;

    /// Engine-backed equivalent of the old one-shot entry point.
    fn run(sys: &SystemSpec, r: &Relation, s: &Relation, cfg: &JoinConfig) -> JoinOutcome {
        let config = EngineConfig::for_tuples(r.len(), s.len()).with_allocator(cfg.allocator);
        let mut engine = JoinEngine::for_system(sys.clone(), config).unwrap();
        let request = JoinRequest::from_config(cfg.clone()).unwrap();
        engine.execute(&request, r, s).unwrap()
    }

    fn data(n: usize) -> (Relation, Relation, u64) {
        let (r, s) = datagen::generate_pair(&DataGenConfig::small(n, n * 2));
        let expected = reference_match_count(&r, &s);
        (r, s, expected)
    }

    #[test]
    fn every_scheme_produces_the_same_match_count_shj() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s, expected) = data(3000);
        for scheme in [
            Scheme::CpuOnly,
            Scheme::GpuOnly,
            Scheme::offload_gpu(),
            Scheme::data_dividing_paper(),
            Scheme::pipelined_paper(),
            Scheme::basic_unit_default(),
        ] {
            let cfg = JoinConfig::shj(scheme.clone());
            let out = run(&sys, &r, &s, &cfg);
            assert_eq!(out.matches, expected, "scheme {:?}", scheme.label());
            assert!(out.total_time() > SimTime::ZERO);
        }
    }

    #[test]
    fn every_scheme_produces_the_same_match_count_phj() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s, expected) = data(3000);
        for scheme in [
            Scheme::CpuOnly,
            Scheme::GpuOnly,
            Scheme::data_dividing_paper(),
            Scheme::pipelined_paper(),
            Scheme::basic_unit_default(),
        ] {
            let cfg = JoinConfig::phj(scheme.clone());
            let out = run(&sys, &r, &s, &cfg);
            assert_eq!(out.matches, expected, "scheme {:?}", scheme.label());
            assert!(out.breakdown.get(Phase::Partition) > SimTime::ZERO);
        }
    }

    #[test]
    fn collected_pairs_match_reference_pairs() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s, _) = data(800);
        let cfg = JoinConfig::phj(Scheme::pipelined_paper()).with_collect_results(true);
        let out = run(&sys, &r, &s, &cfg);
        let mut got = out.pairs.unwrap();
        got.sort_unstable();
        assert_eq!(got, crate::result::reference_pairs(&r, &s));
    }

    #[test]
    fn separate_tables_add_a_merge_phase() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s, expected) = data(2000);
        let shared = run(
            &sys,
            &r,
            &s,
            &JoinConfig::shj(Scheme::data_dividing_paper()),
        );
        let separate = run(
            &sys,
            &r,
            &s,
            &JoinConfig::shj(Scheme::data_dividing_paper())
                .with_hash_table(HashTableMode::Separate),
        );
        assert_eq!(shared.matches, expected);
        assert_eq!(separate.matches, expected);
        assert_eq!(shared.breakdown.get(Phase::Merge), SimTime::ZERO);
        assert!(separate.breakdown.get(Phase::Merge) > SimTime::ZERO);
        assert!(separate.total_time() > shared.total_time());
    }

    #[test]
    fn discrete_topology_charges_transfers() {
        let coupled = SystemSpec::coupled_a8_3870k();
        let discrete = SystemSpec::discrete_emulated();
        let (r, s, expected) = data(4000);
        let cfg = JoinConfig::shj(Scheme::data_dividing_paper());
        let on_coupled = run(&coupled, &r, &s, &cfg);
        let on_discrete = run(&discrete, &r, &s, &cfg);
        assert_eq!(on_coupled.matches, expected);
        assert_eq!(on_discrete.matches, expected);
        assert_eq!(on_coupled.breakdown.get(Phase::DataTransfer), SimTime::ZERO);
        assert!(on_discrete.breakdown.get(Phase::DataTransfer) > SimTime::ZERO);
        assert!(on_discrete.counters.pcie_bytes > 0);
        assert!(on_discrete.total_time() > on_coupled.total_time());
    }

    #[test]
    fn gpu_only_offload_needs_no_merge_even_on_discrete() {
        // "OL has only the data transfer overhead because OL is essentially
        // GPU-only" (Section 5.2).
        let discrete = SystemSpec::discrete_emulated();
        let (r, s, expected) = data(2000);
        let out = run(&discrete, &r, &s, &JoinConfig::shj(Scheme::offload_gpu()));
        assert_eq!(out.matches, expected);
        assert_eq!(out.breakdown.get(Phase::Merge), SimTime::ZERO);
        assert!(out.breakdown.get(Phase::DataTransfer) > SimTime::ZERO);
    }

    #[test]
    fn pipelined_beats_single_device_execution() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s) = datagen::generate_pair(&DataGenConfig::small(40_000, 40_000));
        let cpu = run(&sys, &r, &s, &JoinConfig::shj(Scheme::CpuOnly));
        let gpu = run(&sys, &r, &s, &JoinConfig::shj(Scheme::GpuOnly));
        let pl = run(&sys, &r, &s, &JoinConfig::shj(Scheme::pipelined_paper()));
        assert!(
            pl.total_time() < cpu.total_time(),
            "PL {} should beat CPU-only {}",
            pl.total_time(),
            cpu.total_time()
        );
        assert!(
            pl.total_time() < gpu.total_time(),
            "PL {} should beat GPU-only {}",
            pl.total_time(),
            gpu.total_time()
        );
    }

    #[test]
    fn coarse_granularity_is_slower_than_fine() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s, expected) = data(20_000);
        let fine = run(&sys, &r, &s, &JoinConfig::phj(Scheme::pipelined_paper()));
        let coarse = run(
            &sys,
            &r,
            &s,
            &JoinConfig::phj(Scheme::pipelined_paper()).with_granularity(StepGranularity::Coarse),
        );
        assert_eq!(fine.matches, expected);
        assert_eq!(coarse.matches, expected);
        assert!(coarse.total_time() > fine.total_time());
    }

    #[test]
    fn basic_unit_reports_observed_ratios() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s, expected) = data(10_000);
        let cfg = JoinConfig::shj(Scheme::BasicUnit { chunk_tuples: 1024 });
        let out = run(&sys, &r, &s, &cfg);
        assert_eq!(out.matches, expected);
        let ratios = out.basic_unit_ratios.unwrap();
        assert!(ratios.build > 0.0 && ratios.build < 1.0);
        assert!(ratios.probe > 0.0 && ratios.probe < 1.0);
    }

    #[test]
    fn basic_allocator_is_slower_than_block_allocator() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s, _) = data(20_000);
        let ours = run(
            &sys,
            &r,
            &s,
            &JoinConfig::phj(Scheme::data_dividing_paper()),
        );
        let basic = run(
            &sys,
            &r,
            &s,
            &JoinConfig::phj(Scheme::data_dividing_paper())
                .with_allocator(mem_alloc::AllocatorKind::Basic),
        );
        assert!(basic.total_time() > ours.total_time());
        assert!(basic.counters.lock_overhead > ours.counters.lock_overhead);
    }

    #[test]
    fn schemes_without_a_ratio_plan_are_typed_rejections() {
        let cfg = JoinConfig::shj(Scheme::basic_unit_default());
        let err = ratio_plan(&cfg).unwrap_err();
        assert_eq!(
            err,
            JoinError::InvalidScheme {
                scheme: "BasicUnit",
                algorithm: "SHJ",
            }
        );
        assert!(ratio_plan(&JoinConfig::phj(Scheme::pipelined_paper())).is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_runs() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s, expected) = data(1000);
        let out = run_join(&sys, &r, &s, &JoinConfig::shj(Scheme::pipelined_paper()));
        assert_eq!(out.matches, expected);
    }
}
