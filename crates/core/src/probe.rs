//! The probe phase: steps `p1..p4` of Algorithm 1, split between devices.

use crate::context::ExecContext;
use crate::divergence::{grouping_order, DEFAULT_GROUPS};
use crate::error::JoinError;
use crate::hash::hash_key;
use crate::hashtable::{HashTable, KEY_NODE_BYTES, NIL, RID_NODE_BYTES};
use crate::phase::{run_step, PhaseExecution};
use crate::schedule::Ratios;
use crate::steps::{instr, StepId};
use apu_sim::Phase;
use datagen::Relation;

/// The output of the probe phase.
#[derive(Debug, Clone, Default)]
pub struct ProbeOutput {
    /// Number of `(build rid, probe rid)` result pairs produced.
    pub matches: u64,
    /// The materialised result pairs, when collection was requested.
    pub pairs: Option<Vec<(u32, u32)>>,
}

/// Runs the probe phase of `probe_rel` against `table` with per-step CPU
/// ratios `ratios` (length 4: `p1..p4`).
///
/// When `collect_pairs` is set the `(build rid, probe rid)` pairs are
/// materialised (useful for correctness checks); otherwise only the count is
/// kept, matching the paper's implementation which "simply outputs the
/// matching rid pair".
///
/// # Errors
/// Returns [`JoinError::ArenaExhausted`] when the result arena runs out of
/// space.
///
/// # Panics
/// Panics if `ratios.len() != 4` (an internal invariant of the executor).
pub fn run_probe_phase(
    ctx: &mut ExecContext<'_>,
    probe_rel: &Relation,
    table: &HashTable,
    ratios: &Ratios,
    grouping: bool,
    collect_pairs: bool,
) -> Result<(ProbeOutput, PhaseExecution), JoinError> {
    assert_eq!(ratios.len(), 4, "probe phase has 4 steps (p1..p4)");
    let n = probe_rel.len();
    let mut steps = Vec::with_capacity(4);
    let mut oom: Option<usize> = None;

    let mut bucket_idx = vec![0u32; n];
    let mut matched_key = vec![NIL; n];
    let mut matches: u64 = 0;
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    if collect_pairs {
        pairs.reserve(n);
    }

    // p1: compute hash bucket number.
    steps.push(run_step(
        ctx,
        StepId::P1,
        n,
        ratios.get(0),
        0.0,
        |_, i, _, _, rec| {
            bucket_idx[i] = table.bucket_index(hash_key(probe_rel.key(i))) as u32;
            rec.item(instr::HASH);
            rec.seq_read(4.0);
            rec.seq_write(4.0);
        },
    ));

    // p2: visit the hash bucket header.
    let bucket_ws = table.bucket_array_bytes() as f64;
    let mut bucket_count = vec![0u32; n];
    steps.push(run_step(
        ctx,
        StepId::P2,
        n,
        ratios.get(1),
        bucket_ws,
        |ctx, i, _, _, rec| {
            let idx = bucket_idx[i] as usize;
            let header = table.visit_bucket_for_probe(idx);
            bucket_count[i] = header.count;
            ctx.cache_access(table.bucket_addr(idx));
            rec.item(instr::VISIT_HEADER);
            rec.random_read(1.0);
        },
    ));

    // Optional grouping by expected probe work (the bucket occupancy read in
    // p2), exactly as Section 3.3 describes.
    let order: Vec<u32> = if grouping {
        grouping_order(&bucket_count, DEFAULT_GROUPS)
    } else {
        (0..n as u32).collect()
    };

    // p3: visit the key list.
    let key_ws = bucket_ws + (table.key_node_count() * KEY_NODE_BYTES) as f64;
    steps.push(run_step(
        ctx,
        StepId::P3,
        n,
        ratios.get(2),
        key_ws,
        |ctx, pos, _, _, rec| {
            let i = order[pos] as usize;
            let idx = bucket_idx[i] as usize;
            let (found, visited) = table.find_key(idx, probe_rel.key(i));
            matched_key[i] = found.unwrap_or(NIL);
            for v in 0..visited {
                ctx.cache_access(table.key_node_addr(v));
            }
            rec.item(0.0);
            rec.instructions((visited.max(1)) as f64 * instr::KEY_NODE_VISIT);
            if grouping {
                rec.instructions(instr::GROUPING_PER_TUPLE);
                rec.seq_read(4.0);
                rec.seq_write(4.0);
            }
            rec.random_read(visited.max(1) as f64);
            rec.work(visited.max(1));
        },
    ));

    // p4: visit the matching build tuples, compare keys and produce output.
    let out_ws =
        (table.key_node_count() * KEY_NODE_BYTES + table.rid_node_count() * RID_NODE_BYTES) as f64;
    steps.push(run_step(
        ctx,
        StepId::P4,
        n,
        ratios.get(3),
        out_ws,
        |ctx, pos, _, group, rec| {
            if oom.is_some() {
                return;
            }
            let i = order[pos] as usize;
            rec.item(instr::VISIT_HEADER);
            let kn = matched_key[i];
            if kn == NIL {
                rec.work(1);
                return;
            }
            let mut local_matches = 0u32;
            for build_rid in table.rids_of(kn) {
                local_matches += 1;
                if ctx.allocator.alloc(group, 8).is_none() {
                    oom = Some(8);
                    return;
                }
                if collect_pairs {
                    pairs.push((build_rid, probe_rel.rid(i)));
                }
                ctx.cache_access(table.rid_node_addr(kn));
            }
            matches += local_matches as u64;
            rec.instructions(local_matches as f64 * instr::OUTPUT_MATCH);
            // Visiting the rid nodes plus the matching build tuple.
            rec.random_read(local_matches as f64 + 1.0);
            rec.seq_write(8.0 * local_matches as f64);
            rec.work(local_matches.max(1));
        },
    ));

    if let Some(requested) = oom {
        return Err(ctx.arena_error("probe", requested));
    }
    let output = ProbeOutput {
        matches,
        pairs: if collect_pairs { Some(pairs) } else { None },
    };
    ctx.counters.matches += output.matches;
    let recorded = crate::phase::recorded_ratios(ctx, &steps, ratios);
    Ok((
        output,
        PhaseExecution::from_steps(Phase::Probe, recorded, steps, n),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{run_build_phase, BuildTarget};
    use crate::context::arena_bytes_for;
    use apu_sim::SystemSpec;
    use datagen::DataGenConfig;
    use mem_alloc::AllocatorKind;
    use std::collections::HashMap;

    /// Reference join result computed with a plain hash map.
    fn reference_matches(build: &Relation, probe: &Relation) -> u64 {
        let mut map: HashMap<u32, u64> = HashMap::new();
        for &k in build.keys() {
            *map.entry(k).or_insert(0) += 1;
        }
        probe
            .keys()
            .iter()
            .map(|k| map.get(k).copied().unwrap_or(0))
            .sum()
    }

    fn build_table<'a>(sys: &'a SystemSpec, rel: &Relation) -> (HashTable, ExecContext<'a>) {
        let mut ctx = ExecContext::new(
            sys,
            AllocatorKind::tuned(),
            arena_bytes_for(rel.len(), rel.len() * 2),
            false,
        );
        let mut table = HashTable::for_build_size(rel.len());
        run_build_phase(
            &mut ctx,
            rel,
            BuildTarget::Shared(&mut table),
            &Ratios::uniform(0.5, 4),
            false,
        )
        .unwrap();
        (table, ctx)
    }

    #[test]
    fn probe_counts_match_reference_join() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (build, probe) = datagen::generate_pair(&DataGenConfig::small(2000, 4000));
        let (table, mut ctx) = build_table(&sys, &build);
        let (out, phase) = run_probe_phase(
            &mut ctx,
            &probe,
            &table,
            &Ratios::uniform(0.4, 4),
            false,
            false,
        )
        .unwrap();
        assert_eq!(out.matches, reference_matches(&build, &probe));
        assert_eq!(phase.steps.len(), 4);
        assert!(out.pairs.is_none());
    }

    #[test]
    fn collected_pairs_are_real_matches() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (build, probe) = datagen::generate_pair(&DataGenConfig::small(500, 1000));
        let (table, mut ctx) = build_table(&sys, &build);
        let (out, _) =
            run_probe_phase(&mut ctx, &probe, &table, &Ratios::gpu_only(4), false, true).unwrap();
        let pairs = out.pairs.unwrap();
        assert_eq!(pairs.len() as u64, out.matches);
        let build_keys: HashMap<u32, u32> = build.iter().collect();
        let probe_keys: HashMap<u32, u32> = probe.iter().collect();
        for (brid, prid) in pairs.iter().take(200) {
            assert_eq!(
                build_keys[brid], probe_keys[prid],
                "joined pair keys must be equal"
            );
        }
    }

    #[test]
    fn selective_probe_produces_fewer_matches() {
        let sys = SystemSpec::coupled_a8_3870k();
        let low = DataGenConfig::small(1000, 2000).with_selectivity(0.125);
        let (build, probe) = datagen::generate_pair(&low);
        let (table, mut ctx) = build_table(&sys, &build);
        let (out, _) = run_probe_phase(
            &mut ctx,
            &probe,
            &table,
            &Ratios::uniform(0.5, 4),
            false,
            false,
        )
        .unwrap();
        assert_eq!(out.matches, reference_matches(&build, &probe));
        assert!(out.matches < 2000 / 4);
    }

    #[test]
    fn grouping_preserves_the_result() {
        let sys = SystemSpec::coupled_a8_3870k();
        let cfg = DataGenConfig::small(2000, 3000)
            .with_distribution(datagen::KeyDistribution::high_skew());
        let (build, probe) = datagen::generate_pair(&cfg);
        let (table, mut ctx) = build_table(&sys, &build);
        let (plain, _) = run_probe_phase(
            &mut ctx,
            &probe,
            &table,
            &Ratios::uniform(0.5, 4),
            false,
            false,
        )
        .unwrap();
        let (grouped, _) = run_probe_phase(
            &mut ctx,
            &probe,
            &table,
            &Ratios::uniform(0.5, 4),
            true,
            false,
        )
        .unwrap();
        assert_eq!(plain.matches, grouped.matches);
    }

    #[test]
    fn probe_ratio_splits_items() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (build, probe) = datagen::generate_pair(&DataGenConfig::small(100, 1000));
        let (table, mut ctx) = build_table(&sys, &build);
        let (_, phase) = run_probe_phase(
            &mut ctx,
            &probe,
            &table,
            &Ratios::uniform(0.3, 4),
            false,
            false,
        )
        .unwrap();
        for step in &phase.steps {
            assert_eq!(step.cpu_items, 300);
            assert_eq!(step.gpu_items, 700);
        }
    }
}
