//! Workload ratios and the pipelined-execution timing composition.
//!
//! A *ratio* `r_i ∈ [0, 1]` is the fraction of step `i`'s tuples processed by
//! the CPU (the rest goes to the GPU).  The three co-processing schemes of
//! the paper are all expressible as ratio vectors over a step series
//! (Section 3.2):
//!
//! * **OL** — every `r_i` is 0 or 1;
//! * **DD** — all `r_i` are equal;
//! * **PL** — arbitrary `r_i` per step.
//!
//! [`compose_pipeline`] combines per-device per-step times into the elapsed
//! time of the series, implementing Eqs. 1, 2, 4 and 5 of the paper: each
//! device's total is the sum of its step times plus pipeline delays incurred
//! when consecutive steps use different ratios, and the series' elapsed time
//! is the maximum over the two devices.

use apu_sim::SimTime;

/// Per-step CPU workload ratios for one step series.
#[derive(Debug, Clone, PartialEq)]
pub struct Ratios(Vec<f64>);

impl Ratios {
    /// Creates a ratio vector, clamping every entry into `[0, 1]`.
    ///
    /// `f64::clamp` propagates NaN, which would poison the pipeline-timing
    /// composition (every comparison against a NaN ratio is false), so NaN
    /// entries are mapped to `0.0` (GPU-only, the conservative default).
    /// Request validation ([`crate::engine::JoinRequestBuilder::build`])
    /// still *rejects* non-finite ratios at the API boundary; this clamp is
    /// the last line of defence for internally constructed vectors.
    pub fn new(ratios: Vec<f64>) -> Self {
        Ratios(
            ratios
                .into_iter()
                .map(|r| if r.is_nan() { 0.0 } else { r.clamp(0.0, 1.0) })
                .collect(),
        )
    }

    /// A data-dividing vector: the same ratio for all `steps` steps.
    pub fn uniform(r: f64, steps: usize) -> Self {
        Ratios::new(vec![r; steps])
    }

    /// CPU-only execution of `steps` steps.
    pub fn cpu_only(steps: usize) -> Self {
        Ratios::uniform(1.0, steps)
    }

    /// GPU-only execution of `steps` steps.
    pub fn gpu_only(steps: usize) -> Self {
        Ratios::uniform(0.0, steps)
    }

    /// An off-loading vector: `true` entries run on the CPU, `false` on the
    /// GPU.
    pub fn offload(on_cpu: &[bool]) -> Self {
        Ratios::new(on_cpu.iter().map(|&c| if c { 1.0 } else { 0.0 }).collect())
    }

    /// The ratio of step `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no steps.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The ratios as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// True when all ratios are equal (a DD schedule) within `1e-9`.
    pub fn is_uniform(&self) -> bool {
        self.0.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9)
    }

    /// Total fraction of tuples that change device between consecutive steps
    /// (`Σ |r_i − r_{i-1}|`); multiplied by the item count this is the amount
    /// of intermediate results the pipelined scheme materialises.
    pub fn intermediate_fraction(&self) -> f64 {
        self.0.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
    }
}

impl From<Vec<f64>> for Ratios {
    fn from(v: Vec<f64>) -> Self {
        Ratios::new(v)
    }
}

/// The composed timing of one step series under pipelined co-processing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineTiming {
    /// CPU busy time (sum of its step times).
    pub cpu_busy: SimTime,
    /// GPU busy time (sum of its step times).
    pub gpu_busy: SimTime,
    /// Total pipeline delay charged to the CPU (Eq. 4).
    pub cpu_delay: SimTime,
    /// Total pipeline delay charged to the GPU (Eq. 5).
    pub gpu_delay: SimTime,
    /// Elapsed time of the series: `max(CPU total, GPU total)` (Eq. 1).
    pub elapsed: SimTime,
}

/// Composes per-device per-step times into the elapsed time of the series.
///
/// `cpu[i]` and `gpu[i]` are the times each device spends on its share of
/// step `i` (zero when its ratio gives it no tuples); `ratios[i]` is the CPU
/// share of step `i`.  Implements Eqs. 1, 2, 4, 5 of the paper.
///
/// # Panics
/// Panics if the three slices have different lengths.
pub fn compose_pipeline(cpu: &[SimTime], gpu: &[SimTime], ratios: &Ratios) -> PipelineTiming {
    assert_eq!(cpu.len(), gpu.len(), "per-device step counts differ");
    assert_eq!(
        cpu.len(),
        ratios.len(),
        "ratio count differs from step count"
    );
    let n = cpu.len();
    if n == 0 {
        return PipelineTiming::default();
    }

    // Running totals of T^j_XPU including already-charged delays, as the
    // paper's Σ T^j terms require.
    let mut cpu_total = SimTime::ZERO;
    let mut gpu_total = SimTime::ZERO;
    let mut cpu_delay_total = SimTime::ZERO;
    let mut gpu_delay_total = SimTime::ZERO;
    let mut cpu_busy = SimTime::ZERO;
    let mut gpu_busy = SimTime::ZERO;

    for i in 0..n {
        let t_cpu = cpu[i];
        let t_gpu = gpu[i];
        cpu_busy += t_cpu;
        gpu_busy += t_gpu;

        let mut d_cpu = SimTime::ZERO;
        let mut d_gpu = SimTime::ZERO;
        if i > 0 {
            let r_i = ratios.get(i);
            let r_prev = ratios.get(i - 1);
            if r_i > r_prev + 1e-12 {
                // Case 1 (Eq. 4): the CPU takes on more work than in the
                // previous step, so it may stall waiting for GPU output of
                // step i-1.
                let frac = if (1.0 - r_prev) > 1e-12 {
                    (1.0 - r_i) / (1.0 - r_prev)
                } else {
                    0.0
                };
                let gpu_pipelined_end = gpu_total.saturating_sub(gpu[i - 1] * frac);
                d_cpu = gpu_pipelined_end.saturating_sub(cpu_total + t_cpu);
            } else if r_i + 1e-12 < r_prev {
                // Case 2 (Eq. 5): the GPU takes on more work, so it may stall
                // waiting for CPU output of step i-1.
                let frac = if (1.0 - r_i) > 1e-12 {
                    (1.0 - r_prev) / (1.0 - r_i)
                } else {
                    0.0
                };
                let gpu_after_step = gpu_total + t_gpu;
                d_gpu = cpu_total.saturating_sub(gpu_after_step.saturating_sub(t_gpu * frac));
            }
        }

        cpu_total += t_cpu + d_cpu;
        gpu_total += t_gpu + d_gpu;
        cpu_delay_total += d_cpu;
        gpu_delay_total += d_gpu;
    }

    PipelineTiming {
        cpu_busy,
        gpu_busy,
        cpu_delay: cpu_delay_total,
        gpu_delay: gpu_delay_total,
        elapsed: cpu_total.max(gpu_total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: f64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn ratios_constructors_and_queries() {
        let dd = Ratios::uniform(0.3, 4);
        assert!(dd.is_uniform());
        assert_eq!(dd.len(), 4);
        assert_eq!(dd.intermediate_fraction(), 0.0);

        let ol = Ratios::offload(&[false, true, true, false]);
        assert_eq!(ol.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
        assert!(!ol.is_uniform());
        assert!((ol.intermediate_fraction() - 2.0).abs() < 1e-12);

        assert_eq!(Ratios::cpu_only(3).as_slice(), &[1.0; 3]);
        assert_eq!(Ratios::gpu_only(3).as_slice(), &[0.0; 3]);
        assert!(Ratios::new(vec![]).is_empty());
    }

    #[test]
    fn ratios_are_clamped() {
        let r = Ratios::new(vec![-0.5, 1.5]);
        assert_eq!(r.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn nan_ratios_cannot_poison_the_timing() {
        let r = Ratios::new(vec![f64::NAN, 0.5, f64::NAN]);
        assert_eq!(r.as_slice(), &[0.0, 0.5, 0.0]);
        // A NaN-born ratio vector composes to finite times.
        let cpu = [t(10.0), t(20.0), t(30.0)];
        let gpu = [t(40.0), t(50.0), t(60.0)];
        let timing = compose_pipeline(&cpu, &gpu, &r);
        assert!(timing.elapsed.as_ns().is_finite());
        assert!(timing.elapsed >= t(150.0));
    }

    #[test]
    fn single_device_pipeline_is_a_plain_sum() {
        let cpu = [t(100.0), t(200.0), t(50.0)];
        let gpu = [t(0.0); 3];
        let timing = compose_pipeline(&cpu, &gpu, &Ratios::cpu_only(3));
        assert_eq!(timing.elapsed.as_ns(), 350.0);
        assert_eq!(timing.cpu_delay, SimTime::ZERO);
        assert_eq!(timing.gpu_delay, SimTime::ZERO);
    }

    #[test]
    fn equal_ratios_have_no_pipeline_delay() {
        let cpu = [t(100.0), t(120.0)];
        let gpu = [t(90.0), t(80.0)];
        let timing = compose_pipeline(&cpu, &gpu, &Ratios::uniform(0.5, 2));
        assert_eq!(timing.cpu_delay, SimTime::ZERO);
        assert_eq!(timing.gpu_delay, SimTime::ZERO);
        assert_eq!(timing.elapsed.as_ns(), 220.0);
    }

    #[test]
    fn elapsed_is_max_of_device_totals() {
        let cpu = [t(10.0), t(10.0)];
        let gpu = [t(500.0), t(500.0)];
        let timing = compose_pipeline(&cpu, &gpu, &Ratios::uniform(0.1, 2));
        assert_eq!(timing.elapsed.as_ns(), 1000.0);
        assert_eq!(timing.cpu_busy.as_ns(), 20.0);
        assert_eq!(timing.gpu_busy.as_ns(), 1000.0);
    }

    #[test]
    fn cpu_stalls_when_it_needs_gpu_output() {
        // Step 1 runs entirely on the GPU and is slow; step 2 runs entirely
        // on the CPU.  Execution is pipelined at tuple granularity, so the
        // CPU consumes GPU output as it is produced and finishes (per Eq. 4)
        // together with the GPU's last tuple: the stall is the difference
        // between the GPU production time and the CPU's own work.
        let cpu = [t(0.0), t(300.0)];
        let gpu = [t(1000.0), t(0.0)];
        let ratios = Ratios::new(vec![0.0, 1.0]);
        let timing = compose_pipeline(&cpu, &gpu, &ratios);
        assert!((timing.cpu_delay.as_ns() - 700.0).abs() < 1e-6);
        assert!((timing.elapsed.as_ns() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn gpu_stalls_when_it_needs_cpu_output() {
        let cpu = [t(1000.0), t(0.0)];
        let gpu = [t(0.0), t(400.0)];
        let ratios = Ratios::new(vec![1.0, 0.0]);
        let timing = compose_pipeline(&cpu, &gpu, &ratios);
        assert!((timing.gpu_delay.as_ns() - 600.0).abs() < 1e-6);
        assert!((timing.elapsed.as_ns() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn partial_ratio_shift_stalls_less_than_full_shift() {
        // Shifting only part of the workload between devices should stall
        // less than handing the entire step over.
        let cpu_full = [t(0.0), t(400.0)];
        let gpu_full = [t(800.0), t(0.0)];
        let full = compose_pipeline(&cpu_full, &gpu_full, &Ratios::new(vec![0.0, 1.0]));

        let cpu_part = [t(0.0), t(200.0)];
        let gpu_part = [t(800.0), t(200.0)];
        let part = compose_pipeline(&cpu_part, &gpu_part, &Ratios::new(vec![0.0, 0.5]));
        assert!(part.cpu_delay <= full.cpu_delay);
    }

    #[test]
    fn empty_series_is_zero() {
        let timing = compose_pipeline(&[], &[], &Ratios::new(vec![]));
        assert_eq!(timing.elapsed, SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = compose_pipeline(&[t(1.0)], &[t(1.0), t(2.0)], &Ratios::uniform(0.5, 2));
    }
}
