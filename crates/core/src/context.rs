//! Execution context shared by all phase runners: devices, allocator,
//! cache model and run-wide counters.

use crate::error::JoinError;
use crate::pipeline::{SharedWorkerPool, WorkerPool};
use apu_sim::SystemSpec;
use apu_sim::{
    AnalyticCache, CacheSim, CacheStats, CostRecorder, Device, DeviceKind, MemContext, SimTime,
};
use mem_alloc::{AllocStats, AllocatorKind, KernelAllocator};

/// Work groups the CPU device runs concurrently (one per core).
pub const CPU_WORK_GROUPS: usize = 4;
/// Work groups the GPU device runs concurrently.
pub const GPU_WORK_GROUPS: usize = 64;

/// Run-wide counters accumulated across all phases of one join execution.
#[derive(Debug, Clone, Default)]
pub struct ExecCounters {
    /// Number of result pairs produced.
    pub matches: u64,
    /// Tuples that crossed between devices because consecutive steps used
    /// different workload ratios (the intermediate results of PL).
    pub intermediate_tuples: u64,
    /// Bytes moved over PCI-e (discrete topology only).
    pub pcie_bytes: u64,
    /// Number of PCI-e transfers.
    pub pcie_transfers: u64,
    /// Total latch/atomic overhead charged by the device model.
    pub lock_overhead: SimTime,
    /// Total SIMD divergence overhead charged by the device model.
    pub divergence_overhead: SimTime,
    /// Allocator activity.
    pub alloc: AllocStats,
    /// Last-level-cache counters, present when cache profiling was enabled.
    pub cache: Option<CacheStats>,
    /// Random accesses charged by the analytic cache model.
    pub analytic_accesses: f64,
    /// Estimated misses under the analytic cache model
    /// (`accesses × (1 − hit rate)` per step).
    pub analytic_misses: f64,
}

/// Mutable state threaded through every phase of one join execution.
pub struct ExecContext<'a> {
    /// The system (devices + topology) the join runs on.
    pub sys: &'a SystemSpec,
    cpu: Device,
    gpu: Device,
    cpu_cache: AnalyticCache,
    gpu_cache: AnalyticCache,
    /// The software allocator serving key/rid nodes, partition buffers and
    /// result output.
    pub allocator: Box<dyn KernelAllocator>,
    /// Exact cache simulator, enabled only when miss counts are required.
    pub cache_sim: Option<CacheSim>,
    /// Run-wide counters.
    pub counters: ExecCounters,
    /// Morsel size (tuples) the step pipeline decomposes phases into; the
    /// engine sets it from the request, defaulting to
    /// [`crate::pipeline::DEFAULT_MORSEL_TUPLES`].
    pub morsel_tuples: usize,
    /// The engine's persistent worker pool, when this context was created
    /// by a [`JoinEngine`](crate::engine::JoinEngine); native execution
    /// submits its morsels here instead of spawning threads per step.
    /// Lazily spawned: backends that never ask (the simulators) never cost
    /// a thread.
    workers: Option<&'a SharedWorkerPool>,
    /// The adaptive runtime tuner, when the request asked for
    /// [`Tuning::Adaptive`](crate::engine::Tuning): [`crate::phase::run_step`]
    /// feeds it per-morsel lane timings and takes its re-planned ratios;
    /// the native backend feeds it wall-clock telemetry.  `None` (the
    /// default) runs the offline plan unchanged.
    pub tuner: Option<hj_adaptive::RatioTuner>,
}

impl<'a> ExecContext<'a> {
    /// Creates a context for one join run.
    ///
    /// `arena_bytes` sizes the allocator arena; `profile_cache` enables the
    /// exact L2 simulator (slower, used for Table 3).
    pub fn new(
        sys: &'a SystemSpec,
        allocator: AllocatorKind,
        arena_bytes: usize,
        profile_cache: bool,
    ) -> Self {
        let work_groups = CPU_WORK_GROUPS + GPU_WORK_GROUPS;
        ExecContext::with_allocator(
            sys,
            allocator.build(arena_bytes, work_groups),
            profile_cache,
        )
    }

    /// Creates a context around an *existing* allocator, so a long-lived
    /// [`JoinEngine`](crate::engine::JoinEngine) can reuse one arena across
    /// many requests instead of re-allocating it per join.
    pub fn with_allocator(
        sys: &'a SystemSpec,
        allocator: Box<dyn KernelAllocator>,
        profile_cache: bool,
    ) -> Self {
        ExecContext {
            sys,
            cpu: sys.device(DeviceKind::Cpu),
            gpu: sys.device(DeviceKind::Gpu),
            cpu_cache: AnalyticCache::new(sys.cache_bytes_for(DeviceKind::Cpu)),
            gpu_cache: AnalyticCache::new(sys.cache_bytes_for(DeviceKind::Gpu)),
            allocator,
            cache_sim: if profile_cache {
                Some(CacheSim::a8_3870k_l2())
            } else {
                None
            },
            counters: ExecCounters::default(),
            morsel_tuples: crate::pipeline::DEFAULT_MORSEL_TUPLES,
            workers: None,
            tuner: None,
        }
    }

    /// Sets the morsel size (tuples) the step pipeline uses; zero is treated
    /// as one tuple per morsel.
    pub fn with_morsel_tuples(mut self, morsel_tuples: usize) -> Self {
        self.morsel_tuples = morsel_tuples.max(1);
        self
    }

    /// Attaches the engine's persistent worker pool, shared by every
    /// session: backends executing under this context submit their morsel
    /// tasks there instead of spawning threads of their own.
    pub fn with_worker_pool(mut self, pool: &'a SharedWorkerPool) -> Self {
        self.workers = Some(pool);
        self
    }

    /// The engine-owned worker pool, when one is attached — spawning its
    /// workers on first access (backends that never call this never cost a
    /// thread).
    pub fn worker_pool(&self) -> Option<&'a WorkerPool> {
        self.workers.map(SharedWorkerPool::get)
    }

    /// Attaches an adaptive runtime tuner; the step pipeline will feed it
    /// telemetry and execute its re-planned ratios.
    pub fn with_tuner(mut self, tuner: hj_adaptive::RatioTuner) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// Detaches the tuner (used by the engine to harvest the adaptation
    /// report after execution).
    pub fn take_tuner(&mut self) -> Option<hj_adaptive::RatioTuner> {
        self.tuner.take()
    }

    /// Tears the context down, handing the allocator (and its arena) back to
    /// the owner for reuse.
    pub fn into_allocator(self) -> Box<dyn KernelAllocator> {
        self.allocator
    }

    /// The [`JoinError::ArenaExhausted`] describing a failed allocation of
    /// `requested` bytes that `phase` made against this context's arena.
    pub fn arena_error(&self, phase: &'static str, requested: usize) -> JoinError {
        JoinError::ArenaExhausted {
            requested,
            capacity: self.allocator.capacity(),
            used: self.allocator.used(),
            phase,
        }
    }

    /// The device of the given kind.
    pub fn device(&self, kind: DeviceKind) -> &Device {
        match kind {
            DeviceKind::Cpu => &self.cpu,
            DeviceKind::Gpu => &self.gpu,
        }
    }

    /// A cost recorder configured with the device's wavefront width.
    pub fn recorder_for(&self, kind: DeviceKind) -> CostRecorder {
        CostRecorder::new(self.device(kind).wavefront_size())
    }

    /// The memory context a kernel with the given random-access working set
    /// sees on the given device.
    pub fn mem_ctx(&self, kind: DeviceKind, working_set_bytes: f64) -> MemContext {
        let cache = match kind {
            DeviceKind::Cpu => &self.cpu_cache,
            DeviceKind::Gpu => &self.gpu_cache,
        };
        MemContext::with_hit_rate(cache.hit_rate(working_set_bytes))
    }

    /// The allocator work-group id for item `offset_in_range` of a kernel of
    /// `range_len` items running on `kind`.
    ///
    /// CPU work groups are 0..[`CPU_WORK_GROUPS`]; GPU work groups follow.
    /// Items are assigned contiguously, as a real work-group decomposition
    /// would.
    pub fn group_for(&self, kind: DeviceKind, offset_in_range: usize, range_len: usize) -> usize {
        let (base, n) = match kind {
            DeviceKind::Cpu => (0, CPU_WORK_GROUPS),
            DeviceKind::Gpu => (CPU_WORK_GROUPS, GPU_WORK_GROUPS),
        };
        if range_len == 0 {
            return base;
        }
        base + (offset_in_range * n / range_len).min(n - 1)
    }

    /// Feeds one address to the exact cache simulator, if enabled.
    #[inline]
    pub fn cache_access(&mut self, addr: u64) {
        if let Some(sim) = self.cache_sim.as_mut() {
            sim.access(addr);
        }
    }

    /// Snapshot of the allocator counters (used to attribute allocator
    /// atomics to the kernel that caused them).
    pub fn alloc_snapshot(&self) -> AllocStats {
        self.allocator.stats()
    }

    /// Finalises run-wide counters that are derived from other state
    /// (allocator totals, cache statistics).
    pub fn finalize_counters(&mut self) {
        self.counters.alloc = self.allocator.stats();
        self.counters.cache = self.cache_sim.as_ref().map(|c| c.stats());
    }
}

/// Sizes the allocator arena for a join of `build_tuples` ⨝ `probe_tuples`:
/// key and rid nodes for every build tuple, partition copies of both
/// relations (PHJ), result pairs for every probe tuple, plus block-allocation
/// slack.
pub fn arena_bytes_for(build_tuples: usize, probe_tuples: usize) -> usize {
    let nodes =
        build_tuples * (crate::hashtable::KEY_NODE_BYTES + crate::hashtable::RID_NODE_BYTES);
    let partitions = (build_tuples + probe_tuples) * 8 * 2;
    let results = probe_tuples * 8 * 2;
    let slack = 4 << 20;
    // Merge re-inserts into a fresh table in the worst (separate-table) case.
    nodes * 2 + partitions + results + slack
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SystemSpec;

    #[test]
    fn devices_and_recorders_match_kind() {
        let sys = SystemSpec::coupled_a8_3870k();
        let ctx = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, false);
        assert_eq!(ctx.device(DeviceKind::Cpu).kind(), DeviceKind::Cpu);
        assert_eq!(ctx.device(DeviceKind::Gpu).wavefront_size(), 64);
    }

    #[test]
    fn mem_ctx_reflects_working_set() {
        let sys = SystemSpec::coupled_a8_3870k();
        let ctx = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, false);
        let small = ctx.mem_ctx(DeviceKind::Cpu, 64.0 * 1024.0);
        let huge = ctx.mem_ctx(DeviceKind::Cpu, 1e9);
        assert!(small.random_hit_rate > 0.9);
        assert!(huge.random_hit_rate < 0.01);
    }

    #[test]
    fn group_assignment_is_contiguous_and_in_range() {
        let sys = SystemSpec::coupled_a8_3870k();
        let ctx = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, false);
        let g0 = ctx.group_for(DeviceKind::Cpu, 0, 1000);
        let g_last = ctx.group_for(DeviceKind::Cpu, 999, 1000);
        assert_eq!(g0, 0);
        assert_eq!(g_last, CPU_WORK_GROUPS - 1);
        let gpu0 = ctx.group_for(DeviceKind::Gpu, 0, 10);
        assert!(gpu0 >= CPU_WORK_GROUPS);
        assert!(ctx.group_for(DeviceKind::Gpu, 9, 10) < CPU_WORK_GROUPS + GPU_WORK_GROUPS);
        // Degenerate empty range still returns a valid group.
        assert_eq!(ctx.group_for(DeviceKind::Cpu, 0, 0), 0);
    }

    #[test]
    fn cache_profiling_is_optional() {
        let sys = SystemSpec::coupled_a8_3870k();
        let mut off = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, false);
        off.cache_access(0x1234);
        off.finalize_counters();
        assert!(off.counters.cache.is_none());

        let mut on = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, true);
        on.cache_access(0x1234);
        on.cache_access(0x1234);
        on.finalize_counters();
        let stats = on.counters.cache.unwrap();
        assert_eq!(stats.accesses(), 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn arena_sizing_covers_node_requirements() {
        let bytes = arena_bytes_for(1000, 2000);
        // At minimum: key+rid nodes for every build tuple.
        assert!(bytes > 1000 * 20);
    }
}
