//! The BasicUnit coarse-grained dynamic scheduler (Appendix A).
//!
//! BasicUnit splits the input into fixed-size chunks and dispatches each
//! chunk, in order, to whichever device becomes idle first; the chunk then
//! runs *all* steps of the phase on that device.  Compared with the paper's
//! fine-grained co-processing it has two deficiencies it demonstrates
//! experimentally (Figure 16): the CPU ends up executing non-CPU-friendly
//! steps (and vice versa), and per-chunk scheduling adds overhead.

use crate::context::ExecContext;
use crate::error::JoinError;
use apu_sim::{DeviceClocks, DeviceKind, SimTime};
use std::ops::Range;

/// Per-chunk dispatch overhead (queue management and kernel launch), charged
/// to the device that receives the chunk.
pub const CHUNK_DISPATCH_OVERHEAD: SimTime = SimTime::ZERO;

/// Default dispatch overhead in nanoseconds (20 µs per chunk).
pub const CHUNK_DISPATCH_OVERHEAD_NS: f64 = 20_000.0;

/// Outcome of scheduling one phase with BasicUnit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChunkSchedule {
    /// Elapsed time of the phase (`max` of the two device clocks).
    pub elapsed: SimTime,
    /// Total busy time of the CPU.
    pub cpu_busy: SimTime,
    /// Total busy time of the GPU.
    pub gpu_busy: SimTime,
    /// Tuples dispatched to the CPU.
    pub cpu_items: usize,
    /// Tuples dispatched to the GPU.
    pub gpu_items: usize,
    /// Number of chunks dispatched.
    pub chunks: usize,
}

impl ChunkSchedule {
    /// The fraction of tuples the CPU ended up processing — the quantity
    /// shown in Figures 17 and 18.
    pub fn cpu_ratio(&self) -> f64 {
        let total = self.cpu_items + self.gpu_items;
        if total == 0 {
            0.0
        } else {
            self.cpu_items as f64 / total as f64
        }
    }
}

/// Greedily schedules `items` tuples in chunks of `chunk` onto the device
/// that becomes idle first.
///
/// `run_chunk(ctx, range, device)` executes the whole phase for the chunk on
/// that device and returns its simulated elapsed time; its error (typically
/// arena exhaustion) aborts the schedule.
pub fn run_chunks<F>(
    ctx: &mut ExecContext<'_>,
    items: usize,
    chunk: usize,
    mut run_chunk: F,
) -> Result<ChunkSchedule, JoinError>
where
    F: FnMut(&mut ExecContext<'_>, Range<usize>, DeviceKind) -> Result<SimTime, JoinError>,
{
    let chunk = chunk.max(1);
    let mut schedule = ChunkSchedule::default();
    let mut clocks = DeviceClocks::new();
    let overhead = SimTime::from_ns(CHUNK_DISPATCH_OVERHEAD_NS);

    let mut start = 0usize;
    while start < items {
        let end = (start + chunk).min(items);
        let device = clocks.idlest();
        let time = run_chunk(ctx, start..end, device)? + overhead;
        clocks.advance(device, time);
        match device {
            DeviceKind::Cpu => {
                schedule.cpu_busy += time;
                schedule.cpu_items += end - start;
            }
            DeviceKind::Gpu => {
                schedule.gpu_busy += time;
                schedule.gpu_items += end - start;
            }
        }
        schedule.chunks += 1;
        start = end;
    }

    schedule.elapsed = clocks.elapsed();
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SystemSpec;
    use mem_alloc::AllocatorKind;

    #[test]
    fn chunks_cover_all_items_exactly_once() {
        let sys = SystemSpec::coupled_a8_3870k();
        let mut ctx = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, false);
        let mut seen = vec![false; 1000];
        let schedule = run_chunks(&mut ctx, 1000, 128, |_, range, _| {
            for i in range {
                assert!(!seen[i], "item {i} dispatched twice");
                seen[i] = true;
            }
            Ok(SimTime::from_us(10.0))
        })
        .unwrap();
        assert!(seen.iter().all(|&s| s));
        assert_eq!(schedule.cpu_items + schedule.gpu_items, 1000);
        assert_eq!(schedule.chunks, 8);
    }

    #[test]
    fn faster_device_receives_more_chunks() {
        let sys = SystemSpec::coupled_a8_3870k();
        let mut ctx = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, false);
        // GPU chunks finish 4x faster than CPU chunks.
        let schedule = run_chunks(&mut ctx, 64_000, 1000, |_, range, device| {
            let per_item = match device {
                DeviceKind::Cpu => 400.0,
                DeviceKind::Gpu => 100.0,
            };
            Ok(SimTime::from_ns(per_item * range.len() as f64))
        })
        .unwrap();
        assert!(
            schedule.gpu_items > 2 * schedule.cpu_items,
            "gpu={} cpu={}",
            schedule.gpu_items,
            schedule.cpu_items
        );
        let r = schedule.cpu_ratio();
        assert!(r > 0.05 && r < 0.45, "cpu ratio {r}");
        // The greedy schedule keeps both devices reasonably balanced.
        let diff = schedule
            .cpu_busy
            .max(schedule.gpu_busy)
            .saturating_sub(schedule.cpu_busy.min(schedule.gpu_busy));
        assert!(diff < schedule.elapsed * 0.2);
    }

    #[test]
    fn dispatch_overhead_is_charged_per_chunk() {
        let sys = SystemSpec::coupled_a8_3870k();
        let mut ctx = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, false);
        let tiny_chunks = run_chunks(&mut ctx, 10_000, 100, |_, _, _| Ok(SimTime::ZERO)).unwrap();
        let big_chunks = run_chunks(&mut ctx, 10_000, 5_000, |_, _, _| Ok(SimTime::ZERO)).unwrap();
        assert!(tiny_chunks.elapsed > big_chunks.elapsed);
    }

    #[test]
    fn empty_input_is_a_noop() {
        let sys = SystemSpec::coupled_a8_3870k();
        let mut ctx = ExecContext::new(&sys, AllocatorKind::tuned(), 1 << 20, false);
        let schedule = run_chunks(&mut ctx, 0, 128, |_, _, _| Ok(SimTime::from_secs(1.0))).unwrap();
        assert_eq!(schedule.chunks, 0);
        assert_eq!(schedule.elapsed, SimTime::ZERO);
        assert_eq!(schedule.cpu_ratio(), 0.0);
    }
}
