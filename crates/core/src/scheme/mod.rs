//! Co-processing schemes: translating a [`Scheme`]
//! into per-phase workload-ratio vectors, plus the chunk-based BasicUnit
//! scheduler of Appendix A.
//!
//! OL and DD are special cases of PL (Section 3.2): OL uses ratios that are
//! all 0 or 1, DD uses the same ratio for every step of a phase.  The
//! BasicUnit baseline is not ratio-based — it dispatches whole chunks of
//! tuples to whichever device becomes idle first — and lives in
//! [`basic_unit`].

pub mod basic_unit;

use crate::config::Scheme;
use crate::schedule::Ratios;

/// Per-phase ratio vectors for ratio-based schemes (everything except
/// BasicUnit).
#[derive(Debug, Clone, PartialEq)]
pub struct RatioPlan {
    /// Ratios for each partition pass (`n1..n3`).
    pub partition: Ratios,
    /// Ratios for the build phase (`b1..b4`).
    pub build: Ratios,
    /// Ratios for the probe phase (`p1..p4`).
    pub probe: Ratios,
}

impl RatioPlan {
    /// Builds the plan for a scheme, or `None` for [`Scheme::BasicUnit`]
    /// (which is not expressible as static ratios).
    pub fn from_scheme(scheme: &Scheme) -> Option<RatioPlan> {
        let plan = match scheme {
            Scheme::CpuOnly => RatioPlan {
                partition: Ratios::cpu_only(3),
                build: Ratios::cpu_only(4),
                probe: Ratios::cpu_only(4),
            },
            Scheme::GpuOnly => RatioPlan {
                partition: Ratios::gpu_only(3),
                build: Ratios::gpu_only(4),
                probe: Ratios::gpu_only(4),
            },
            Scheme::Offload {
                partition_on_cpu,
                build_on_cpu,
                probe_on_cpu,
            } => RatioPlan {
                partition: Ratios::offload(partition_on_cpu),
                build: Ratios::offload(build_on_cpu),
                probe: Ratios::offload(probe_on_cpu),
            },
            Scheme::DataDividing {
                partition_ratio,
                build_ratio,
                probe_ratio,
            } => RatioPlan {
                partition: Ratios::uniform(*partition_ratio, 3),
                build: Ratios::uniform(*build_ratio, 4),
                probe: Ratios::uniform(*probe_ratio, 4),
            },
            Scheme::Pipelined {
                partition,
                build,
                probe,
            } => RatioPlan {
                partition: Ratios::new(partition.to_vec()),
                build: Ratios::new(build.to_vec()),
                probe: Ratios::new(probe.to_vec()),
            },
            Scheme::BasicUnit { .. } => return None,
        };
        Some(plan)
    }

    /// True when the build ratios are uniform, i.e. a tuple stays on one
    /// device for the whole build phase (required for separate hash tables).
    pub fn build_is_uniform(&self) -> bool {
        self.build.is_uniform()
    }

    /// The average CPU share of the build phase (used to size PCI-e
    /// transfers on the discrete topology).
    pub fn build_cpu_share(&self) -> f64 {
        average(self.build.as_slice())
    }

    /// The average CPU share of the probe phase.
    pub fn probe_cpu_share(&self) -> f64 {
        average(self.probe.as_slice())
    }

    /// The average CPU share of a partition pass.
    pub fn partition_cpu_share(&self) -> f64 {
        average(self.partition.as_slice())
    }
}

fn average(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_gpu_only_plans() {
        let cpu = RatioPlan::from_scheme(&Scheme::CpuOnly).unwrap();
        assert_eq!(cpu.build.as_slice(), &[1.0; 4]);
        assert_eq!(cpu.partition.as_slice(), &[1.0; 3]);
        let gpu = RatioPlan::from_scheme(&Scheme::GpuOnly).unwrap();
        assert_eq!(gpu.probe.as_slice(), &[0.0; 4]);
        assert_eq!(gpu.build_cpu_share(), 0.0);
    }

    #[test]
    fn dd_plan_is_uniform_per_phase() {
        let plan = RatioPlan::from_scheme(&Scheme::data_dividing_paper()).unwrap();
        assert!(plan.build.is_uniform());
        assert!(plan.probe.is_uniform());
        assert!(plan.build_is_uniform());
        assert!((plan.build_cpu_share() - 0.26).abs() < 1e-12);
        assert!((plan.probe_cpu_share() - 0.41).abs() < 1e-12);
        assert!((plan.partition_cpu_share() - 0.11).abs() < 1e-12);
    }

    #[test]
    fn ol_plan_is_zero_one() {
        let plan = RatioPlan::from_scheme(&Scheme::offload_gpu()).unwrap();
        assert!(plan.build.as_slice().iter().all(|&r| r == 0.0));
        let mixed = Scheme::Offload {
            partition_on_cpu: [true, false, true],
            build_on_cpu: [false, true, false, true],
            probe_on_cpu: [false; 4],
        };
        let plan = RatioPlan::from_scheme(&mixed).unwrap();
        assert_eq!(plan.partition.as_slice(), &[1.0, 0.0, 1.0]);
        assert_eq!(plan.build.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
        assert!(!plan.build_is_uniform());
    }

    #[test]
    fn pl_plan_keeps_per_step_ratios() {
        let plan = RatioPlan::from_scheme(&Scheme::pipelined_paper()).unwrap();
        assert_eq!(plan.build.len(), 4);
        assert_eq!(plan.probe.len(), 4);
        assert_eq!(plan.partition.len(), 3);
        assert!(!plan.build.is_uniform());
    }

    #[test]
    fn basic_unit_has_no_static_plan() {
        assert!(RatioPlan::from_scheme(&Scheme::basic_unit_default()).is_none());
    }
}
