//! The error type of fallible join execution.
//!
//! The original reproduction panicked on arena exhaustion and silently
//! clamped bad configuration; a long-lived [`JoinEngine`](crate::engine::JoinEngine)
//! serving many requests must instead *reject* a bad request and stay
//! usable, so every failure surfaces as a [`JoinError`].

use std::error::Error;
use std::fmt;

/// Why a join request could not be admitted or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// The software allocator arena ran out of space mid-execution.
    ///
    /// The engine's arena is sized once (from
    /// [`EngineConfig`](crate::engine::EngineConfig)); a request whose
    /// working state outgrows it fails cleanly instead of panicking, and the
    /// engine remains usable for subsequent requests.
    ArenaExhausted {
        /// Bytes of the allocation that failed.
        requested: usize,
        /// Total arena capacity in bytes.
        capacity: usize,
        /// Bytes already handed out when the request failed.
        used: usize,
        /// Which execution phase asked for the allocation ("partition",
        /// "build", "probe", "merge", "coarse join", "out-of-core pair") —
        /// the difference between "your build side is too big" and "your
        /// join result is too big", both for operators debugging a hard
        /// failure and for the spill path deciding what to spill.
        phase: &'static str,
    },
    /// A workload ratio fell outside `[0, 1]` (or was not finite).
    InvalidRatio {
        /// Which step series the ratio belongs to ("partition", "build",
        /// "probe").
        series: &'static str,
        /// Zero-based step index within the series.
        step: usize,
        /// The offending value.
        value: f64,
    },
    /// A BasicUnit chunk size of zero tuples was requested.
    InvalidChunkSize,
    /// The radix-bit count is outside the supported `0..=16` range
    /// (0 selects a size-appropriate default).
    InvalidRadixBits {
        /// The offending value.
        radix_bits: u32,
    },
    /// The input relations need more arena than the engine owns.
    ///
    /// Returned at admission, before any work is done, so an oversized
    /// request cannot corrupt or exhaust the shared arena mid-flight.
    OversizedInput {
        /// Build-relation cardinality of the rejected request.
        build_tuples: usize,
        /// Probe-relation cardinality of the rejected request.
        probe_tuples: usize,
        /// Arena bytes the request would need.
        required_bytes: usize,
        /// Arena bytes the engine owns.
        arena_bytes: usize,
    },
    /// The scheme/algorithm combination has no ratio-based execution plan.
    ///
    /// Returned by the executor when a request reaches the step pipeline
    /// with a scheme that cannot be expressed as per-step workload ratios —
    /// a rejected request rather than a crash (the seed panicked here with
    /// `expect("ratio-based scheme")`).
    InvalidScheme {
        /// Label of the offending scheme (e.g. "BasicUnit").
        scheme: &'static str,
        /// Label of the requested algorithm ("SHJ" / "PHJ").
        algorithm: &'static str,
    },
    /// The engine's session pool and admission queue are both full.
    ///
    /// [`JoinEngine::submit`](crate::engine::JoinEngine::submit) admits up
    /// to `sessions` in-flight requests plus `queue_depth` waiters; further
    /// submissions are rejected with this error so overload produces fast,
    /// typed backpressure instead of unbounded queueing.
    Saturated {
        /// Concurrent sessions the engine was configured with.
        sessions: usize,
        /// Waiting submissions the admission queue holds at most.
        queue_depth: usize,
        /// Requests holding a session at the moment of rejection.
        ///
        /// Snapshotted into the error so a caller planning its backoff
        /// (e.g. the serving layer's retry-after hint) does not need a
        /// separate stats call racing against the state that rejected it.
        in_flight: usize,
        /// Submissions waiting in the admission queue at that moment.
        queued: usize,
    },
    /// A concurrently running cached-table build — which this request
    /// waited on single-flight — failed or panicked.
    ///
    /// The cache entry is discarded, so the *next* request for the table
    /// rebuilds from scratch; this request reports the shared failure
    /// instead of parking forever on a build that will never finish.
    CacheBuildFailed {
        /// Name the table was registered under.
        table: String,
    },
    /// A structurally invalid configuration (mismatched knobs, zero-sized
    /// engine, ...).
    InvalidConfig(String),
    /// The disk-spill path failed: run-file I/O, a corrupt spill frame, or
    /// a spill directory that could not be created.
    ///
    /// Only surfaces when a request opted into spilling
    /// ([`JoinRequestBuilder::spill`](crate::engine::JoinRequestBuilder::spill));
    /// the message carries the underlying [`hj_spill::SpillError`] detail.
    Spill(String),
}

impl From<hj_spill::SpillError> for JoinError {
    fn from(e: hj_spill::SpillError) -> Self {
        JoinError::Spill(e.to_string())
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::ArenaExhausted {
                requested,
                capacity,
                used,
                phase,
            } => write!(
                f,
                "arena exhausted in {phase} phase: allocation of {requested} B failed with \
                 {used}/{capacity} B used ({} B available)",
                capacity.saturating_sub(*used)
            ),
            JoinError::InvalidRatio {
                series,
                step,
                value,
            } => write!(
                f,
                "invalid workload ratio {value} for {series} step {step} (must be in [0, 1])"
            ),
            JoinError::InvalidChunkSize => {
                write!(f, "BasicUnit chunk size must be at least one tuple")
            }
            JoinError::InvalidRadixBits { radix_bits } => {
                write!(
                    f,
                    "radix bits {radix_bits} outside the supported 0..=16 range"
                )
            }
            JoinError::OversizedInput {
                build_tuples,
                probe_tuples,
                required_bytes,
                arena_bytes,
            } => write!(
                f,
                "join of {build_tuples} x {probe_tuples} tuples needs {required_bytes} B of arena \
                 but the engine owns {arena_bytes} B"
            ),
            JoinError::InvalidScheme { scheme, algorithm } => write!(
                f,
                "scheme {scheme} has no ratio-based execution plan for algorithm {algorithm}"
            ),
            JoinError::Saturated {
                sessions,
                queue_depth,
                in_flight,
                queued,
            } => write!(
                f,
                "engine saturated: {in_flight}/{sessions} sessions in flight and \
                 {queued}/{queue_depth} queued submissions already waiting"
            ),
            JoinError::CacheBuildFailed { table } => write!(
                f,
                "cached hash-table build for table '{table}' failed; the entry was discarded \
                 and the next request will rebuild it"
            ),
            JoinError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            JoinError::Spill(reason) => write!(f, "spill path failed: {reason}"),
        }
    }
}

impl Error for JoinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_relevant_numbers() {
        let e = JoinError::ArenaExhausted {
            requested: 64,
            capacity: 1024,
            used: 1000,
            phase: "probe",
        };
        let msg = e.to_string();
        assert!(msg.contains("64") && msg.contains("1024") && msg.contains("1000"));
        assert!(
            msg.contains("probe") && msg.contains("24 B available"),
            "{msg}"
        );

        let e = JoinError::OversizedInput {
            build_tuples: 10,
            probe_tuples: 20,
            required_bytes: 4096,
            arena_bytes: 1024,
        };
        assert!(e.to_string().contains("4096"));

        let e = JoinError::InvalidRatio {
            series: "build",
            step: 2,
            value: 1.5,
        };
        assert!(e.to_string().contains("build step 2"));

        let e = JoinError::InvalidScheme {
            scheme: "BasicUnit",
            algorithm: "SHJ",
        };
        assert!(e.to_string().contains("BasicUnit") && e.to_string().contains("SHJ"));

        let e = JoinError::Saturated {
            sessions: 4,
            queue_depth: 2,
            in_flight: 4,
            queued: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("4/4") && msg.contains("2/2"), "{msg}");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(JoinError::InvalidChunkSize);
        assert!(!e.to_string().is_empty());
    }
}
