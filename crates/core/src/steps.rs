//! Fine-grained step definitions and per-step instruction estimates.
//!
//! Algorithms 1 and 2 of the paper decompose the hash join into per-tuple
//! steps:
//!
//! * partition pass: `n1` compute partition number, `n2` visit the partition
//!   header, `n3` insert the `<key, rid>` pair into the partition;
//! * build: `b1` compute hash bucket number, `b2` visit the bucket header,
//!   `b3` visit the key list (creating a key node if necessary), `b4` insert
//!   the record id into the rid list;
//! * probe: `p1` compute hash bucket number, `p2` visit the bucket header,
//!   `p3` visit the key list, `p4` visit the matching build tuples and emit
//!   output tuples.
//!
//! Each step is data parallel over tuples and separated from the next by a
//! data dependency; a *step series* (build, probe, or one partition pass) is
//! the unit over which the co-processing schemes assign workload ratios.
//!
//! The instruction estimates in [`instr`] play the role of the AMD profiler
//! counts the paper feeds into its cost model (`#I^i_XPU` in Table 2); they
//! are per-tuple (or per-node for list traversals) and deliberately include
//! the OpenCL work-item dispatch overhead, which is why the hash steps cost
//! far more than a bare Murmur evaluation.

/// Identifier of one fine-grained step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepId {
    /// Partition: compute partition number.
    N1,
    /// Partition: visit the partition header.
    N2,
    /// Partition: insert the `<key, rid>` pair into the partition.
    N3,
    /// Build: compute hash bucket number.
    B1,
    /// Build: visit the hash bucket header.
    B2,
    /// Build: visit the key list, creating a key node if necessary.
    B3,
    /// Build: insert the record id into the rid list.
    B4,
    /// Probe: compute hash bucket number.
    P1,
    /// Probe: visit the hash bucket header.
    P2,
    /// Probe: visit the key list.
    P3,
    /// Probe: visit matching build tuples and produce output tuples.
    P4,
}

impl StepId {
    /// The steps of one partition pass, in order.
    pub const PARTITION: [StepId; 3] = [StepId::N1, StepId::N2, StepId::N3];
    /// The steps of the build phase, in order.
    pub const BUILD: [StepId; 4] = [StepId::B1, StepId::B2, StepId::B3, StepId::B4];
    /// The steps of the probe phase, in order.
    pub const PROBE: [StepId; 4] = [StepId::P1, StepId::P2, StepId::P3, StepId::P4];
    /// Every step of PHJ in execution order (one partition pass shown).
    pub const ALL: [StepId; 11] = [
        StepId::N1,
        StepId::N2,
        StepId::N3,
        StepId::B1,
        StepId::B2,
        StepId::B3,
        StepId::B4,
        StepId::P1,
        StepId::P2,
        StepId::P3,
        StepId::P4,
    ];

    /// Lower-case label ("n1", "b3", ...), matching Figure 4's x axis.
    pub fn label(self) -> &'static str {
        match self {
            StepId::N1 => "n1",
            StepId::N2 => "n2",
            StepId::N3 => "n3",
            StepId::B1 => "b1",
            StepId::B2 => "b2",
            StepId::B3 => "b3",
            StepId::B4 => "b4",
            StepId::P1 => "p1",
            StepId::P2 => "p2",
            StepId::P3 => "p3",
            StepId::P4 => "p4",
        }
    }

    /// True for the hash-value computation steps (`n1`, `b1`, `p1`), which
    /// the GPU accelerates by more than 15x in the paper.
    pub fn is_hash_step(self) -> bool {
        matches!(self, StepId::N1 | StepId::B1 | StepId::P1)
    }

    /// The step series this step belongs to and its zero-based index within
    /// the series — the coordinates the adaptive tuner addresses telemetry
    /// and re-planned ratios by.
    pub fn series_index(self) -> (crate::pipeline::StepSeries, usize) {
        use crate::pipeline::StepSeries;
        match self {
            StepId::N1 => (StepSeries::Partition, 0),
            StepId::N2 => (StepSeries::Partition, 1),
            StepId::N3 => (StepSeries::Partition, 2),
            StepId::B1 => (StepSeries::Build, 0),
            StepId::B2 => (StepSeries::Build, 1),
            StepId::B3 => (StepSeries::Build, 2),
            StepId::B4 => (StepSeries::Build, 3),
            StepId::P1 => (StepSeries::Probe, 0),
            StepId::P2 => (StepSeries::Probe, 1),
            StepId::P3 => (StepSeries::Probe, 2),
            StepId::P4 => (StepSeries::Probe, 3),
        }
    }
}

impl std::fmt::Display for StepId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-tuple (or per-node) dynamic-instruction estimates for each step,
/// standing in for the AMD CodeXL / APP Profiler measurements the paper uses
/// to instantiate its cost model (Section 4.2).
pub mod instr {
    /// Hash-value computation steps (`n1`, `b1`, `p1`): MurmurHash 2.0,
    /// bucket masking and the OpenCL work-item overhead.
    pub const HASH: f64 = 180.0;
    /// Visiting a bucket or partition header (`n2`, `b2`, `p2`).
    pub const VISIT_HEADER: f64 = 24.0;
    /// Walking one node of a key list (`b3`, `p3`), per node visited.
    pub const KEY_NODE_VISIT: f64 = 28.0;
    /// Creating and linking a new key node (`b3` when the key is new).
    pub const KEY_NODE_CREATE: f64 = 40.0;
    /// Inserting a record id into a rid list (`b4`).
    pub const RID_INSERT: f64 = 30.0;
    /// Visiting one matching rid node and emitting an output pair (`p4`).
    pub const OUTPUT_MATCH: f64 = 26.0;
    /// Scattering one `<key, rid>` pair into its partition (`n3`).
    pub const PARTITION_INSERT: f64 = 42.0;
    /// Reordering overhead per tuple of the grouping-based divergence
    /// optimisation (Section 3.3), charged when grouping is enabled.
    pub const GROUPING_PER_TUPLE: f64 = 14.0;
    /// Per-tuple cost of the merge step that separate hash tables require:
    /// the destination bucket is recomputed (a hash evaluation) and the
    /// `<key, rid>` pair is re-inserted into the destination table.
    pub const MERGE_PER_TUPLE: f64 = 230.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_series_have_expected_lengths() {
        assert_eq!(StepId::PARTITION.len(), 3);
        assert_eq!(StepId::BUILD.len(), 4);
        assert_eq!(StepId::PROBE.len(), 4);
        assert_eq!(StepId::ALL.len(), 11);
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(StepId::N1.label(), "n1");
        assert_eq!(StepId::B3.label(), "b3");
        assert_eq!(StepId::P4.label(), "p4");
        assert_eq!(format!("{}", StepId::B2), "b2");
    }

    #[test]
    fn hash_steps_are_flagged() {
        assert!(StepId::N1.is_hash_step());
        assert!(StepId::B1.is_hash_step());
        assert!(StepId::P1.is_hash_step());
        assert!(!StepId::B2.is_hash_step());
        assert!(!StepId::P3.is_hash_step());
    }

    #[test]
    fn hash_step_is_most_expensive_per_tuple() {
        // The premise of off-loading hash computation to the GPU: it is the
        // instruction-heaviest step.
        const { assert!(instr::HASH > instr::KEY_NODE_CREATE) };
        const { assert!(instr::HASH > instr::PARTITION_INSERT) };
    }
}
