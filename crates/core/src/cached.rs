//! The build-side hash-table cache: register-once tables, probe-only joins.
//!
//! Serving traffic joins the same base tables thousands of times; rebuilding
//! the build-side hash table per request wastes the dominant share of each
//! join.  This module provides the pieces the engine composes into its
//! table registry and cache:
//!
//! * [`TableHandle`] — a versioned, cheaply clonable reference to a
//!   registered build relation
//!   ([`JoinEngine::register_table`](crate::engine::JoinEngine::register_table)).
//! * [`CachedTable`] — an immutable, `Arc`-shared built hash table living on
//!   the ordinary heap, **outside** every per-session arena, probed
//!   concurrently by any number of sessions.
//! * `HashTableCache` (crate-internal) — the engine-wide map from
//!   `(table id, version, build-relevant parameters)` to built tables:
//!   **single-flight** builds (concurrent misses on one key wait for one
//!   builder instead of duplicating work), bytes charged to the spill
//!   subsystem's [`MemoryBroker`], and LRU eviction driven both by grant
//!   denial and by the broker's fair-share reclaim signal.
//!
//! A builder that fails — or panics — must not wedge its waiters: the slot
//! is marked failed, every waiter receives a typed
//! [`JoinError::CacheBuildFailed`], and the entry is discarded so the next
//! request rebuilds from scratch.  All locking goes through the engine's
//! poisoning-recovery helpers, so one panicked build cannot brick the cache.

use crate::build::{run_build_phase, BuildTarget};
use crate::config::{Algorithm, HashTableMode, StepGranularity};
use crate::context::ExecContext;
use crate::engine::JoinRequest;
use crate::error::JoinError;
use crate::hashtable::{HashTable, BUCKET_HEADER_BYTES};
use crate::partition::{default_radix_bits, run_partition_pass};
use crate::result::JoinOutcome;
use crate::scheme::RatioPlan;
use apu_sim::DeviceKind;
use datagen::Relation;
use hj_analysis::sync::{Condvar, Mutex};
use hj_metrics::LatencyHistogram;
use hj_spill::{MemoryBroker, MemoryGrant};
use std::collections::HashMap;
use std::sync::Arc;

/// A versioned reference to a relation registered with
/// [`JoinEngine::register_table`](crate::engine::JoinEngine::register_table).
///
/// The handle *owns* (shares) the registered tuples, so it stays valid — and
/// [`submit_cached`](crate::engine::JoinEngine::submit_cached) stays correct —
/// even after the name is re-registered; a stale handle simply joins against
/// the version of the data it was issued for.  Cached hash tables are keyed
/// by `(id, version)`, so re-registration can never serve stale builds to
/// holders of the *new* handle.
#[derive(Debug, Clone)]
#[must_use = "a handle that is dropped unused did not join anything"]
pub struct TableHandle {
    pub(crate) id: u64,
    pub(crate) version: u64,
    pub(crate) name: Arc<str>,
    pub(crate) tuples: Arc<Relation>,
}

impl TableHandle {
    /// The engine-unique table id (stable across re-registrations).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The registration version (1 for a fresh name, bumped on each
    /// re-registration of the same name).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The name the table was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered build relation.
    pub fn tuples(&self) -> &Relation {
        &self.tuples
    }
}

/// The build-relevant parameters (beyond table identity) distinguishing
/// cached tables a backend builds for a request.
///
/// Returned by [`ExecBackend::cache_params`](crate::engine::ExecBackend::cache_params);
/// `None` from that method means "this backend/request combination cannot be
/// served from a cached table" and the engine falls back to a full
/// per-request build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Resolved radix partitioning `(bits, passes)`; `(0, 0)` for an
    /// unpartitioned (SHJ or native) build.
    pub partitioning: (u32, u32),
    /// Whether build-side software grouping reorders insertions (it changes
    /// rid-list order, hence the byte layout probes observe).
    pub grouping: bool,
}

/// The full cache key: which registered data, which build shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) table_id: u64,
    pub(crate) version: u64,
    pub(crate) backend: &'static str,
    pub(crate) params: CacheParams,
}

/// An immutable built hash table, shared across sessions by `Arc`.
///
/// Lives on the ordinary heap — **outside** every per-session arena — with
/// its bytes charged to the engine's [`MemoryBroker`] while cached.
#[derive(Debug)]
pub struct CachedTable {
    pub(crate) payload: CachedPayload,
    pub(crate) bytes: usize,
    /// Wall-clock nanoseconds the build took; accumulated into
    /// `build_ns_saved` on every cache hit.
    pub(crate) build_ns: u64,
    pub(crate) build_tuples: usize,
}

impl CachedTable {
    /// Resident bytes of the built structure (the amount charged to the
    /// memory broker while the entry is cached).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Build-relation cardinality the table was built from.
    pub fn build_tuples(&self) -> usize {
        self.build_tuples
    }
}

/// What a backend actually stores for one cached build side.
#[derive(Debug)]
pub(crate) enum CachedPayload {
    /// Simulator backends: one chained [`HashTable`] per radix partition
    /// (a single table with `bits == 0` for SHJ).
    Sim {
        tables: Vec<HashTable>,
        bits: u32,
        passes: u32,
    },
    /// The native backend's read-only shard maps (`hash(key) % shards`
    /// addressing, rid vectors in build order).
    Native { shards: Vec<HashMap<u32, Vec<u32>>> },
}

fn sim_tables_bytes(tables: &[HashTable]) -> usize {
    tables
        .iter()
        .map(HashTable::total_bytes)
        .sum::<usize>()
        .max(BUCKET_HEADER_BYTES)
}

fn native_shards_bytes(shards: &[HashMap<u32, Vec<u32>>]) -> usize {
    // Accounting estimate: hash-map slot + key + Vec header per distinct
    // key, 4 B per stored rid.
    shards
        .iter()
        .map(|m| {
            let rids: usize = m.values().map(Vec::len).sum();
            m.len() * 48 + rids * 4
        })
        .sum::<usize>()
        .max(64)
}

// ---------------------------------------------------------------------------
// Simulator build/probe paths (shared by CoupledSim; DiscreteSim opts out)
// ---------------------------------------------------------------------------

/// Whether a simulator backend can serve `request` from a cached table, and
/// with which build-relevant parameters.
///
/// Declines whenever the uncached executor would do build-side work a shared
/// immutable payload cannot represent: BasicUnit chunk scheduling, the
/// coarse-grained PHJ (per-device private tables), separate per-device
/// tables, out-of-core chunking, spilling, exact cache profiling (which
/// wants the full pipeline observed), and any discrete (PCI-e) topology,
/// where shared-table selection and transfer accounting are derived from the
/// per-request plan.
pub(crate) fn sim_cache_params(
    sys: &apu_sim::SystemSpec,
    request: &JoinRequest,
    build_tuples: usize,
) -> Option<CacheParams> {
    if sys.is_discrete()
        || request.out_of_core_chunk().is_some()
        || request.spill_config().is_some()
    {
        return None;
    }
    let cfg = request.config();
    if cfg.profile_cache || cfg.hash_table == HashTableMode::Separate {
        return None;
    }
    if matches!(cfg.algorithm, Algorithm::Partitioned { .. })
        && cfg.granularity == StepGranularity::Coarse
    {
        return None;
    }
    RatioPlan::from_scheme(&cfg.scheme)?;
    Some(CacheParams {
        partitioning: sim_partitioning(request, build_tuples, sys),
        grouping: cfg.grouping,
    })
}

/// The partitioning a simulator build of `request` over `build_tuples`
/// tuples resolves to: `(0, 0)` for SHJ, resolved `(bits, passes)` for PHJ.
pub(crate) fn sim_partitioning(
    request: &JoinRequest,
    build_tuples: usize,
    sys: &apu_sim::SystemSpec,
) -> (u32, u32) {
    match request.config().algorithm {
        Algorithm::Simple => (0, 0),
        Algorithm::Partitioned { radix_bits, passes } => {
            let bits = if radix_bits == 0 {
                default_radix_bits(build_tuples, sys.cache_bytes_for(DeviceKind::Cpu))
            } else {
                radix_bits
            };
            (bits, passes.max(1))
        }
    }
}

/// Radix-partitions `rel` exactly as the uncached executor does (empty
/// inputs fan out without running a pass), without charging transfers — the
/// cached path only serves non-discrete systems.
fn partition_for_cache(
    ctx: &mut ExecContext<'_>,
    rel: &Relation,
    bits: u32,
    passes: u32,
    plan: &RatioPlan,
    probe_outcome: Option<&mut JoinOutcome>,
) -> Result<Vec<Relation>, JoinError> {
    let fanout = 1usize << bits;
    let mut parts = vec![rel.clone()];
    let mut outcome = probe_outcome;
    for pass in 0..passes {
        let mut next = Vec::with_capacity(parts.len() * fanout);
        for p in &parts {
            if p.is_empty() {
                next.extend((0..fanout).map(|_| Relation::new()));
                continue;
            }
            let (ps, phase) = run_partition_pass(ctx, p, bits, pass, &plan.partition)?;
            if let Some(outcome) = outcome.as_deref_mut() {
                record_phase(ctx, outcome, phase);
            }
            next.extend(ps);
        }
        parts = next;
    }
    Ok(parts)
}

fn record_phase(
    ctx: &mut ExecContext<'_>,
    outcome: &mut JoinOutcome,
    phase: crate::phase::PhaseExecution,
) {
    outcome.breakdown.add(phase.phase, phase.elapsed());
    ctx.counters.intermediate_tuples += phase.intermediate_tuples;
    outcome.phases.push(phase);
}

/// Builds the cacheable payload for a simulator backend: the per-partition
/// chained hash tables of `build` under `request`'s scheme and algorithm.
pub(crate) fn sim_build_cached(
    ctx: &mut ExecContext<'_>,
    build: &Relation,
    request: &JoinRequest,
) -> Result<CachedTable, JoinError> {
    let cfg = request.config();
    let plan = RatioPlan::from_scheme(&cfg.scheme).ok_or(JoinError::InvalidScheme {
        scheme: cfg.scheme.label(),
        algorithm: cfg.algorithm.label(),
    })?;
    let (bits, passes) = sim_partitioning(request, build.len(), ctx.sys);
    let parts = if bits == 0 {
        vec![build.clone()]
    } else {
        partition_for_cache(ctx, build, bits, passes, &plan, None)?
    };
    let mut tables = Vec::with_capacity(parts.len());
    for part in &parts {
        let mut table = HashTable::for_build_size(part.len());
        run_build_phase(
            ctx,
            part,
            BuildTarget::Shared(&mut table),
            &plan.build,
            cfg.grouping,
        )?;
        tables.push(table);
    }
    let bytes = sim_tables_bytes(&tables);
    Ok(CachedTable {
        payload: CachedPayload::Sim {
            tables,
            bits,
            passes,
        },
        bytes,
        build_ns: 0,
        build_tuples: build.len(),
    })
}

/// Probes `probe` against a cached simulator payload: the probe-only hot
/// path (probe-side partitioning still runs per request; build phases are
/// skipped entirely).
pub(crate) fn sim_probe_cached(
    ctx: &mut ExecContext<'_>,
    cached: &CachedTable,
    probe: &Relation,
    request: &JoinRequest,
) -> Result<JoinOutcome, JoinError> {
    let cfg = request.config();
    let plan = RatioPlan::from_scheme(&cfg.scheme).ok_or(JoinError::InvalidScheme {
        scheme: cfg.scheme.label(),
        algorithm: cfg.algorithm.label(),
    })?;
    let CachedPayload::Sim {
        tables,
        bits,
        passes,
    } = &cached.payload
    else {
        return Err(JoinError::InvalidConfig(
            "cached table was built by a different backend kind".to_string(),
        ));
    };
    let mut outcome = JoinOutcome::default();
    if *bits == 0 {
        let (out, phase) = crate::probe::run_probe_phase(
            ctx,
            probe,
            &tables[0],
            &plan.probe,
            cfg.grouping,
            cfg.collect_results,
        )?;
        outcome.matches += out.matches;
        if let Some(pairs) = out.pairs {
            outcome.pairs.get_or_insert_with(Vec::new).extend(pairs);
        }
        record_phase(ctx, &mut outcome, phase);
        return Ok(outcome);
    }
    let parts = partition_for_cache(ctx, probe, *bits, *passes, &plan, Some(&mut outcome))?;
    // Single-thread shape check (partition fan-out arithmetic), not a
    // cross-thread invariant — a debug assert is the right strength.
    debug_assert_eq!(parts.len(), tables.len()); // hj-lint: allow(debug-assert-concurrency)
    for (s_p, table) in parts.iter().zip(tables.iter()) {
        if table.tuple_count() == 0 && s_p.is_empty() {
            continue;
        }
        let (out, phase) = crate::probe::run_probe_phase(
            ctx,
            s_p,
            table,
            &plan.probe,
            cfg.grouping,
            cfg.collect_results,
        )?;
        outcome.matches += out.matches;
        if let Some(pairs) = out.pairs {
            outcome.pairs.get_or_insert_with(Vec::new).extend(pairs);
        }
        record_phase(ctx, &mut outcome, phase);
    }
    Ok(outcome)
}

/// Builds the native backend's shard maps from `build` (the scatter/fold
/// stages of the native join, minus the probe).
pub(crate) fn native_build_shards(
    pool: &crate::pipeline::WorkerPool,
    build: &Relation,
    morsel: usize,
) -> Vec<HashMap<u32, Vec<u32>>> {
    let shard_count = pool.workers();
    let build_morsels = crate::pipeline::morsel_ranges(build.len(), morsel);
    let scattered: Vec<Vec<Vec<(u32, u32)>>> = pool.run(build_morsels.len(), |_, task| {
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shard_count];
        for i in build_morsels[task].clone() {
            let key = build.key(i);
            buckets[crate::hash::hash_key(key) as usize % shard_count].push((key, build.rid(i)));
        }
        buckets
    });
    let scattered_ref = &scattered;
    pool.run(shard_count, |_, shard| {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for buckets in scattered_ref {
            for &(key, rid) in &buckets[shard] {
                map.entry(key).or_default().push(rid);
            }
        }
        map
    })
}

/// Wraps native shard maps as a cached payload with accounted bytes.
pub(crate) fn native_cached_table(
    shards: Vec<HashMap<u32, Vec<u32>>>,
    build_tuples: usize,
) -> CachedTable {
    let bytes = native_shards_bytes(&shards);
    CachedTable {
        payload: CachedPayload::Native { shards },
        bytes,
        build_ns: 0,
        build_tuples,
    }
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

/// Point-in-time counters of the engine's hash-table cache
/// ([`EngineStats::cache`](crate::engine::EngineStats::cache)).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Requests served from an already-built cached table (including
    /// single-flight waiters that received the winner's build).
    pub hits: u64,
    /// Requests that initiated a cached build (single-flight: N concurrent
    /// misses on one key count one miss and N−1 hits).
    pub misses: u64,
    /// Entries evicted under memory pressure (grant denial or the broker's
    /// fair-share reclaim signal).
    pub evictions: u64,
    /// Entries dropped because their table was re-registered (version bump).
    pub invalidations: u64,
    /// Bytes currently charged to the memory broker for cached tables.
    pub bytes: usize,
    /// Built tables currently resident.
    pub entries: usize,
    /// Cumulative build nanoseconds that cache hits did **not** re-spend.
    pub build_ns_saved: u64,
    /// Latency distribution of the cached builds themselves (log2 ns
    /// buckets; one sample per miss that completed its build).
    pub build_latency: LatencyHistogram,
}

/// One slot of the cache map.
enum Slot {
    /// A builder is constructing this entry; `waiting` counts single-flight
    /// waiters parked on it.
    Building { waiting: usize },
    /// Built and probe-ready.
    Ready {
        table: Arc<CachedTable>,
        last_used: u64,
    },
    /// The builder failed or panicked; drains its waiters with a typed
    /// error, then the entry is removed so the next request rebuilds.
    Failed { waiting: usize },
}

struct CacheInner {
    entries: HashMap<CacheKey, Slot>,
    /// The cache's memory-broker session; created on first insert, dropped
    /// (releasing every byte) when the cache empties out — so an unused
    /// cache never skews the broker's fair shares for spilling sessions.
    grant: Option<MemoryGrant>,
    /// Monotonic use counter driving LRU ordering.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    build_ns_saved: u64,
    build_latency: LatencyHistogram,
}

/// Registered metric handles the cache updates alongside its lock-held
/// counters, so the engine's wire-exposed registry and [`CacheStats`]
/// always agree.  Constructed by the engine from its registry
/// ([`CacheMetrics::register`]) or detached for tests
/// ([`CacheMetrics::unregistered`]).
pub(crate) struct CacheMetrics {
    hits: Arc<hj_metrics::Counter>,
    misses: Arc<hj_metrics::Counter>,
    evictions: Arc<hj_metrics::Counter>,
    invalidations: Arc<hj_metrics::Counter>,
    build_ns_saved: Arc<hj_metrics::Counter>,
    build_latency: Arc<hj_metrics::AtomicHistogram>,
}

impl CacheMetrics {
    /// Registers the cache's metric families in `registry`.
    pub(crate) fn register(registry: &hj_metrics::MetricsRegistry) -> Self {
        CacheMetrics {
            hits: registry.counter(
                "hj_cache_hits_total",
                "Probe requests served from a cached hash table",
            ),
            misses: registry.counter(
                "hj_cache_misses_total",
                "Cache misses (= single-flight builds initiated)",
            ),
            evictions: registry.counter(
                "hj_cache_evictions_total",
                "Cached tables evicted (LRU) under broker pressure",
            ),
            invalidations: registry.counter(
                "hj_cache_invalidations_total",
                "Cached tables invalidated by table re-registration",
            ),
            build_ns_saved: registry.counter(
                "hj_cache_build_ns_saved_total",
                "Build nanoseconds cache hits avoided re-spending",
            ),
            build_latency: registry.histogram(
                "hj_cache_build_latency_ns",
                "Wall-clock latency of single-flight cache builds (ns)",
            ),
        }
    }

    /// Handles not attached to any registry (unit tests drive the cache
    /// without an engine).
    #[cfg(test)]
    pub(crate) fn unregistered() -> Self {
        CacheMetrics {
            hits: Arc::new(hj_metrics::Counter::default()),
            misses: Arc::new(hj_metrics::Counter::default()),
            evictions: Arc::new(hj_metrics::Counter::default()),
            invalidations: Arc::new(hj_metrics::Counter::default()),
            build_ns_saved: Arc::new(hj_metrics::Counter::default()),
            build_latency: Arc::new(hj_metrics::AtomicHistogram::default()),
        }
    }
}

/// The engine-wide cache of built hash tables.  See the
/// [module docs](self) for the single-flight and eviction protocol.
pub(crate) struct HashTableCache {
    broker: MemoryBroker,
    inner: Mutex<CacheInner>,
    built: Condvar,
    metrics: CacheMetrics,
}

/// Marks the in-flight build slot failed if the builder unwinds (or errors)
/// before disarming: waiters wake into a typed error instead of parking
/// forever, and the next request rebuilds.
#[must_use = "the guard must stay armed until the build has succeeded"]
struct BuildFailureGuard<'a> {
    cache: &'a HashTableCache,
    key: CacheKey,
    armed: bool,
}

impl Drop for BuildFailureGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut inner = self.cache.inner.lock();
        match inner.entries.get(&self.key) {
            Some(Slot::Building { waiting }) => {
                if *waiting == 0 {
                    inner.entries.remove(&self.key);
                } else {
                    let waiting = *waiting;
                    inner
                        .entries
                        .insert(self.key.clone(), Slot::Failed { waiting });
                }
            }
            _ => return,
        }
        drop(inner);
        self.cache.built.notify_all();
    }
}

impl HashTableCache {
    pub(crate) fn new(broker: MemoryBroker, metrics: CacheMetrics) -> Self {
        HashTableCache {
            broker,
            inner: Mutex::new(
                "cache.inner",
                CacheInner {
                    entries: HashMap::new(),
                    grant: None,
                    tick: 0,
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                    invalidations: 0,
                    build_ns_saved: 0,
                    build_latency: LatencyHistogram::new(),
                },
            ),
            built: Condvar::new(),
            metrics,
        }
    }

    /// Returns the cached table for `key`, building it single-flight on a
    /// miss: concurrent misses on the same key park until the one builder
    /// finishes (or fails, which surfaces as
    /// [`JoinError::CacheBuildFailed`] to every waiter).
    pub(crate) fn get_or_build(
        &self,
        key: CacheKey,
        table_name: &str,
        build: impl FnOnce() -> Result<CachedTable, JoinError>,
    ) -> Result<Arc<CachedTable>, JoinError> {
        let mut inner = self.inner.lock();
        loop {
            match inner.entries.get_mut(&key) {
                Some(Slot::Ready { table, .. }) => {
                    let table = Arc::clone(table);
                    inner.tick += 1;
                    let tick = inner.tick;
                    if let Some(Slot::Ready { last_used, .. }) = inner.entries.get_mut(&key) {
                        *last_used = tick;
                    }
                    inner.hits += 1;
                    inner.build_ns_saved += table.build_ns;
                    self.metrics.hits.inc();
                    self.metrics.build_ns_saved.add(table.build_ns);
                    self.service_reclaim(&mut inner);
                    return Ok(table);
                }
                Some(Slot::Building { waiting }) => {
                    *waiting += 1;
                    loop {
                        inner = self.built.wait(inner);
                        match inner.entries.get_mut(&key) {
                            Some(Slot::Building { .. }) => continue,
                            Some(Slot::Failed { waiting }) => {
                                *waiting -= 1;
                                if *waiting == 0 {
                                    inner.entries.remove(&key);
                                }
                                return Err(JoinError::CacheBuildFailed {
                                    table: table_name.to_string(),
                                });
                            }
                            // Ready (hit) or removed (rebuild race): re-enter
                            // the outer state machine.
                            _ => break,
                        }
                    }
                }
                Some(Slot::Failed { waiting }) => {
                    if *waiting == 0 {
                        // Fully drained: discard the tombstone and rebuild.
                        inner.entries.remove(&key);
                        continue;
                    }
                    return Err(JoinError::CacheBuildFailed {
                        table: table_name.to_string(),
                    });
                }
                None => {
                    inner
                        .entries
                        .insert(key.clone(), Slot::Building { waiting: 0 });
                    break;
                }
            }
        }
        drop(inner);

        // Build outside the lock; the guard turns an unwind (or error
        // return) into a drained Failed slot instead of a wedged cache.
        let mut guard = BuildFailureGuard {
            cache: self,
            key: key.clone(),
            armed: true,
        };
        let started = std::time::Instant::now();
        let mut table = build()?;
        table.build_ns = started.elapsed().as_nanos() as u64;
        guard.armed = false;

        let mut inner = self.inner.lock();
        inner.misses += 1;
        inner.build_latency.record(table.build_ns);
        self.metrics.misses.inc();
        self.metrics.build_latency.record(table.build_ns);
        let bytes = table.bytes;
        if inner.grant.is_none() {
            inner.grant = Some(self.broker.session());
        }
        let mut charged = false;
        loop {
            let grant = inner.grant.as_ref().expect("grant just ensured");
            match grant.try_grow(bytes) {
                Ok(()) => {
                    charged = true;
                    break;
                }
                Err(_) => {
                    if self.evict_lru(&mut inner).is_none() {
                        break;
                    }
                }
            }
        }
        let table = Arc::new(table);
        if charged {
            let tick = inner.tick + 1;
            inner.tick = tick;
            inner.entries.insert(
                key,
                Slot::Ready {
                    table: Arc::clone(&table),
                    last_used: tick,
                },
            );
        } else {
            // Even a fully drained cache cannot admit this table: serve the
            // request one-shot, uncached, and let waiters rebuild (they will
            // land here too — correctness over amortisation under a budget
            // this tight).
            inner.entries.remove(&key);
        }
        self.service_reclaim(&mut inner);
        self.release_grant_if_idle(&mut inner);
        drop(inner);
        self.built.notify_all();
        Ok(table)
    }

    /// Evicts the least-recently-used ready entry, returning its byte size.
    fn evict_lru(&self, inner: &mut CacheInner) -> Option<usize> {
        let victim = inner
            .entries
            .iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Ready { last_used, .. } => Some((*last_used, k.clone())),
                _ => None,
            })
            .min_by_key(|(stamp, _)| *stamp)?
            .1;
        let Some(Slot::Ready { table, .. }) = inner.entries.remove(&victim) else {
            return None;
        };
        if let Some(grant) = &inner.grant {
            grant.shrink(table.bytes);
        }
        inner.evictions += 1;
        self.metrics.evictions.inc();
        Some(table.bytes)
    }

    /// Honours the broker's fair-share reclaim signal: while another session
    /// is starved and this cache holds more than its share, shed LRU entries.
    fn service_reclaim(&self, inner: &mut CacheInner) {
        let want = match &inner.grant {
            Some(grant) => grant.reclaim_request(),
            None => return,
        };
        if want == 0 {
            return;
        }
        let mut freed = 0usize;
        while freed < want {
            match self.evict_lru(inner) {
                Some(bytes) => freed += bytes,
                None => break,
            }
        }
        self.release_grant_if_idle(inner);
    }

    /// Drops the broker session once nothing is cached or building, so an
    /// idle cache stops counting against the broker's fair shares.
    fn release_grant_if_idle(&self, inner: &mut CacheInner) {
        if inner.entries.is_empty() {
            if let Some(grant) = inner.grant.take() {
                // A cross-thread accounting invariant (the grant's byte count is
                // shared with the broker), so it must hold in release builds
                // too — a debug_assert here would let a production cache leak
                // broker budget silently.
                assert_eq!(grant.granted(), 0, "empty cache must hold zero bytes");
                drop(grant);
            }
        }
    }

    /// Drops every cached build of `table_id` (any version): called on
    /// re-registration, before the bumped version can be requested.
    pub(crate) fn invalidate_table(&self, table_id: u64) {
        let mut inner = self.inner.lock();
        let victims: Vec<CacheKey> = inner
            .entries
            .iter()
            .filter(|(k, slot)| k.table_id == table_id && matches!(slot, Slot::Ready { .. }))
            .map(|(k, _)| k.clone())
            .collect();
        for key in victims {
            if let Some(Slot::Ready { table, .. }) = inner.entries.remove(&key) {
                if let Some(grant) = &inner.grant {
                    grant.shrink(table.bytes);
                }
                inner.invalidations += 1;
                self.metrics.invalidations.inc();
            }
        }
        self.release_grant_if_idle(&mut inner);
    }

    /// A point-in-time stats snapshot.
    pub(crate) fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            bytes: inner.grant.as_ref().map_or(0, MemoryGrant::granted),
            entries: inner
                .entries
                .values()
                .filter(|slot| matches!(slot, Slot::Ready { .. }))
                .count(),
            build_ns_saved: inner.build_ns_saved,
            build_latency: inner.build_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(table_id: u64, version: u64) -> CacheKey {
        CacheKey {
            table_id,
            version,
            backend: "test",
            params: CacheParams {
                partitioning: (0, 0),
                grouping: false,
            },
        }
    }

    fn table(bytes: usize) -> CachedTable {
        CachedTable {
            payload: CachedPayload::Native { shards: Vec::new() },
            bytes,
            build_ns: 1_000,
            build_tuples: 0,
        }
    }

    #[test]
    fn hit_after_miss_reuses_the_build() {
        let cache = HashTableCache::new(MemoryBroker::unlimited(), CacheMetrics::unregistered());
        let a = cache
            .get_or_build(key(1, 1), "t", || Ok(table(100)))
            .unwrap();
        let b = cache
            .get_or_build(key(1, 1), "t", || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.bytes, 100);
        assert_eq!(stats.build_ns_saved, a.build_ns);
    }

    #[test]
    fn lru_eviction_under_a_tight_budget() {
        let cache = HashTableCache::new(MemoryBroker::new(250), CacheMetrics::unregistered());
        cache
            .get_or_build(key(1, 1), "a", || Ok(table(100)))
            .unwrap();
        cache
            .get_or_build(key(2, 1), "b", || Ok(table(100)))
            .unwrap();
        // Touch table 1 so table 2 is the LRU victim.
        cache
            .get_or_build(key(1, 1), "a", || unreachable!())
            .unwrap();
        cache
            .get_or_build(key(3, 1), "c", || Ok(table(100)))
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 250);
        // Table 1 survived; table 2 was evicted.
        cache
            .get_or_build(key(1, 1), "a", || unreachable!())
            .unwrap();
        let mut rebuilt = false;
        cache
            .get_or_build(key(2, 1), "b", || {
                rebuilt = true;
                Ok(table(100))
            })
            .unwrap();
        assert!(rebuilt, "the evicted entry must rebuild");
    }

    #[test]
    fn oversized_table_is_served_uncached() {
        let cache = HashTableCache::new(MemoryBroker::new(50), CacheMetrics::unregistered());
        let t = cache
            .get_or_build(key(1, 1), "t", || Ok(table(100)))
            .unwrap();
        assert_eq!(t.bytes(), 100);
        let stats = cache.stats();
        assert_eq!(
            stats.entries, 0,
            "a table over the whole budget cannot cache"
        );
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn invalidation_releases_bytes_and_the_grant() {
        let broker = MemoryBroker::new(1 << 20);
        let cache = HashTableCache::new(broker.clone(), CacheMetrics::unregistered());
        cache
            .get_or_build(key(7, 1), "t", || Ok(table(512)))
            .unwrap();
        assert_eq!(broker.granted(), 512);
        cache.invalidate_table(7);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.bytes, 0);
        assert_eq!(
            broker.granted(),
            0,
            "idle cache must release its broker session"
        );
        assert_eq!(broker.sessions(), 0);
    }

    #[test]
    fn failed_build_surfaces_to_the_builder_and_clears_the_slot() {
        let cache = HashTableCache::new(MemoryBroker::unlimited(), CacheMetrics::unregistered());
        let err = cache
            .get_or_build(key(1, 1), "t", || {
                Err(JoinError::InvalidConfig("boom".to_string()))
            })
            .unwrap_err();
        assert!(matches!(err, JoinError::InvalidConfig(_)), "{err}");
        // The slot is gone: the next request rebuilds.
        let t = cache
            .get_or_build(key(1, 1), "t", || Ok(table(10)))
            .unwrap();
        assert_eq!(t.bytes(), 10);
    }

    #[test]
    fn panicked_build_drains_waiters_with_a_typed_error() {
        let cache = Arc::new(HashTableCache::new(
            MemoryBroker::unlimited(),
            CacheMetrics::unregistered(),
        ));
        let entered = Arc::new(std::sync::Barrier::new(2));
        let entered_b = Arc::clone(&entered);
        let cache_b = Arc::clone(&cache);
        let builder = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache_b.get_or_build(key(1, 1), "t", || {
                    entered_b.wait();
                    // Give the waiter time to park on the Building slot.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    panic!("injected build panic");
                })
            }));
        });
        entered.wait();
        let err = cache
            .get_or_build(key(1, 1), "t", || unreachable!("single-flight"))
            .unwrap_err();
        assert!(
            matches!(err, JoinError::CacheBuildFailed { ref table } if table == "t"),
            "{err}"
        );
        builder.join().unwrap();
        // The tombstone drained; the next request rebuilds successfully.
        let t = cache
            .get_or_build(key(1, 1), "t", || Ok(table(10)))
            .unwrap();
        assert_eq!(t.bytes(), 10);
        let stats = cache.stats();
        assert_eq!(
            stats.misses, 1,
            "only the successful rebuild counts as a miss"
        );
    }

    #[test]
    fn single_flight_counts_one_miss() {
        let cache = Arc::new(HashTableCache::new(
            MemoryBroker::unlimited(),
            CacheMetrics::unregistered(),
        ));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let gate_b = Arc::clone(&gate);
        let cache_b = Arc::clone(&cache);
        let builder = std::thread::spawn(move || {
            cache_b
                .get_or_build(key(1, 1), "t", || {
                    gate_b.wait();
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    Ok(table(64))
                })
                .unwrap()
        });
        gate.wait();
        let waited = cache
            .get_or_build(key(1, 1), "t", || unreachable!("single-flight"))
            .unwrap();
        let built = builder.join().unwrap();
        assert!(Arc::ptr_eq(&waited, &built));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.build_latency.count(), 1, "exactly one build ran");
    }
}
