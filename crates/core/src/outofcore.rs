//! Joins on data sets larger than the zero-copy buffer (Appendix A,
//! Figure 19).
//!
//! The zero-copy buffer of the APU is limited (512 MB on the A8-3870K).  For
//! larger inputs the paper treats the zero-copy buffer as "main memory" and
//! the rest of system memory as "external memory": both relations are
//! partitioned chunk by chunk *through* the buffer, the intermediate
//! partitions are copied out to system memory, and each resulting partition
//! pair is then joined in the buffer with the in-core algorithms (SHJ-PL or
//! PHJ-PL).  The elapsed time decomposes into data-copy, partition and join
//! time, with the copy accounting for only a few percent.
//!
//! The out-of-core path is requested through
//! [`JoinRequest::builder().out_of_core(..)`](crate::engine::JoinRequestBuilder::out_of_core);
//! the free function [`run_out_of_core_join`] remains as a deprecated shim.

use crate::config::JoinConfig;
use crate::context::{arena_bytes_for, ExecContext};
use crate::engine::{EngineConfig, JoinEngine, JoinRequest};
use crate::error::JoinError;
use crate::executor::execute_join;
use crate::partition::run_partition_pass;
use crate::result::JoinOutcome;
use crate::scheme::RatioPlan;
use apu_sim::{Phase, SimTime, SystemSpec};
use datagen::Relation;

/// Default chunk size used to stream relations through the zero-copy buffer
/// (16 M tuples, as in the paper's experiment).
pub const DEFAULT_CHUNK_TUPLES: usize = 16 * 1024 * 1024;

/// Approximate bytes of buffer needed per build tuple for an in-core join
/// (both inputs plus the hash table and result output).
pub(crate) const BYTES_PER_TUPLE_IN_CORE: usize = 48;

/// True when a join of these cardinalities exceeds `sys`' zero-copy buffer
/// and must spill through the out-of-core path.
pub(crate) fn spills(sys: &SystemSpec, build_tuples: usize, probe_tuples: usize) -> bool {
    let needed = (build_tuples + probe_tuples) * BYTES_PER_TUPLE_IN_CORE / 2;
    needed > sys.zero_copy_bytes().unwrap_or(usize::MAX)
}

/// Runs `build ⨝ probe` on the context's system, spilling through the
/// zero-copy buffer when the data set does not fit.
///
/// When the inputs (plus working state) fit in the buffer this is exactly
/// [`execute_join`]; otherwise both relations are partitioned chunk-wise
/// until a partition pair fits, and each pair is joined with the configured
/// in-core algorithm over the *same* reusable arena (reset between chunks
/// and pairs, as the real zero-copy buffer would be).  The extra copy
/// traffic is reported under [`Phase::DataCopy`].
///
/// # Errors
/// Returns [`JoinError::ArenaExhausted`] when a chunk or partition pair
/// outgrows the context's arena.
pub fn execute_out_of_core(
    ctx: &mut ExecContext<'_>,
    build: &Relation,
    probe: &Relation,
    cfg: &JoinConfig,
    chunk_tuples: usize,
) -> Result<JoinOutcome, JoinError> {
    if !spills(ctx.sys, build.len(), probe.len()) {
        return execute_join(ctx, build, probe, cfg);
    }

    let plan = RatioPlan::from_scheme(&cfg.scheme).unwrap_or_else(|| {
        RatioPlan::from_scheme(&crate::config::Scheme::data_dividing_paper()).unwrap()
    });
    let chunk_tuples = chunk_tuples.max(1);
    let buffer = ctx.sys.zero_copy_bytes().unwrap_or(usize::MAX);

    // Choose the number of out-of-core partitions so one partition pair fits
    // comfortably in the buffer.
    let mut bits = 1u32;
    while ((build.len() + probe.len()) >> bits) * BYTES_PER_TUPLE_IN_CORE > buffer && bits < 12 {
        bits += 1;
    }
    let fanout = 1usize << bits;

    let mut outcome = JoinOutcome::default();

    // Phase 1: stream both relations through the buffer in chunks,
    // partitioning each chunk and copying the partitions out.
    let mut parts_r: Vec<Relation> = (0..fanout).map(|_| Relation::new()).collect();
    let mut parts_s: Vec<Relation> = (0..fanout).map(|_| Relation::new()).collect();
    for (rel, parts) in [(build, &mut parts_r), (probe, &mut parts_s)] {
        let mut start = 0;
        while start < rel.len() {
            let end = (start + chunk_tuples).min(rel.len());
            let chunk = rel.slice(start..end);
            add_copy(&mut outcome, ctx.sys, chunk.bytes() as u64); // copy in
            let (ps, phase) = run_partition_pass(ctx, &chunk, bits, 0, &plan.partition)?;
            outcome.breakdown.add(Phase::Partition, phase.elapsed());
            let mut copied_out = 0u64;
            for (i, p) in ps.iter().enumerate() {
                copied_out += p.bytes() as u64;
                parts[i].extend_from(p);
            }
            add_copy(&mut outcome, ctx.sys, copied_out); // copy intermediate partitions out
                                                         // The zero-copy buffer (and its pre-allocated arena) is reused for
                                                         // the next chunk once its partitions have been copied out.
            ctx.allocator.reset();
            start = end;
        }
    }

    // Phase 2: join each partition pair in the buffer with the in-core
    // algorithm, copying the pair in and the results out.
    for (r_p, s_p) in parts_r.iter().zip(parts_s.iter()) {
        if r_p.is_empty() && s_p.is_empty() {
            continue;
        }
        let needed = arena_bytes_for(r_p.len(), s_p.len());
        if needed > ctx.allocator.capacity() {
            return Err(ctx.arena_error("out-of-core pair", needed));
        }
        ctx.allocator.reset();
        add_copy(&mut outcome, ctx.sys, (r_p.bytes() + s_p.bytes()) as u64);
        let pair_outcome = execute_join(ctx, r_p, s_p, cfg)?;
        outcome.matches += pair_outcome.matches;
        if let Some(p) = pair_outcome.pairs {
            outcome.pairs.get_or_insert_with(Vec::new).extend(p);
        }
        outcome.breakdown.merge(&pair_outcome.breakdown);
        add_copy(&mut outcome, ctx.sys, pair_outcome.matches * 8);
    }

    Ok(outcome)
}

/// Runs `build ⨝ probe` on `sys`, spilling through the zero-copy buffer when
/// the data set does not fit.
///
/// # Deprecated
/// Use a [`JoinEngine`] with
/// [`JoinRequest::builder().out_of_core(chunk)`](crate::engine::JoinRequestBuilder::out_of_core)
/// instead; this shim constructs a single-use engine per call and panics on
/// failure.
#[deprecated(
    since = "0.2.0",
    note = "construct a JoinEngine and set JoinRequest::builder().out_of_core(chunk); \
            see the migration note in the hj_core crate docs"
)]
pub fn run_out_of_core_join(
    sys: &SystemSpec,
    build: &Relation,
    probe: &Relation,
    cfg: &JoinConfig,
    chunk_tuples: usize,
) -> JoinOutcome {
    let request = JoinRequest::from_config(cfg.clone())
        .and_then(|r| r.with_out_of_core(chunk_tuples))
        .expect("invalid join configuration");
    let config = EngineConfig::for_tuples(build.len(), probe.len()).with_allocator(cfg.allocator);
    let mut engine =
        JoinEngine::for_system(sys.clone(), config).expect("engine construction failed");
    engine
        .execute(&request, build, probe)
        .expect("out-of-core join execution failed")
}

/// Charges a copy between system memory and the zero-copy buffer at the
/// CPU's streaming bandwidth.
fn add_copy(outcome: &mut JoinOutcome, sys: &SystemSpec, bytes: u64) {
    if bytes == 0 {
        return;
    }
    let bw = sys.cpu.seq_bandwidth_gbps; // bytes per nanosecond
    outcome
        .breakdown
        .add(Phase::DataCopy, SimTime::from_ns(bytes as f64 / bw));
}

/// The number of tuples (per relation) above which the join must spill,
/// given a buffer size — useful for experiments that shrink the buffer to
/// exercise the out-of-core path at laptop scale.
pub fn in_core_capacity_tuples(zero_copy_bytes: usize) -> usize {
    zero_copy_bytes / BYTES_PER_TUPLE_IN_CORE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{JoinConfig, Scheme};
    use crate::engine::{EngineConfig, JoinEngine, JoinRequest};
    use crate::result::reference_match_count;
    use apu_sim::Topology;
    use datagen::DataGenConfig;

    /// A coupled system with an artificially tiny zero-copy buffer so the
    /// out-of-core path triggers at test scale.
    fn tiny_buffer_system(buffer_bytes: usize) -> SystemSpec {
        let mut sys = SystemSpec::coupled_a8_3870k();
        sys.topology = Topology::Coupled {
            shared_cache_bytes: 4 * 1024 * 1024,
            zero_copy_bytes: buffer_bytes,
        };
        sys
    }

    fn run(
        sys: &SystemSpec,
        r: &Relation,
        s: &Relation,
        cfg: &JoinConfig,
        chunk: usize,
    ) -> JoinOutcome {
        let request = JoinRequest::from_config(cfg.clone())
            .and_then(|req| req.with_out_of_core(chunk))
            .unwrap();
        let mut engine =
            JoinEngine::for_system(sys.clone(), EngineConfig::for_tuples(r.len(), s.len()))
                .unwrap();
        engine.execute(&request, r, s).unwrap()
    }

    #[test]
    fn in_core_data_uses_the_plain_path() {
        let sys = SystemSpec::coupled_a8_3870k();
        let (r, s) = datagen::generate_pair(&DataGenConfig::small(1000, 1000));
        let cfg = JoinConfig::shj(Scheme::pipelined_paper());
        let out = run(&sys, &r, &s, &cfg, DEFAULT_CHUNK_TUPLES);
        assert_eq!(out.matches, reference_match_count(&r, &s));
        assert_eq!(out.breakdown.get(Phase::DataCopy), SimTime::ZERO);
    }

    #[test]
    fn out_of_core_join_is_correct_and_pays_copy_time() {
        let sys = tiny_buffer_system(64 * 1024);
        let (r, s) = datagen::generate_pair(&DataGenConfig::small(20_000, 20_000));
        let cfg = JoinConfig::shj(Scheme::pipelined_paper());
        let out = run(&sys, &r, &s, &cfg, 4096);
        assert_eq!(out.matches, reference_match_count(&r, &s));
        assert!(out.breakdown.get(Phase::DataCopy) > SimTime::ZERO);
        assert!(out.breakdown.get(Phase::Partition) > SimTime::ZERO);
        // The copy time is a modest fraction of the total, as in Figure 19.
        let copy_share = out.breakdown.get(Phase::DataCopy).as_secs() / out.total_time().as_secs();
        assert!(copy_share < 0.25, "copy share {copy_share:.2}");
    }

    #[test]
    fn out_of_core_phj_matches_shj() {
        let sys = tiny_buffer_system(64 * 1024);
        let (r, s) = datagen::generate_pair(&DataGenConfig::small(10_000, 10_000));
        let shj = run(
            &sys,
            &r,
            &s,
            &JoinConfig::shj(Scheme::pipelined_paper()),
            4096,
        );
        let phj = run(
            &sys,
            &r,
            &s,
            &JoinConfig::phj(Scheme::pipelined_paper()),
            4096,
        );
        assert_eq!(shj.matches, phj.matches);
    }

    #[test]
    fn capacity_helper_is_monotonic() {
        assert!(in_core_capacity_tuples(512 << 20) > in_core_capacity_tuples(64 << 20));
    }
}
