//! The morsel/task layer between the co-processing schemes and the
//! execution backends.
//!
//! The paper's step series (`n1..n3`, `b1..b4`, `p1..p4`) are data-parallel
//! over tuples: nothing forces a whole relation through a step in one
//! monolithic pass.  Following the morsel-driven designs surveyed in
//! PAPERS.md, this module decomposes every step series into [`Morsel`]s —
//! contiguous tuple ranges of roughly [`DEFAULT_MORSEL_TUPLES`] tuples —
//! and a per-step workload ratio then splits each morsel's range into a CPU
//! lane and a GPU lane ([`Morsel::lanes`]).
//!
//! One task stream, two interpretations:
//!
//! * the **simulator backends** replay the stream through the event clock
//!   ([`apu_sim::DeviceClocks`]) and the pipeline composition of Eqs. 1–5
//!   ([`crate::schedule::compose_pipeline`]) — see
//!   [`crate::phase::run_step`], which consumes the morsel stream;
//! * the **native backend** executes the same stream for real, with a
//!   work-stealing [`TaskQueue`] distributing morsels over host threads.

use crate::steps::StepId;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

/// Default morsel size in tuples (~64 K, a few hundred KB of tuple data —
/// large enough to amortise dispatch, small enough to load-balance).
pub const DEFAULT_MORSEL_TUPLES: usize = 64 * 1024;

/// Which step series a morsel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepSeries {
    /// A radix-partition pass (`n1..n3`).
    Partition,
    /// The build phase (`b1..b4`).
    Build,
    /// The probe phase (`p1..p4`).
    Probe,
}

impl StepSeries {
    /// The steps of this series, in execution order.
    pub fn steps(self) -> &'static [StepId] {
        match self {
            StepSeries::Partition => &StepId::PARTITION,
            StepSeries::Build => &StepId::BUILD,
            StepSeries::Probe => &StepId::PROBE,
        }
    }
}

/// One schedulable unit of work: a contiguous tuple range of one step of a
/// step series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Morsel {
    /// The step series the morsel belongs to.
    pub step_series: StepSeries,
    /// The step within the series.
    pub step: StepId,
    /// The tuple range the morsel covers.
    pub range: Range<usize>,
}

/// The CPU and GPU lanes of one morsel under a per-step CPU ratio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lanes {
    /// Tuples processed by the CPU (a prefix of the morsel).
    pub cpu: Range<usize>,
    /// Tuples processed by the GPU (the remaining suffix).
    pub gpu: Range<usize>,
}

impl Morsel {
    /// Number of tuples in the morsel.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// True when the morsel covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Splits the morsel's range into CPU and GPU lanes by the CPU ratio
    /// `r`: the CPU takes the first `round(len × r)` tuples.
    pub fn lanes(&self, r: f64) -> Lanes {
        split_range(self.range.clone(), r)
    }
}

/// Splits `range` into a CPU prefix of `round(len × r)` tuples and the GPU
/// suffix — the single cut rule behind both [`Morsel::lanes`] and
/// [`crate::phase::split_items`].
pub fn split_range(range: Range<usize>, r: f64) -> Lanes {
    let len = range.len();
    let cut = ((len as f64) * r.clamp(0.0, 1.0)).round() as usize;
    let cut = range.start + cut.min(len);
    Lanes {
        cpu: range.start..cut,
        gpu: cut..range.end,
    }
}

/// Splits `items` tuples into morsel ranges of at most `morsel_tuples`
/// tuples each (the last morsel may be shorter).  A zero `morsel_tuples` is
/// treated as one tuple.
pub fn morsel_ranges(items: usize, morsel_tuples: usize) -> Vec<Range<usize>> {
    let morsel = morsel_tuples.max(1);
    let mut ranges = Vec::with_capacity(items.div_ceil(morsel));
    let mut start = 0usize;
    while start < items {
        let end = (start + morsel).min(items);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Materialises the full task stream of one step series over `items`
/// tuples: every step of the series, morselised, in step-major order (step
/// `i+1`'s morsels depend on step `i`'s output, so the stream respects the
/// series' data dependencies while leaving morsels within a step free to
/// run on either device).
///
/// The executors do not allocate this list — [`crate::phase::run_step`]
/// and the native backend enumerate the *same* stream arithmetically (via
/// [`morsel_ranges`]/the morsel arithmetic) to avoid materialisation on
/// large inputs.  `series_tasks` is the explicit, inspectable form of that
/// stream for schedulers, tests and tooling.
pub fn series_tasks(series: StepSeries, items: usize, morsel_tuples: usize) -> Vec<Morsel> {
    let ranges = morsel_ranges(items, morsel_tuples);
    let mut tasks = Vec::with_capacity(series.steps().len() * ranges.len());
    for &step in series.steps() {
        for range in &ranges {
            tasks.push(Morsel {
                step_series: series,
                step,
                range: range.clone(),
            });
        }
    }
    tasks
}

// ---------------------------------------------------------------------------
// Work-stealing task queue
// ---------------------------------------------------------------------------

/// A work-stealing queue of task indices driving a fixed set of workers.
///
/// Tasks `0..tasks` are distributed round-robin over per-worker deques at
/// construction; each worker pops from the *front* of its own deque and,
/// when empty, steals from the *back* of a victim's — the classic
/// work-stealing discipline, which keeps each worker on a contiguous run of
/// morsels (cache locality) while letting idle workers rebalance skewed
/// workloads.
///
/// The queue only schedules indices; what an index *means* (usually: one
/// [`Morsel`]) is up to the caller.  [`TaskQueue::run`] is the common
/// harness: it spawns scoped worker threads and returns every task's result
/// in task order, so parallel execution stays deterministic.
pub struct TaskQueue {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl TaskQueue {
    /// Distributes `tasks` task indices over `workers` deques (at least
    /// one).
    pub fn new(tasks: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        // Contiguous blocks per worker, so each worker starts on a cache-
        // friendly run of neighbouring morsels.
        let per_worker = tasks.div_ceil(workers).max(1);
        for task in 0..tasks {
            queues[(task / per_worker).min(workers - 1)].push_back(task);
        }
        TaskQueue {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Pops the next task for `worker`: its own front, else a steal from the
    /// back of another worker's deque.  `None` once all deques are empty.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        let own = worker % self.queues.len();
        if let Some(task) = self.queues[own]
            .lock()
            .expect("task queue poisoned")
            .pop_front()
        {
            return Some(task);
        }
        for offset in 1..self.queues.len() {
            let victim = (own + offset) % self.queues.len();
            if let Some(task) = self.queues[victim]
                .lock()
                .expect("task queue poisoned")
                .pop_back()
            {
                return Some(task);
            }
        }
        None
    }

    /// Runs `tasks` tasks on `workers` scoped threads, calling
    /// `f(worker, task)` for each, and returns the results in task order.
    ///
    /// # Panics
    /// Propagates a panic from any worker.
    pub fn run<T, F>(tasks: usize, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        let queue = TaskQueue::new(tasks, workers);
        let f = &f;
        let queue_ref = &queue;
        let mut collected: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..queue.workers())
                .map(|worker| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        while let Some(task) = queue_ref.pop(worker) {
                            local.push((task, f(worker, task)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("task-queue worker panicked"))
                .collect()
        });
        collected.sort_unstable_by_key(|(task, _)| *task);
        debug_assert_eq!(collected.len(), tasks);
        collected.into_iter().map(|(_, result)| result).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn morsel_ranges_cover_items_exactly_once() {
        let ranges = morsel_ranges(200_000, DEFAULT_MORSEL_TUPLES);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..65_536);
        assert_eq!(ranges.last().unwrap().end, 200_000);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 200_000);
        assert!(morsel_ranges(0, 64).is_empty());
        // Degenerate morsel size still terminates.
        assert_eq!(morsel_ranges(3, 0).len(), 3);
    }

    #[test]
    fn lanes_split_by_ratio_and_preserve_the_range() {
        let m = Morsel {
            step_series: StepSeries::Build,
            step: StepId::B1,
            range: 100..200,
        };
        assert_eq!(m.len(), 100);
        assert!(!m.is_empty());
        let lanes = m.lanes(0.3);
        assert_eq!(lanes.cpu, 100..130);
        assert_eq!(lanes.gpu, 130..200);
        assert_eq!(m.lanes(0.0).cpu.len(), 0);
        assert_eq!(m.lanes(1.0).gpu.len(), 0);
        // Out-of-range ratios clamp instead of panicking.
        assert_eq!(m.lanes(7.5).cpu, 100..200);
    }

    #[test]
    fn series_tasks_are_step_major_and_complete() {
        let tasks = series_tasks(StepSeries::Probe, 150, 64);
        // 4 steps × 3 morsels (64 + 64 + 22).
        assert_eq!(tasks.len(), 12);
        assert_eq!(tasks[0].step, StepId::P1);
        assert_eq!(tasks[0].range, 0..64);
        assert_eq!(tasks[2].range, 128..150);
        assert_eq!(tasks[3].step, StepId::P2);
        for step_tasks in tasks.chunks(3) {
            let covered: usize = step_tasks.iter().map(Morsel::len).sum();
            assert_eq!(covered, 150);
        }
        assert_eq!(StepSeries::Partition.steps().len(), 3);
        assert_eq!(StepSeries::Build.steps().len(), 4);
    }

    #[test]
    fn task_queue_dispatches_every_task_exactly_once() {
        let seen: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let results = TaskQueue::run(1000, 7, |_, task| {
            seen[task].fetch_add(1, Ordering::SeqCst);
            task * 2
        });
        assert!(seen.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        // Results come back in task order regardless of which worker ran what.
        assert_eq!(results.len(), 1000);
        assert!(results.iter().enumerate().all(|(i, &r)| r == i * 2));
    }

    #[test]
    fn idle_workers_steal_from_busy_ones() {
        // One worker sleeps on its first task; the others must steal its
        // remaining tasks for the run to finish quickly.
        let ran_by: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(usize::MAX)).collect();
        TaskQueue::run(64, 4, |worker, task| {
            if worker == 0 && task == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            ran_by[task].store(worker, Ordering::SeqCst);
        });
        let stolen = ran_by[1..16] // worker 0's initial block, minus its first task
            .iter()
            .filter(|w| w.load(Ordering::SeqCst) != 0)
            .count();
        assert!(stolen > 0, "no tasks were stolen from the sleeping worker");
    }

    #[test]
    fn task_queue_handles_more_workers_than_tasks() {
        let results = TaskQueue::run(3, 16, |_, task| task);
        assert_eq!(results, vec![0, 1, 2]);
        let empty: Vec<usize> = TaskQueue::run(0, 4, |_, task| task);
        assert!(empty.is_empty());
    }
}
