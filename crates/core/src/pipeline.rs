//! The morsel/task layer between the co-processing schemes and the
//! execution backends.
//!
//! The paper's step series (`n1..n3`, `b1..b4`, `p1..p4`) are data-parallel
//! over tuples: nothing forces a whole relation through a step in one
//! monolithic pass.  Following the morsel-driven designs surveyed in
//! PAPERS.md, this module decomposes every step series into [`Morsel`]s —
//! contiguous tuple ranges of roughly [`DEFAULT_MORSEL_TUPLES`] tuples —
//! and a per-step workload ratio then splits each morsel's range into a CPU
//! lane and a GPU lane ([`Morsel::lanes`]).
//!
//! One task stream, two interpretations:
//!
//! * the **simulator backends** replay the stream through the event clock
//!   ([`apu_sim::DeviceClocks`]) and the pipeline composition of Eqs. 1–5
//!   ([`crate::schedule::compose_pipeline`]) — see
//!   [`crate::phase::run_step`], which consumes the morsel stream;
//! * the **native backend** executes the same stream for real, submitting
//!   morsels to a persistent work-stealing [`WorkerPool`] shared by every
//!   session of the owning engine.

use crate::steps::StepId;
use hj_analysis::sync::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default morsel size in tuples (~64 K, a few hundred KB of tuple data —
/// large enough to amortise dispatch, small enough to load-balance).
pub const DEFAULT_MORSEL_TUPLES: usize = 64 * 1024;

/// Which step series a morsel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepSeries {
    /// A radix-partition pass (`n1..n3`).
    Partition,
    /// The build phase (`b1..b4`).
    Build,
    /// The probe phase (`p1..p4`).
    Probe,
}

impl StepSeries {
    /// The steps of this series, in execution order.
    pub fn steps(self) -> &'static [StepId] {
        match self {
            StepSeries::Partition => &StepId::PARTITION,
            StepSeries::Build => &StepId::BUILD,
            StepSeries::Probe => &StepId::PROBE,
        }
    }

    /// The adaptive layer's name for this series (telemetry and re-planned
    /// ratios are addressed by [`hj_adaptive::SeriesKind`]).
    pub fn adaptive_kind(self) -> hj_adaptive::SeriesKind {
        match self {
            StepSeries::Partition => hj_adaptive::SeriesKind::Partition,
            StepSeries::Build => hj_adaptive::SeriesKind::Build,
            StepSeries::Probe => hj_adaptive::SeriesKind::Probe,
        }
    }
}

/// One schedulable unit of work: a contiguous tuple range of one step of a
/// step series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Morsel {
    /// The step series the morsel belongs to.
    pub step_series: StepSeries,
    /// The step within the series.
    pub step: StepId,
    /// The tuple range the morsel covers.
    pub range: Range<usize>,
}

/// The CPU and GPU lanes of one morsel under a per-step CPU ratio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lanes {
    /// Tuples processed by the CPU (a prefix of the morsel).
    pub cpu: Range<usize>,
    /// Tuples processed by the GPU (the remaining suffix).
    pub gpu: Range<usize>,
}

impl Morsel {
    /// Number of tuples in the morsel.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// True when the morsel covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Splits the morsel's range into CPU and GPU lanes by the CPU ratio
    /// `r`: the CPU takes the first `round(len × r)` tuples.
    pub fn lanes(&self, r: f64) -> Lanes {
        split_range(self.range.clone(), r)
    }
}

/// Splits `range` into a CPU prefix of `round(len × r)` tuples and the GPU
/// suffix — the single cut rule behind both [`Morsel::lanes`] and
/// [`crate::phase::split_items`].
pub fn split_range(range: Range<usize>, r: f64) -> Lanes {
    let len = range.len();
    let cut = ((len as f64) * r.clamp(0.0, 1.0)).round() as usize;
    let cut = range.start + cut.min(len);
    Lanes {
        cpu: range.start..cut,
        gpu: cut..range.end,
    }
}

/// Splits `items` tuples into morsel ranges of at most `morsel_tuples`
/// tuples each (the last morsel may be shorter).  A zero `morsel_tuples` is
/// treated as one tuple.
pub fn morsel_ranges(items: usize, morsel_tuples: usize) -> Vec<Range<usize>> {
    let morsel = morsel_tuples.max(1);
    let mut ranges = Vec::with_capacity(items.div_ceil(morsel));
    let mut start = 0usize;
    while start < items {
        let end = (start + morsel).min(items);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Materialises the full task stream of one step series over `items`
/// tuples: every step of the series, morselised, in step-major order (step
/// `i+1`'s morsels depend on step `i`'s output, so the stream respects the
/// series' data dependencies while leaving morsels within a step free to
/// run on either device).
///
/// The executors do not allocate this list — [`crate::phase::run_step`]
/// and the native backend enumerate the *same* stream arithmetically (via
/// [`morsel_ranges`]/the morsel arithmetic) to avoid materialisation on
/// large inputs.  `series_tasks` is the explicit, inspectable form of that
/// stream for schedulers, tests and tooling.
pub fn series_tasks(series: StepSeries, items: usize, morsel_tuples: usize) -> Vec<Morsel> {
    let ranges = morsel_ranges(items, morsel_tuples);
    let mut tasks = Vec::with_capacity(series.steps().len() * ranges.len());
    for &step in series.steps() {
        for range in &ranges {
            tasks.push(Morsel {
                step_series: series,
                step,
                range: range.clone(),
            });
        }
    }
    tasks
}

// ---------------------------------------------------------------------------
// Persistent work-stealing worker pool
// ---------------------------------------------------------------------------

// The former `lock_unpoisoned`/`wait_unpoisoned` helpers (one of three
// copies across the workspace) are gone: poison recovery is built into
// `hj_analysis::sync` — a panic anywhere in the engine is already
// propagated to the submitting caller (`catch_unwind` + `resume_unwind`),
// so poisoning carries no extra information, and treating it as fatal
// would let one bad join turn every later `stats()`/`submit()` call into
// a panic.

/// A lifetime-erased pointer to a task body `(worker, task_index)` that
/// lives on the submitting thread's stack.
///
/// A *raw* pointer rather than a boxed closure on purpose: an
/// [`Arc<JobCore>`] held by a worker can be freed *after* the submitting
/// frame has returned (the worker's refcount decrement races the
/// submitter), and a raw pointer — unlike a stored reference — carries no
/// validity invariant and no drop glue, so a late [`JobCore`] drop touches
/// nothing that belonged to the dead frame.  The pointee is only ever
/// *called* before the job's completion is signalled (see
/// [`CompletionGuard`]), while the submitting frame is provably alive.
type RawTaskFn = *const (dyn Fn(usize, usize) + Sync);

/// Shared state of one submitted job: a pointer to the stack-owned task
/// body plus completion tracking.  Workers hold an [`Arc`] per queued
/// task; the submitter waits on `done` until every task has finished.
struct JobCore {
    run: RawTaskFn,
    tasks: usize,
    progress: Mutex<JobProgress>,
    done: Condvar,
}

// SAFETY: `run` points at a `Sync` closure (shared calls from any thread
// are fine) owned by the submitting frame, which `WorkerPool::run` keeps
// alive until every queued task has completed (enforced by
// `CompletionGuard` even on unwind).  All other fields are `Send + Sync`.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

struct JobProgress {
    /// Tasks pushed to the deques so far (equals the job's `tasks` once
    /// submission finished; may stay short if submission itself unwound).
    queued: usize,
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl JobCore {
    /// Marks one task finished (recording the first panic payload, if any)
    /// and wakes the waiting submitter once every queued task is done.
    fn complete_one(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut progress = self.progress.lock();
        if progress.panic.is_none() {
            progress.panic = panic;
        }
        progress.completed += 1;
        if progress.completed == self.tasks || progress.completed == progress.queued {
            self.done.notify_all();
        }
    }

    /// Blocks until every task of the job has completed, then re-raises the
    /// first worker panic (if any) on the calling thread.
    ///
    /// Returning only after *all* tasks finished is what makes the
    /// pointer erasure in [`WorkerPool::run`] sound: no worker can still
    /// be inside the job's closure once `wait` returns.
    fn wait(&self) {
        let mut progress = self.progress.lock();
        while progress.completed < self.tasks {
            progress = self.done.wait(progress);
        }
        if let Some(payload) = progress.panic.take() {
            drop(progress);
            std::panic::resume_unwind(payload);
        }
    }
}

/// Unwind insurance for the pointer erasure: blocks on drop until every
/// *queued* task of the job has completed.
///
/// On the normal path [`JobCore::wait`] has already drained the job and
/// this is free.  If task *submission* unwinds midway (allocation failure
/// while pushing), the guard still keeps the submitting frame — and with
/// it the pointee of [`JobCore::run`] — alive until the partially queued
/// tasks have finished on the workers.
#[must_use = "the guard must stay alive until every queued task completed"]
struct CompletionGuard<'a> {
    job: &'a JobCore,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut progress = self.job.progress.lock();
        // No further pushes can happen once the guard drops, so `queued`
        // is final here.
        while progress.completed < progress.queued {
            progress = self.job.done.wait(progress);
        }
    }
}

/// One schedulable unit in a worker deque.
struct PoolTask {
    job: Arc<JobCore>,
    index: usize,
}

/// One worker's deque plus a lock-free length hint, so stealers skip empty
/// victims without touching their lock.
struct WorkerDeque {
    len: AtomicUsize,
    deque: Mutex<VecDeque<PoolTask>>,
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    deques: Vec<WorkerDeque>,
    /// Tasks pushed but not yet popped, pool-wide — the parking predicate.
    pending: AtomicUsize,
    park: Mutex<()>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Per-worker lifetime task counters (surfaced through engine stats).
    tasks_executed: Vec<AtomicU64>,
    /// Per-worker lifetime steal counters (tasks taken from a *victim's*
    /// deque), indexed by the stealing worker.
    tasks_stolen: Vec<AtomicU64>,
    /// Per-worker wall-clock nanoseconds spent *executing* tasks — the
    /// numerator of the utilization gauge the sampler derives.
    busy_ns: Vec<AtomicU64>,
    /// Per-worker wall-clock nanoseconds spent parked waiting for work —
    /// the idle side of the utilization window.
    park_ns: Vec<AtomicU64>,
    /// Workers currently alive; reaches zero only after every worker thread
    /// has exited its loop.
    live_workers: Arc<AtomicUsize>,
    /// Rotates the deque each job's first block lands on, so concurrent
    /// jobs spread over different workers instead of all piling onto
    /// worker 0.
    next_deque: AtomicUsize,
}

impl PoolShared {
    /// Pops the next task for `worker`: its own front, else a steal from
    /// the back of a victim's deque.  `None` when every deque is empty.
    fn pop(&self, worker: usize) -> Option<PoolTask> {
        let own = worker % self.deques.len();
        if let Some(task) = self.take(own, true) {
            return Some(task);
        }
        for offset in 1..self.deques.len() {
            let victim = (own + offset) % self.deques.len();
            if self.deques[victim].len.load(Ordering::Acquire) == 0 {
                continue;
            }
            if let Some(task) = self.take(victim, false) {
                // Relaxed: pure telemetry, nothing branches on it.
                self.tasks_stolen[own].fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn take(&self, queue: usize, front: bool) -> Option<PoolTask> {
        let slot = &self.deques[queue];
        let mut deque = slot.deque.lock();
        let task = if front {
            deque.pop_front()
        } else {
            deque.pop_back()
        };
        if task.is_some() {
            slot.len.fetch_sub(1, Ordering::Release);
            self.pending.fetch_sub(1, Ordering::Release);
        }
        task
    }
}

fn worker_loop(shared: Arc<PoolShared>, me: usize) {
    loop {
        if let Some(task) = shared.pop(me) {
            // Relaxed: a pure telemetry counter — nothing branches on it,
            // and a stats snapshot may lag in-flight tasks by design.
            shared.tasks_executed[me].fetch_add(1, Ordering::Relaxed);
            let busy_started = Instant::now();
            let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: the pointee is a Sync closure owned by the
                // submitting frame, which stays alive until this task's
                // `complete_one` below has been observed (JobCore::wait /
                // CompletionGuard) — the call happens strictly before that
                // signal.
                unsafe { (*task.job.run)(me, task.index) }
            }))
            .err();
            // Relaxed telemetry: busy wall-time feeds the utilization
            // gauge; a lagging snapshot is fine.
            shared.busy_ns[me]
                .fetch_add(busy_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            task.job.complete_one(panic);
            continue;
        }
        // Park until new work arrives.  The re-check happens under the park
        // lock: a submitter increments `pending` *before* taking the same
        // lock to notify, so the wake-up cannot be lost.
        let mut guard = shared.park.lock();
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                shared.live_workers.fetch_sub(1, Ordering::AcqRel);
                return;
            }
            if shared.pending.load(Ordering::Acquire) > 0 {
                break;
            }
            let park_started = Instant::now();
            guard = shared.work_ready.wait(guard);
            shared.park_ns[me]
                .fetch_add(park_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// A fixed set of long-lived worker threads fed by per-worker deques with
/// steal-from-back work stealing.
///
/// Workers are spawned **once** (at engine construction) and shared by
/// every session of the engine: concurrent joins interleave their morsels
/// in the same pool instead of each spawning its own threads per step —
/// the per-step `thread::scope` respawning that made aggregate throughput
/// *fall* as clients rose.  Idle workers park on a [`Condvar`] (no
/// spinning); submission pushes contiguous blocks of task indices onto the
/// deques (cache-friendly runs of neighbouring morsels), each worker pops
/// from the *front* of its own deque and, when empty, steals from the
/// *back* of a victim's.
///
/// [`run`](Self::run) is the submission harness: it enqueues one job of
/// `tasks` indices, waits for completion, and returns every task's result
/// in task order — parallel execution stays deterministic regardless of
/// worker count or steal pattern.  The pool's [`Drop`] joins every worker,
/// so no thread outlives the engine.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("live_workers", &self.live_workers())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one), parked until work
    /// arrives.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let live_workers = Arc::new(AtomicUsize::new(workers));
        let shared = Arc::new(PoolShared {
            deques: (0..workers)
                .map(|_| WorkerDeque {
                    len: AtomicUsize::new(0),
                    deque: Mutex::new("pool.deque", VecDeque::new()),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            park: Mutex::new("pool.park", ()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            tasks_stolen: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            park_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            live_workers: Arc::clone(&live_workers),
            next_deque: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hj-worker-{me}"))
                    .spawn(move || worker_loop(shared, me))
                    .expect("failed to spawn worker-pool thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads the pool was provisioned with.
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Workers currently alive (equals [`workers`](Self::workers) for the
    /// pool's whole lifetime; drops to zero during [`Drop`]).
    pub fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Ordering::Acquire)
    }

    /// An owned handle on the live-worker gauge that outlives the pool, so
    /// callers (and tests) can verify that dropping the pool joined every
    /// worker thread.
    pub fn live_worker_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.shared.live_workers)
    }

    /// Lifetime count of tasks each worker executed, indexed by worker.
    pub fn tasks_executed(&self) -> Vec<u64> {
        self.shared
            .tasks_executed
            .iter()
            .map(|count| count.load(Ordering::Relaxed))
            .collect()
    }

    /// Lifetime count of tasks each worker *stole* from another worker's
    /// deque, indexed by the stealing worker.
    pub fn tasks_stolen(&self) -> Vec<u64> {
        self.shared
            .tasks_stolen
            .iter()
            .map(|count| count.load(Ordering::Relaxed))
            .collect()
    }

    /// Lifetime wall-clock nanoseconds each worker spent executing tasks,
    /// indexed by worker.
    pub fn busy_ns(&self) -> Vec<u64> {
        self.shared
            .busy_ns
            .iter()
            .map(|ns| ns.load(Ordering::Relaxed))
            .collect()
    }

    /// Lifetime wall-clock nanoseconds each worker spent parked waiting
    /// for work, indexed by worker.  Busy + park does not sum to the
    /// pool's lifetime: the short pop/steal scans between the two are
    /// deliberately unattributed.
    pub fn park_ns(&self) -> Vec<u64> {
        self.shared
            .park_ns
            .iter()
            .map(|ns| ns.load(Ordering::Relaxed))
            .collect()
    }

    /// Enqueues the job's `tasks` task indices: contiguous blocks per
    /// deque (rotated across jobs), then a single wake-up.  `queued` in the
    /// job's progress tracks how many tasks are actually visible to
    /// workers, so an unwind mid-push leaves a consistent count for
    /// [`CompletionGuard`].
    fn push_tasks(&self, job: &Arc<JobCore>) {
        let tasks = job.tasks;
        let workers = self.workers();
        let per_worker = tasks.div_ceil(workers).max(1);
        // Relaxed: only a placement *hint* rotating which deque a job's
        // first block lands on — any interleaving of the counter is
        // equally correct, so no ordering is load-bearing here.
        let start = self.shared.next_deque.fetch_add(1, Ordering::Relaxed) % workers;
        let mut index = 0usize;
        let mut block = 0usize;
        while index < tasks {
            let end = (index + per_worker).min(tasks);
            let slot = &self.shared.deques[(start + block) % workers];
            let mut deque = slot.deque.lock();
            for i in index..end {
                deque.push_back(PoolTask {
                    job: Arc::clone(job),
                    index: i,
                });
            }
            // All counters move under the deque lock: a worker can only
            // see (and pop) these tasks after `pending` includes them, and
            // `queued` never under-counts what a worker might execute.
            job.progress.lock().queued = end;
            slot.len.fetch_add(end - index, Ordering::Release);
            self.shared
                .pending
                .fetch_add(end - index, Ordering::Release);
            drop(deque);
            index = end;
            block += 1;
        }
        // Serialise with parking workers (they re-check `pending` under
        // this lock before sleeping) so the notification cannot be lost.
        drop(self.shared.park.lock());
        self.shared.work_ready.notify_all();
    }

    /// Runs `tasks` tasks on the pool, calling `f(worker, task)` for each,
    /// and returns the results in task order.
    ///
    /// Blocks the calling thread until the job completes; concurrent `run`
    /// calls from different threads interleave their tasks in the shared
    /// deques.
    ///
    /// # Panics
    /// Re-raises the first panic from `f` after every task of the job has
    /// finished, and enforces (in every build profile) the invariant that
    /// all `tasks` results were delivered — a lost morsel is a hard error,
    /// never a silently dropped tuple range.
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        // One slot per task: every task writes only its own slot, so the
        // per-slot locks are never contended (no shared push bottleneck on
        // the execution hot path) and results need no sorting afterwards.
        let results: Vec<Mutex<Option<T>>> = (0..tasks)
            .map(|_| Mutex::new("pool.result_slot", None))
            .collect();
        {
            // The task body lives on *this* stack frame for the whole job.
            let body = |worker: usize, task: usize| {
                let value = f(worker, task);
                *results[task].lock() = Some(value);
            };
            // SAFETY of the lifetime-erasing cast: `JobCore` stores only a
            // raw pointer (no reference, no drop glue), and workers
            // dereference it strictly before signalling the task complete.
            // `job.wait()` — and, should anything unwind first, the
            // `CompletionGuard` below — keeps this frame (and with it
            // `body`, `f` and `results`) alive until every queued task has
            // completed, so no call can outlive the pointee.  A worker's
            // `Arc<JobCore>` may be freed after this frame is gone; by then
            // the core holds nothing that points into it except the inert
            // raw pointer.
            let erased: RawTaskFn = unsafe {
                std::mem::transmute::<*const (dyn Fn(usize, usize) + Sync + '_), RawTaskFn>(
                    &body as &(dyn Fn(usize, usize) + Sync),
                )
            };
            let job = Arc::new(JobCore {
                run: erased,
                tasks,
                progress: Mutex::new(
                    "pool.job_progress",
                    JobProgress {
                        queued: 0,
                        completed: 0,
                        panic: None,
                    },
                ),
                done: Condvar::new(),
            });
            let guard = CompletionGuard { job: &job };
            self.push_tasks(&job);
            job.wait();
            drop(guard); // all queued tasks completed — trivially satisfied
        }
        results
            .into_iter()
            .enumerate()
            .map(|(task, slot)| {
                // Hard invariant in every build profile: a task whose slot
                // is still empty was lost, and a dropped morsel would
                // silently lose tuples.
                slot.into_inner().unwrap_or_else(|| {
                    panic!("worker pool lost task {task} of {tasks}: no result delivered")
                })
            })
            .collect()
    }
}

/// A lazily-spawned [`WorkerPool`] of a fixed configured size.
///
/// The engine owns one of these per instance: simulator-only engines never
/// touch it and therefore never spawn a thread, while the first native
/// execution materialises the full pool exactly once.  Handles are cheap
/// clones over a shared inner cell (the sampler thread holds one), and the
/// workers are joined when the *last* handle drops.
#[derive(Clone)]
pub struct SharedWorkerPool {
    inner: Arc<SharedPoolInner>,
}

struct SharedPoolInner {
    size: usize,
    cell: std::sync::OnceLock<WorkerPool>,
}

impl std::fmt::Debug for SharedWorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedWorkerPool")
            .field("size", &self.inner.size)
            .field("spawned", &self.inner.cell.get().is_some())
            .finish()
    }
}

impl SharedWorkerPool {
    /// A holder that will spawn `size` workers (at least one) on first use.
    pub fn new(size: usize) -> Self {
        SharedWorkerPool {
            inner: Arc::new(SharedPoolInner {
                size: size.max(1),
                cell: std::sync::OnceLock::new(),
            }),
        }
    }

    /// The worker count the pool is (or will be) provisioned with.
    pub fn configured_workers(&self) -> usize {
        self.inner.size
    }

    /// The pool, spawning its workers on the first call.
    pub fn get(&self) -> &WorkerPool {
        self.inner
            .cell
            .get_or_init(|| WorkerPool::new(self.inner.size))
    }

    /// The pool if its workers were ever spawned.
    pub fn spawned(&self) -> Option<&WorkerPool> {
        self.inner.cell.get()
    }
}

impl Drop for WorkerPool {
    /// Signals shutdown and joins every worker: an engine drop leaks no
    /// threads.  All jobs have necessarily completed (each `run` call holds
    /// a borrow of the pool until its job is done), so the deques are empty.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.park.lock());
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn morsel_ranges_cover_items_exactly_once() {
        let ranges = morsel_ranges(200_000, DEFAULT_MORSEL_TUPLES);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..65_536);
        assert_eq!(ranges.last().unwrap().end, 200_000);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 200_000);
        assert!(morsel_ranges(0, 64).is_empty());
        // Degenerate morsel size still terminates.
        assert_eq!(morsel_ranges(3, 0).len(), 3);
    }

    #[test]
    fn lanes_split_by_ratio_and_preserve_the_range() {
        let m = Morsel {
            step_series: StepSeries::Build,
            step: StepId::B1,
            range: 100..200,
        };
        assert_eq!(m.len(), 100);
        assert!(!m.is_empty());
        let lanes = m.lanes(0.3);
        assert_eq!(lanes.cpu, 100..130);
        assert_eq!(lanes.gpu, 130..200);
        assert_eq!(m.lanes(0.0).cpu.len(), 0);
        assert_eq!(m.lanes(1.0).gpu.len(), 0);
        // Out-of-range ratios clamp instead of panicking.
        assert_eq!(m.lanes(7.5).cpu, 100..200);
    }

    #[test]
    fn series_tasks_are_step_major_and_complete() {
        let tasks = series_tasks(StepSeries::Probe, 150, 64);
        // 4 steps × 3 morsels (64 + 64 + 22).
        assert_eq!(tasks.len(), 12);
        assert_eq!(tasks[0].step, StepId::P1);
        assert_eq!(tasks[0].range, 0..64);
        assert_eq!(tasks[2].range, 128..150);
        assert_eq!(tasks[3].step, StepId::P2);
        for step_tasks in tasks.chunks(3) {
            let covered: usize = step_tasks.iter().map(Morsel::len).sum();
            assert_eq!(covered, 150);
        }
        assert_eq!(StepSeries::Partition.steps().len(), 3);
        assert_eq!(StepSeries::Build.steps().len(), 4);
    }

    #[test]
    fn worker_pool_dispatches_every_task_exactly_once() {
        let pool = WorkerPool::new(7);
        assert_eq!(pool.workers(), 7);
        let seen: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let results = pool.run(1000, |_, task| {
            seen[task].fetch_add(1, Ordering::SeqCst);
            task * 2
        });
        assert!(seen.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        // Results come back in task order regardless of which worker ran what.
        assert_eq!(results.len(), 1000);
        assert!(results.iter().enumerate().all(|(i, &r)| r == i * 2));
        // Every executed task is accounted to exactly one worker counter.
        assert_eq!(pool.tasks_executed().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn pool_workers_are_reused_across_jobs_not_respawned() {
        let pool = WorkerPool::new(3);
        for round in 0..10 {
            let results = pool.run(50, |_, task| task + round);
            assert_eq!(results.len(), 50);
        }
        // The same three threads served all ten jobs.
        assert_eq!(pool.live_workers(), 3);
        assert_eq!(pool.tasks_executed().iter().sum::<u64>(), 500);
    }

    #[test]
    fn idle_workers_steal_from_busy_ones() {
        // Deterministic rendezvous instead of a wall-clock sleep: one of the
        // two workers is pinned inside a gated job for the whole duration of
        // a second 64-task job.  That job's blocks land on *both* deques, so
        // the free worker can only finish it by stealing the pinned worker's
        // block from the back — the run would deadlock without stealing, and
        // no assertion depends on timing.
        const TASKS: usize = 64;
        let pool = WorkerPool::new(2);
        let gate = (Mutex::new("test.steal_gate", false), Condvar::new());
        let started = (Mutex::new("test.steal_started", false), Condvar::new());
        let pinned_worker = AtomicUsize::new(usize::MAX);
        let ran_by: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(usize::MAX)).collect();

        std::thread::scope(|scope| {
            let (pool, gate, started, pinned_worker) = (&pool, &gate, &started, &pinned_worker);
            scope.spawn(move || {
                pool.run(1, |worker, _| {
                    pinned_worker.store(worker, Ordering::SeqCst);
                    *started.0.lock() = true;
                    started.1.notify_all();
                    let mut open = gate.0.lock();
                    while !*open {
                        open = gate.1.wait(open);
                    }
                });
            });
            // Only submit the stealable job once a worker is provably pinned.
            let mut is_started = started.0.lock();
            while !*is_started {
                is_started = started.1.wait(is_started);
            }
            drop(is_started);

            pool.run(TASKS, |worker, task| {
                ran_by[task].store(worker, Ordering::SeqCst);
            });
            // The 64-task job completed while one worker was still pinned.
            *gate.0.lock() = true;
            gate.1.notify_all();
        });

        let pinned = pinned_worker.load(Ordering::SeqCst);
        let free = 1 - pinned;
        assert!(
            ran_by.iter().all(|w| w.load(Ordering::SeqCst) == free),
            "every task — including the block queued on the pinned worker's \
             deque — must have been run (stolen) by the free worker"
        );
    }

    #[test]
    fn worker_pool_handles_more_workers_than_tasks() {
        let pool = WorkerPool::new(16);
        let results = pool.run(3, |_, task| task);
        assert_eq!(results, vec![0, 1, 2]);
        let empty: Vec<usize> = pool.run(0, |_, task| task);
        assert!(empty.is_empty());
    }

    #[test]
    fn concurrent_jobs_interleave_in_one_pool() {
        // Several submitter threads share the pool; each job's results stay
        // correct and in task order even though morsels from all jobs mix in
        // the same deques.
        let pool = WorkerPool::new(4);
        std::thread::scope(|scope| {
            for job in 0..6usize {
                let pool = &pool;
                scope.spawn(move || {
                    let results = pool.run(200, move |_, task| job * 1000 + task);
                    assert!(results
                        .iter()
                        .enumerate()
                        .all(|(i, &r)| r == job * 1000 + i));
                });
            }
        });
        assert_eq!(pool.tasks_executed().iter().sum::<u64>(), 1200);
    }

    #[test]
    fn dropping_the_pool_joins_every_worker() {
        let pool = WorkerPool::new(5);
        let gauge = pool.live_worker_gauge();
        assert_eq!(gauge.load(Ordering::Acquire), 5);
        pool.run(32, |_, task| task); // a pool that has actually worked
        drop(pool);
        assert_eq!(
            gauge.load(Ordering::Acquire),
            0,
            "drop must join every worker thread, not leak them"
        );
    }

    #[test]
    fn a_panicking_task_propagates_but_leaves_the_pool_usable() {
        let pool = WorkerPool::new(3);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(20, |_, task| {
                if task == 7 {
                    panic!("injected task panic");
                }
                task
            })
        }));
        assert!(unwound.is_err(), "the task panic must reach the submitter");
        // Every worker survived and the next job runs normally.
        assert_eq!(pool.live_workers(), 3);
        let results = pool.run(10, |_, task| task * 3);
        assert!(results.iter().enumerate().all(|(i, &r)| r == i * 3));
    }

    #[test]
    fn poisoned_locks_are_recovered_not_propagated() {
        // The facade (not a local helper) carries the recovery policy now:
        // a panic while holding an engine lock must not turn later
        // `stats()`/`submit()` calls into poison panics.
        let poisoned = std::sync::Arc::new(Mutex::new("test.poison", 7u32));
        let clone = std::sync::Arc::clone(&poisoned);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*poisoned.lock(), 7);
    }
}
